// Model registry: metadata round-trip, publish/promote/rollback
// lifecycle, crash-safety under failpoints (a failed publish or promote
// never moves CURRENT), GC safety under randomized op interleavings
// (active/pinned/canary versions provably survive), and load-time
// integrity (a replaced archive is a hard error).
#include "registry/registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "synth/portal.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::registry {
namespace {

namespace fs = std::filesystem;

TEST(RegistryMetadata, VersionNames) {
  EXPECT_EQ(version_name(3), "v3");
  EXPECT_EQ(version_name(120), "v120");
  EXPECT_EQ(parse_version_name("v12"), 12u);
  EXPECT_EQ(parse_version_name("v0"), 0u);
  EXPECT_FALSE(parse_version_name("12"));
  EXPECT_FALSE(parse_version_name("v"));
  EXPECT_FALSE(parse_version_name("vx2"));
  EXPECT_FALSE(parse_version_name("v1 "));
  EXPECT_FALSE(parse_version_name(""));
}

TEST(RegistryMetadata, RoundTripPreservesEveryField) {
  VersionMetadata meta;
  meta.version = 7;
  meta.state = VersionState::kCanary;
  meta.parent = 6;
  // High bits set on purpose: a double-typed JSON number would lose them.
  meta.vocab_hash = 0xffeeddccbbaa9988ULL;
  meta.archive_crc = 0xdeadbeefu;
  meta.archive_bytes = 123456;
  meta.clusters = 4;
  meta.vocab_size = 60;
  meta.pinned = true;
  meta.created_unix = 1754000000;
  meta.note = "retrained on June data";

  const auto parsed = parse_metadata(render_metadata(meta));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, meta.version);
  EXPECT_EQ(parsed->state, meta.state);
  EXPECT_EQ(parsed->parent, meta.parent);
  EXPECT_EQ(parsed->vocab_hash, meta.vocab_hash);
  EXPECT_EQ(parsed->archive_crc, meta.archive_crc);
  EXPECT_EQ(parsed->archive_bytes, meta.archive_bytes);
  EXPECT_EQ(parsed->clusters, meta.clusters);
  EXPECT_EQ(parsed->vocab_size, meta.vocab_size);
  EXPECT_EQ(parsed->pinned, meta.pinned);
  EXPECT_EQ(parsed->created_unix, meta.created_unix);
  EXPECT_EQ(parsed->note, meta.note);
}

TEST(RegistryMetadata, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_metadata("not json"));
  EXPECT_FALSE(parse_metadata("{}"));
  EXPECT_FALSE(parse_metadata(R"({"version": 1})"));
}

// ---------------------------------------------------------------------------
// Registry tests against real trained archives (trained once per suite).

class RegistryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::string(save_archive(train(60, 42), "registry_a.bin"));
    // A second detector with a different action vocabulary: its archive
    // is valid but fingerprint-incompatible with the first.
    other_archive_ = new std::string(save_archive(train(45, 7), "registry_b.bin"));
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete other_archive_;
    archive_ = nullptr;
    other_archive_ = nullptr;
  }

  static core::MisuseDetector train(int actions, std::uint64_t seed) {
    synth::PortalConfig pc;
    pc.sessions = 160;
    pc.users = 30;
    pc.action_count = actions;
    pc.seed = seed;
    SessionStore store(synth::Portal(pc).generate());
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {8};
    dc.ensemble.iterations = 6;
    dc.expert.target_clusters = 3;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 1;
    dc.lm.patience = 0;
    return core::MisuseDetector::train(store, dc);
  }

  static std::string save_archive(const core::MisuseDetector& detector, const std::string& name) {
    const std::string path = ::testing::TempDir() + "misusedet_" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    BinaryWriter writer(out);
    detector.save(writer);
    return path;
  }

  /// A fresh, empty registry root per test.
  static std::string fresh_root(const std::string& name) {
    const std::string root = ::testing::TempDir() + "misusedet_registry_" + name;
    fs::remove_all(root);
    return root;
  }

  static const std::string& archive() { return *archive_; }
  static const std::string& other_archive() { return *other_archive_; }

 private:
  static std::string* archive_;
  static std::string* other_archive_;
};

std::string* RegistryFixture::archive_ = nullptr;
std::string* RegistryFixture::other_archive_ = nullptr;

TEST_F(RegistryFixture, PublishCreatesStagingAndNeverTouchesCurrent) {
  ModelRegistry registry(fresh_root("publish"));
  EXPECT_FALSE(registry.current().has_value());
  const std::uint64_t v = registry.publish(archive(), "first");
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(registry.current().has_value());  // publish is not promote

  const auto meta = registry.metadata(v);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->state, VersionState::kStaging);
  EXPECT_EQ(meta->note, "first");
  EXPECT_GT(meta->archive_bytes, 0u);
  EXPECT_GT(meta->clusters, 0u);
  EXPECT_GT(meta->vocab_size, 0u);
  EXPECT_NE(meta->vocab_hash, 0u);
  // The stored archive is bit-for-bit what was published.
  EXPECT_EQ(fs::file_size(registry.archive_path(v)), meta->archive_bytes);
  EXPECT_EQ(registry.load(v)->vocab().fingerprint(), meta->vocab_hash);
}

TEST_F(RegistryFixture, PublishRejectsCorruptArchive) {
  const std::string root = fresh_root("reject");
  const std::string bogus = root + "_bogus.bin";
  fs::create_directories(root);
  std::ofstream(bogus, std::ios::binary) << "this is not a detector archive";
  ModelRegistry registry(root);
  try {
    registry.publish(bogus);
    FAIL() << "corrupt archive accepted";
  } catch (const RegistryError& e) {
    EXPECT_NE(std::string(e.what()).find("publish rejected"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find(bogus), std::string::npos)
        << "error should carry the file path: " << e.what();
  }
  EXPECT_TRUE(registry.list().empty());
}

TEST_F(RegistryFixture, LifecyclePromoteRollback) {
  ModelRegistry registry(fresh_root("lifecycle"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);  // staging -> canary
  EXPECT_EQ(registry.canary(), v1);
  EXPECT_FALSE(registry.current().has_value());
  registry.promote(v1);  // canary -> active
  EXPECT_EQ(registry.current(), v1);
  EXPECT_FALSE(registry.canary().has_value());

  const std::uint64_t v2 = registry.publish(archive());
  EXPECT_EQ(v2, 2u);
  registry.promote(v2);
  registry.promote(v2);
  EXPECT_EQ(registry.current(), v2);
  EXPECT_EQ(registry.metadata(v2)->parent, v1);
  EXPECT_EQ(registry.metadata(v1)->state, VersionState::kRetired);

  registry.rollback();  // back to the recorded parent
  EXPECT_EQ(registry.current(), v1);
  EXPECT_EQ(registry.metadata(v1)->state, VersionState::kActive);
  EXPECT_EQ(registry.metadata(v2)->state, VersionState::kRetired);

  registry.rollback_to(v2);  // roll forward again, explicitly
  EXPECT_EQ(registry.current(), v2);
  registry.rollback_to(v2);  // idempotent
  EXPECT_EQ(registry.current(), v2);
}

TEST_F(RegistryFixture, PromoteGuards) {
  ModelRegistry registry(fresh_root("guards"));
  const std::uint64_t v1 = registry.publish(archive());
  const std::uint64_t v2 = registry.publish(archive());
  registry.promote(v1);                            // v1 is the canary
  EXPECT_THROW(registry.promote(v2), RegistryError);  // only one canary
  registry.promote(v1);                            // v1 active
  EXPECT_THROW(registry.promote(v1), RegistryError);  // already active
  registry.promote(v2);
  registry.promote(v2);  // v2 active, v1 retired
  EXPECT_THROW(registry.promote(v1), RegistryError);  // retired: rollback instead
  EXPECT_THROW(registry.promote(99), RegistryError);  // unknown version
  EXPECT_THROW(registry.rollback_to(99), RegistryError);
}

TEST_F(RegistryFixture, RollbackWithoutParentThrows) {
  ModelRegistry registry(fresh_root("noparent"));
  EXPECT_THROW(registry.rollback(), RegistryError);  // nothing active
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);
  EXPECT_THROW(registry.rollback(), RegistryError);  // v1 records no parent
}

TEST_F(RegistryFixture, ListSkipsUnfinishedAndForgedDirectories) {
  const std::string root = fresh_root("skips");
  ModelRegistry registry(root);
  const std::uint64_t v1 = registry.publish(archive());
  // An unfinished publish: directory without meta.json.
  fs::create_directories(root + "/v99");
  // A forged directory: meta.json copied from another version.
  fs::create_directories(root + "/v98");
  fs::copy_file(root + "/v1/meta.json", root + "/v98/meta.json");
  const auto versions = registry.list();
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].version, v1);
  EXPECT_FALSE(registry.metadata(98).has_value());
  // And the next publish number skips past nothing real.
  EXPECT_EQ(registry.publish(archive()), 2u);
}

TEST_F(RegistryFixture, LoadDetectsReplacedArchive) {
  ModelRegistry registry(fresh_root("replaced"));
  const std::uint64_t v1 = registry.publish(archive());
  // Swap in a valid archive with a different vocabulary behind the
  // registry's back — exactly the silent-corruption case load() guards.
  fs::copy_file(other_archive(), registry.archive_path(v1), fs::copy_options::overwrite_existing);
  try {
    registry.load(v1);
    FAIL() << "replaced archive loaded";
  } catch (const RegistryError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos) << e.what();
  }
}

TEST_F(RegistryFixture, LoadErrorCarriesPathOnMissingArchive) {
  ModelRegistry registry(fresh_root("missing"));
  const std::uint64_t v1 = registry.publish(archive());
  fs::remove(registry.archive_path(v1));
  try {
    registry.load(v1);
    FAIL() << "missing archive loaded";
  } catch (const RegistryError& e) {
    EXPECT_NE(std::string(e.what()).find(registry.archive_path(v1)), std::string::npos) << e.what();
  }
}

TEST_F(RegistryFixture, PublishParentStampIsAuthoritative) {
  ModelRegistry registry(fresh_root("parent_stamp"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);  // v1 active

  // The trainer stamps the version it fine-tuned from at publish time.
  const std::uint64_t v2 = registry.publish(archive(), "fine-tuned", v1);
  EXPECT_EQ(registry.metadata(v2)->parent, v1);
  // A parent that does not exist is a hard error, not a dangling stamp.
  EXPECT_THROW(registry.publish(archive(), "bad parent", 77), RegistryError);

  // Promote must keep the explicit stamp even when something else was
  // active in between (the stamp records derivation, not succession).
  const std::uint64_t v3 = registry.publish(archive());
  registry.promote(v3);
  registry.promote(v3);  // v3 active now
  registry.promote(v2);
  registry.promote(v2);
  EXPECT_EQ(registry.metadata(v2)->parent, v1) << "promote overwrote the publish-time parent";
}

TEST_F(RegistryFixture, LineageWalksTheParentChain) {
  ModelRegistry registry(fresh_root("lineage"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);
  const std::uint64_t v2 = registry.publish(archive(), "gen 2", v1);
  registry.promote(v2);
  registry.promote(v2);
  const std::uint64_t v3 = registry.publish(archive(), "gen 3", v2);

  const auto chain = registry.lineage(v3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].version, v3);
  EXPECT_EQ(chain[1].version, v2);
  EXPECT_EQ(chain[2].version, v1);
  EXPECT_EQ(registry.lineage(v1).size(), 1u);  // no parent: chain of one
  EXPECT_THROW(registry.lineage(99), RegistryError);

  // A gc'd ancestor truncates the chain instead of throwing: the
  // remaining stamp still names the missing version.
  fs::remove_all(registry.version_dir(v1));
  const auto truncated = registry.lineage(v3);
  ASSERT_EQ(truncated.size(), 2u);
  EXPECT_EQ(truncated.back().parent, v1);
}

TEST_F(RegistryFixture, RetireDemotesStagingAndCanaryButNeverActive) {
  ModelRegistry registry(fresh_root("retire"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);  // active

  const std::uint64_t v2 = registry.publish(archive());  // staging
  registry.retire(v2);
  EXPECT_EQ(registry.metadata(v2)->state, VersionState::kRetired);
  registry.retire(v2);  // idempotent

  const std::uint64_t v3 = registry.publish(archive());
  registry.promote(v3);  // canary
  EXPECT_EQ(registry.canary(), v3);
  registry.retire(v3);
  EXPECT_FALSE(registry.canary().has_value());
  EXPECT_EQ(registry.metadata(v3)->state, VersionState::kRetired);

  EXPECT_THROW(registry.retire(v1), RegistryError);  // active: rollback first
  EXPECT_THROW(registry.retire(99), RegistryError);
  EXPECT_EQ(registry.current(), v1);
}

TEST_F(RegistryFixture, GcKeepsParentsOfLiveVersions) {
  ModelRegistry registry(fresh_root("gc_parent"));
  std::vector<std::uint64_t> versions;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t v = versions.empty() ? registry.publish(archive())
                                             : registry.publish(archive(), "", versions.back());
    registry.promote(v);
    registry.promote(v);
    versions.push_back(v);
  }
  // v5 active with parent v4: even gc(0) must keep v4 — it is the active
  // version's rollback target — while v1..v3 (parents of retired versions
  // only) are collectable.
  const auto removed = registry.gc(0);
  EXPECT_EQ(removed, (std::vector<std::uint64_t>{versions[0], versions[1], versions[2]}));
  ASSERT_TRUE(fs::exists(registry.archive_path(versions[3])));
  registry.rollback();  // the protected parent must actually serve
  EXPECT_EQ(registry.current(), versions[3]);
  EXPECT_NE(registry.load(versions[3]), nullptr);
}

TEST_F(RegistryFixture, GcKeepsNewestRetired) {
  ModelRegistry registry(fresh_root("gc"));
  std::vector<std::uint64_t> versions;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t v = registry.publish(archive());
    registry.promote(v);
    registry.promote(v);
    versions.push_back(v);
  }
  // v5 active; v1..v4 retired. v4 is the active version's inferred parent
  // (rollback target), so it is protected outright and the keep-2 budget
  // applies to the remaining pool {v3, v2} — only v1 is collectable.
  const auto removed = registry.gc(2);
  EXPECT_EQ(removed, (std::vector<std::uint64_t>{versions[0]}));
  EXPECT_FALSE(fs::exists(registry.version_dir(versions[0])));
  EXPECT_TRUE(fs::exists(registry.version_dir(versions[1])));
  EXPECT_TRUE(fs::exists(registry.version_dir(versions[2])));
  EXPECT_TRUE(fs::exists(registry.version_dir(versions[3])));
  EXPECT_EQ(registry.current(), versions[4]);
  // The survivors are still loadable (rollback depth intact).
  registry.rollback_to(versions[2]);
  EXPECT_NE(registry.load(versions[2]), nullptr);
}

// The GC safety property, adversarially: a randomized interleaving of
// publish/promote/rollback/pin/gc ops must never leave the registry
// without its active version, its canary, or any pinned version —
// whatever order the ops land in.
TEST_F(RegistryFixture, GcNeverRemovesActivePinnedOrCanaryUnderRandomOps) {
  ModelRegistry registry(fresh_root("gc_random"));
  Rng rng(20260806);
  const auto pick_version = [&](const std::vector<VersionMetadata>& versions) {
    return versions[static_cast<std::size_t>(rng.uniform() * versions.size()) % versions.size()]
        .version;
  };
  for (int op = 0; op < 120; ++op) {
    const double roll = rng.uniform();
    // Lifecycle-rule violations (double promote, rollback without
    // parent...) are expected here; only GC safety is under test.
    try {
      const auto versions = registry.list();
      if (roll < 0.25 || versions.empty()) {
        // Half the publishes stamp a parent, like the learn loop does.
        if (!versions.empty() && rng.uniform() < 0.5) {
          registry.publish(archive(), "", pick_version(versions));
        } else {
          registry.publish(archive());
        }
      } else if (roll < 0.50) {
        registry.promote(pick_version(versions));
      } else if (roll < 0.60) {
        registry.rollback_to(pick_version(versions));
      } else if (roll < 0.70) {
        registry.retire(pick_version(versions));
      } else if (roll < 0.80) {
        registry.pin(pick_version(versions), rng.uniform() < 0.5);
      } else {
        // Parents of live (staging/canary/active) versions are rollback
        // targets; record which exist going in, assert they survive.
        const auto current_before = registry.current();
        std::set<std::uint64_t> rollback_targets;
        for (const auto& meta : registry.list()) {
          const bool live = meta.state != VersionState::kRetired ||
                            (current_before && *current_before == meta.version);
          if (live && meta.parent != 0 && registry.metadata(meta.parent).has_value()) {
            rollback_targets.insert(meta.parent);
          }
        }
        registry.gc(static_cast<std::size_t>(rng.uniform() * 3.0));
        for (const std::uint64_t parent : rollback_targets) {
          ASSERT_TRUE(fs::exists(registry.archive_path(parent)))
              << "gc removed rollback target v" << parent << " at op " << op;
        }
      }
    } catch (const RegistryError&) {
    }

    // Invariant sweep after every op.
    const auto current = registry.current();
    if (current) {
      ASSERT_TRUE(fs::exists(registry.archive_path(*current)))
          << "gc removed the active version v" << *current << " at op " << op;
      ASSERT_TRUE(registry.metadata(*current).has_value());
    }
    const auto canary = registry.canary();
    if (canary) {
      ASSERT_TRUE(fs::exists(registry.archive_path(*canary)))
          << "gc removed the canary v" << *canary << " at op " << op;
    }
    for (const auto& meta : registry.list()) {
      if (meta.pinned) {
        ASSERT_TRUE(fs::exists(registry.archive_path(meta.version)))
            << "gc removed pinned v" << meta.version << " at op " << op;
      }
    }
  }
  // Whatever survived must still serve.
  if (const auto current = registry.current()) {
    EXPECT_NE(registry.load(*current), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Crash safety (failpoints): a publish or promote that dies mid-flight
// must leave the previous good state serving.

TEST_F(RegistryFixture, CrashMidPublishPublishesNothing) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  ModelRegistry registry(fresh_root("crash_publish"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);

  // Die writing the archive: nothing new becomes visible.
  failpoints::configure("registry.publish.archive=always");
  EXPECT_THROW(registry.publish(archive()), RegistryError);
  failpoints::clear();
  EXPECT_EQ(registry.list().size(), 1u);
  EXPECT_EQ(registry.current(), v1);

  // Die after the archive, before the metadata: the orphan directory is
  // invisible to scans and the next publish reuses its number.
  failpoints::configure("registry.publish.meta=always");
  EXPECT_THROW(registry.publish(archive()), RegistryError);
  failpoints::clear();
  EXPECT_EQ(registry.list().size(), 1u);
  EXPECT_EQ(registry.current(), v1);
  const std::uint64_t v2 = registry.publish(archive());
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(registry.list().size(), 2u);
}

TEST_F(RegistryFixture, CrashMidPromoteKeepsPreviousCurrent) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  ModelRegistry registry(fresh_root("crash_promote"));
  const std::uint64_t v1 = registry.publish(archive());
  registry.promote(v1);
  registry.promote(v1);
  const std::uint64_t v2 = registry.publish(archive());
  registry.promote(v2);  // canary

  // Die between the candidate's metadata write and the CURRENT flip.
  failpoints::configure("registry.promote.current=always");
  EXPECT_THROW(registry.promote(v2), RegistryError);
  failpoints::clear();
  EXPECT_EQ(registry.current(), v1) << "a failed promote moved CURRENT";
  EXPECT_NE(registry.load(v1), nullptr);

  // GC in the crashed state must not eat the actually-serving version,
  // even though v2's metadata now (wrongly) claims active.
  registry.gc(0);
  EXPECT_TRUE(fs::exists(registry.archive_path(v1)));

  // Recovery: redoing the flip (rollback_to is the redo) completes the
  // promote and reconciles the stale metadata.
  registry.rollback_to(v2);
  EXPECT_EQ(registry.current(), v2);
  EXPECT_EQ(registry.metadata(v1)->state, VersionState::kRetired);
}

}  // namespace
}  // namespace misuse::registry

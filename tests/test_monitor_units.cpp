// Unit tests of the online monitor's standalone pieces (the integration
// behaviour is covered against a trained pipeline in test_detector.cpp).
#include <gtest/gtest.h>

#include "core/monitor.hpp"

namespace misuse::core {
namespace {

TEST(TrendDetector, QuietBeforeTwoFullWindows) {
  TrendDetector trend(4, 0.5);
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(trend.push(1.0)) << "at step " << i;
  }
}

TEST(TrendDetector, NoAlarmOnFlatStream) {
  TrendDetector trend(4, 0.5);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(trend.push(0.4));
}

TEST(TrendDetector, FiresOnSustainedDrop) {
  TrendDetector trend(4, 0.5);
  for (int i = 0; i < 8; ++i) trend.push(0.8);
  bool fired = false;
  for (int i = 0; i < 4; ++i) fired |= trend.push(0.1);  // mean halves and more
  EXPECT_TRUE(fired);
}

TEST(TrendDetector, IgnoresSingleOutlier) {
  TrendDetector trend(4, 0.5);
  for (int i = 0; i < 8; ++i) trend.push(0.8);
  EXPECT_FALSE(trend.push(0.01));  // one bad step can't halve a 4-mean
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(trend.push(0.8));
}

TEST(TrendDetector, RecoversAfterDrop) {
  TrendDetector trend(3, 0.5);
  for (int i = 0; i < 6; ++i) trend.push(0.9);
  for (int i = 0; i < 3; ++i) trend.push(0.1);  // fires somewhere in here
  // After the stream climbs back and stays, no more alarms.
  bool late_alarm = false;
  for (int i = 0; i < 12; ++i) {
    const bool fired = trend.push(0.9);
    if (i >= 6) late_alarm |= fired;
  }
  EXPECT_FALSE(late_alarm);
}

TEST(TrendDetector, DropThresholdIsRelative) {
  // 30% drop must not trigger a 50% detector but must trigger a 20% one.
  TrendDetector loose(4, 0.5);
  TrendDetector tight(4, 0.2);
  bool loose_fired = false, tight_fired = false;
  for (int i = 0; i < 8; ++i) {
    loose.push(1.0);
    tight.push(1.0);
  }
  for (int i = 0; i < 4; ++i) {
    loose_fired |= loose.push(0.7);
    tight_fired |= tight.push(0.7);
  }
  EXPECT_FALSE(loose_fired);
  EXPECT_TRUE(tight_fired);
}

TEST(TrendDetector, ResetClearsHistory) {
  TrendDetector trend(3, 0.5);
  for (int i = 0; i < 6; ++i) trend.push(0.9);
  trend.reset();
  // Fresh start: needs two full windows again before it can fire.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(trend.push(0.01));
}

TEST(TrendDetector, ZeroBaselineNeverFires) {
  TrendDetector trend(3, 0.5);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(trend.push(0.0));
}

}  // namespace
}  // namespace misuse::core

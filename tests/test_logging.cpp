#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

namespace misuse {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Logging, ParseNamesCaseInsensitive) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(Logging, UnknownNameDefaultsToInfo) {
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
}

TEST(Logging, SuppressedMessagesDoNotEvaluateSideEffectsLazily) {
  // The stream forms are built regardless, but emission respects the
  // level: this test just exercises the paths for coverage/sanity.
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_debug() << "invisible " << 1;
  log_info() << "invisible " << 2;
  log_warn() << "invisible " << 3;
  log_error() << "invisible " << 4;
  set_log_level(LogLevel::kError);
  log_error() << "visible on stderr during tests is acceptable";
  SUCCEED();
}

TEST(Logging, ThreadLogIdIsStablePerThreadAndDistinctAcrossThreads) {
  const int mine = detail::thread_log_id();
  EXPECT_EQ(detail::thread_log_id(), mine);  // stable on re-read

  int other_first = -1;
  int other_second = -1;
  std::thread t([&] {
    other_first = detail::thread_log_id();
    other_second = detail::thread_log_id();
  });
  t.join();
  EXPECT_EQ(other_first, other_second);
  EXPECT_NE(other_first, mine);
}

TEST(Logging, DefaultLevelReadsEnvironment) {
  // Save/restore MISUSEDET_LOG_LEVEL around the probe.
  const char* current = std::getenv("MISUSEDET_LOG_LEVEL");
  const std::string saved = current != nullptr ? current : "";

  setenv("MISUSEDET_LOG_LEVEL", "warn", 1);
  EXPECT_EQ(default_log_level(), LogLevel::kWarn);
  setenv("MISUSEDET_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(default_log_level(), LogLevel::kDebug);
  unsetenv("MISUSEDET_LOG_LEVEL");
  EXPECT_EQ(default_log_level(), LogLevel::kInfo);

  if (!saved.empty()) setenv("MISUSEDET_LOG_LEVEL", saved.c_str(), 1);
}

}  // namespace
}  // namespace misuse

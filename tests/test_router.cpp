// Router-tier tests. The pure pieces (consistent-hash ring, token-bucket
// quotas, endpoint parsing) are pinned exactly; the Router itself is
// driven end-to-end against in-process fake nodes that answer each
// forwarded event with a step record naming the node — enough to prove
// session affinity, quota rejection at the front door, and failure
// handoff (replay to the survivor, no verdict lost or duplicated).
// Byte-exactness of a real cluster against a single node is covered by
// scripts/cluster_smoke.sh and the bench --cluster leg.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.hpp"
#include "router/quota.hpp"
#include "router/router.hpp"
#include "util/line_io.hpp"
#include "util/socket.hpp"

namespace misuse::router {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// fnv1a64: pin the standard FNV-1a 64-bit test vectors so the ring (and
// the shard layer it mirrors) can never silently change hash functions.

TEST(Fnv1a64, MatchesReferenceVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);   // offset basis
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

// ---------------------------------------------------------------------------
// HashRing

std::vector<std::string> sample_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  // std::string left operand: the const char* + string&& overload trips a
  // GCC 12 -Wrestrict false positive through basic_string::insert.
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(std::string("u") + std::to_string(i) + "\x1fs0");
  }
  return keys;
}

TEST(HashRing, OwnershipIsPureFunctionOfNodeSet) {
  // Same final node set reached through different operation orders must
  // give identical ownership for every key.
  HashRing first(64);
  first.add_node("node-a");
  first.add_node("node-b");
  first.add_node("node-c");

  HashRing second(64);
  second.add_node("node-c");
  second.add_node("node-d");
  second.add_node("node-a");
  second.add_node("node-b");
  second.remove_node("node-d");

  for (const std::string& key : sample_keys(500)) {
    const std::string* lhs = first.owner_of(key);
    const std::string* rhs = second.owner_of(key);
    ASSERT_NE(lhs, nullptr);
    ASSERT_NE(rhs, nullptr);
    EXPECT_EQ(*lhs, *rhs) << "key " << key;
  }
}

TEST(HashRing, RemovalRemapsOnlyTheRemovedNodesKeys) {
  HashRing ring(64);
  ring.add_node("node-a");
  ring.add_node("node-b");
  ring.add_node("node-c");
  const std::vector<std::string> keys = sample_keys(600);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = *ring.owner_of(key);

  ring.remove_node("node-b");
  for (const std::string& key : keys) {
    const std::string& now = *ring.owner_of(key);
    if (before[key] == "node-b") {
      EXPECT_NE(now, "node-b");  // fell to a clockwise survivor
    } else {
      EXPECT_EQ(now, before[key]) << "survivor's key moved: " << key;
    }
  }
}

TEST(HashRing, AdditionStealsKeysOnlyForTheNewNode) {
  HashRing ring(64);
  ring.add_node("node-a");
  ring.add_node("node-b");
  const std::vector<std::string> keys = sample_keys(600);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = *ring.owner_of(key);

  ring.add_node("node-c");
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string& now = *ring.owner_of(key);
    if (now != before[key]) {
      EXPECT_EQ(now, "node-c") << "key moved between old nodes: " << key;
      ++moved;
    }
  }
  // The newcomer takes roughly 1/3 of the keyspace; anything from a few
  // percent up is proof it joined, anything near 100% would mean the
  // ring reshuffled wholesale.
  EXPECT_GT(moved, keys.size() / 10);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(HashRing, VirtualNodesBalanceLoad) {
  HashRing ring(64);
  ring.add_node("node-a");
  ring.add_node("node-b");
  ring.add_node("node-c");
  std::map<std::string, std::size_t> share;
  const std::vector<std::string> keys = sample_keys(3000);
  for (const std::string& key : keys) share[*ring.owner_of(key)] += 1;
  ASSERT_EQ(share.size(), 3u);  // every node owns something
  for (const auto& [node, count] : share) {
    // Expected 1000 +- O(1/sqrt(64)); allow a wide deterministic band.
    EXPECT_GT(count, 500u) << node;
    EXPECT_LT(count, 1700u) << node;
  }
}

TEST(HashRing, EmptyRingAndNoOpMutations) {
  HashRing ring(8);
  EXPECT_EQ(ring.owner_of("anything"), nullptr);
  ring.remove_node("ghost");  // absent: no-op
  EXPECT_EQ(ring.node_count(), 0u);
  ring.add_node("only");
  ring.add_node("only");  // duplicate: no-op
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_EQ(*ring.owner_of("anything"), "only");
  ring.remove_node("only");
  EXPECT_EQ(ring.owner_of("anything"), nullptr);
}

// ---------------------------------------------------------------------------
// parse_node_endpoint

TEST(ParseNodeEndpoint, AcceptsScoringAndAdminForms) {
  const auto plain = parse_node_endpoint("10.0.0.5:9000");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->host, "10.0.0.5");
  EXPECT_EQ(plain->port, 9000);
  EXPECT_EQ(plain->admin_port, 0);
  EXPECT_EQ(plain->name(), "10.0.0.5:9000");

  const auto with_admin = parse_node_endpoint("localhost:7000:7100");
  ASSERT_TRUE(with_admin.has_value());
  EXPECT_EQ(with_admin->host, "localhost");
  EXPECT_EQ(with_admin->port, 7000);
  EXPECT_EQ(with_admin->admin_port, 7100);
}

TEST(ParseNodeEndpoint, RejectsMalformedSpecs) {
  for (const char* bad : {"", "hostonly", ":9000", "h:", "h:0", "h:70000", "h:nope", "h:9000:0",
                          "h:9000:70000", "h:9000:nan"}) {
    EXPECT_FALSE(parse_node_endpoint(bad).has_value()) << bad;
  }
}

// ---------------------------------------------------------------------------
// TenantQuotas

TEST(TenantQuotas, DisabledQuotasAdmitEverything) {
  TenantQuotas quotas(QuotaConfig{0.0, 0.0});
  EXPECT_FALSE(quotas.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_EQ(quotas.tenants(), 0u);  // no bucket state kept
}

TEST(TenantQuotas, BurstBoundsTheInitialBucket) {
  TenantQuotas quotas(QuotaConfig{1.0, 2.0});
  EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_FALSE(quotas.admit("u0", 0.0));  // bucket empty
}

TEST(TenantQuotas, RefillsAtRateAndCapsAtBurst) {
  TenantQuotas quotas(QuotaConfig{1.0, 2.0});
  EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_FALSE(quotas.admit("u0", 0.5));   // 0.5 tokens back: still short
  EXPECT_TRUE(quotas.admit("u0", 1.6));    // 1.1 more: one full token
  EXPECT_FALSE(quotas.admit("u0", 1.6));
  // Long idle refills to burst, never beyond it.
  EXPECT_TRUE(quotas.admit("u0", 1000.0));
  EXPECT_TRUE(quotas.admit("u0", 1000.0));
  EXPECT_FALSE(quotas.admit("u0", 1000.0));
}

TEST(TenantQuotas, BackwardsTimeNeverRefills) {
  TenantQuotas quotas(QuotaConfig{1.0, 2.0});
  EXPECT_TRUE(quotas.admit("u0", 10.0));
  EXPECT_TRUE(quotas.admit("u0", 10.0));
  EXPECT_FALSE(quotas.admit("u0", 5.0));   // clock went backwards: no refill
  EXPECT_FALSE(quotas.admit("u0", 10.5));  // refill measured from t=10, not t=5
  EXPECT_TRUE(quotas.admit("u0", 11.5));
}

TEST(TenantQuotas, TenantsAreIndependent) {
  TenantQuotas quotas(QuotaConfig{1.0, 1.0});
  EXPECT_TRUE(quotas.admit("u0", 0.0));
  EXPECT_FALSE(quotas.admit("u0", 0.0));
  EXPECT_TRUE(quotas.admit("u1", 0.0));  // fresh tenant, fresh bucket
  EXPECT_EQ(quotas.tenants(), 2u);
}

TEST(TenantQuotas, DefaultBurstIsRateWithFloorOne) {
  TenantQuotas three(QuotaConfig{3.0, 0.0});
  EXPECT_TRUE(three.admit("u0", 0.0));
  EXPECT_TRUE(three.admit("u0", 0.0));
  EXPECT_TRUE(three.admit("u0", 0.0));
  EXPECT_FALSE(three.admit("u0", 0.0));  // burst defaulted to rate = 3

  TenantQuotas slow(QuotaConfig{0.1, 0.0});
  EXPECT_TRUE(slow.admit("u0", 0.0));    // burst floors at 1 token
  EXPECT_FALSE(slow.admit("u0", 0.0));
}

TEST(TenantQuotas, ClockDomainsKeepIndependentBaselines) {
  // Producer event time (epoch-scale) and wall clock (seconds since
  // boot) are incomparable; a bucket whose baseline was set from a
  // large event stamp must still refill on later wall-clock traffic —
  // the failure mode is elapsed == 0 forever and a permanently
  // throttled tenant.
  TenantQuotas quotas(QuotaConfig{1.0, 2.0});
  EXPECT_TRUE(quotas.admit("u0", 1.7e9, QuotaClock::kEvent));
  EXPECT_TRUE(quotas.admit("u0", 1.7e9, QuotaClock::kEvent));
  EXPECT_FALSE(quotas.admit("u0", 1.7e9, QuotaClock::kEvent));
  // First wall reading only sets the wall baseline: no refill (the
  // event baseline says nothing about wall-elapsed time)...
  EXPECT_FALSE(quotas.admit("u0", 100.0, QuotaClock::kWall));
  // ...but one wall second later a token is back, even though wall time
  // is numerically eons behind the event stamps.
  EXPECT_TRUE(quotas.admit("u0", 101.0, QuotaClock::kWall));
  // The event-domain baseline was untouched by the wall traffic.
  EXPECT_FALSE(quotas.admit("u0", 1.7e9, QuotaClock::kEvent));
  EXPECT_TRUE(quotas.admit("u0", 1.7e9 + 1.0, QuotaClock::kEvent));
}

// ---------------------------------------------------------------------------
// Router end-to-end against fake nodes.

/// A stand-in serve node: accepts connections and answers every NDJSON
/// line with a step record that names the node, so tests can observe
/// which node served each event. stop() simulates a node crash.
class FakeNode {
 public:
  explicit FakeNode(std::string id)
      : id_(std::move(id)), listener_(TcpListener::bind(0, "127.0.0.1")) {
    accept_thread_ = std::thread([this] {
      while (auto stream = listener_.accept()) {
        std::lock_guard<std::mutex> lock(mutex_);
        conns_.push_back(std::make_unique<TcpStream>(std::move(*stream)));
        TcpStream* conn = conns_.back().get();
        workers_.emplace_back([this, conn] { serve(*conn); });
      }
    });
  }
  ~FakeNode() { stop(); }

  std::uint16_t port() const { return listener_.port(); }
  const std::string& id() const { return id_; }
  std::uint64_t lines_seen() const { return lines_seen_.load(std::memory_order_relaxed); }
  std::uint64_t replies_sent() const { return replies_sent_.load(std::memory_order_relaxed); }

  /// Wedge: stop answering after `n` total replies. Lines are still
  /// *read* (the node looks alive, it just owes verdicts), which is how
  /// a test parks replayed journal entries in flight with no reply.
  void set_reply_limit(std::uint64_t n) { reply_limit_.store(n, std::memory_order_relaxed); }

  /// Crash: refuse new connections, sever live ones mid-stream.
  void stop() {
    if (stopped_.exchange(true)) return;
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& conn : conns_) {
      // Raw fd-level sever: TcpStream::shutdown_write() flushes the
      // iostream, and the serve() worker owns that stream object — a
      // cross-thread flush would race its concurrent replies.
      ::shutdown(conn->fd(), SHUT_RDWR);
    }
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

 private:
  void serve(TcpStream& conn) {
    LineReader reader(conn.io());
    std::string line;
    while (reader.next(line)) {
      lines_seen_.fetch_add(1, std::memory_order_relaxed);
      std::vector<JsonField> fields;
      std::string error;
      std::string user, session;
      if (parse_flat_json(line, fields, error)) {
        user = get_string(fields, "user_id").value_or("");
        session = get_string(fields, "session_id").value_or("");
      }
      if (replies_sent_.load(std::memory_order_relaxed) >=
          reply_limit_.load(std::memory_order_relaxed)) {
        continue;  // wedged: consume the line, owe the verdict
      }
      replies_sent_.fetch_add(1, std::memory_order_relaxed);
      conn.io() << "{\"type\":\"step\",\"node\":\"" << id_ << "\",\"user_id\":\"" << user
                << "\",\"session_id\":\"" << session << "\"}\n";
      conn.io().flush();
    }
  }

  std::string id_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<TcpStream>> conns_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> lines_seen_{0};
  std::atomic<std::uint64_t> replies_sent_{0};
  std::atomic<std::uint64_t> reply_limit_{UINT64_MAX};
};

bool eventually(const std::function<bool()>& pred, std::chrono::milliseconds limit = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

class RouterClient {
 public:
  explicit RouterClient(std::uint16_t port)
      : stream_(tcp_connect("127.0.0.1", port)), reader_(stream_.io()) {}

  /// Bounds next_reply(): a verdict the router never delivers surfaces
  /// as a failed read instead of hanging the test.
  void set_read_timeout(double seconds) { stream_.set_read_timeout(seconds); }

  void send_event(const std::string& user, const std::string& session, double timestamp) {
    stream_.io() << "{\"user_id\":\"" << user << "\",\"session_id\":\"" << session
                 << "\",\"action\":\"login\",\"timestamp\":" << timestamp << "}\n";
    stream_.io().flush();
  }

  void send_raw(const std::string& line) {
    stream_.io() << line << "\n";
    stream_.io().flush();
  }

  /// Next reply, parsed. Returns false on EOF.
  bool next_reply(std::string& type, std::string& node) {
    std::string line;
    if (!reader_.next(line)) return false;
    std::vector<JsonField> fields;
    std::string error;
    if (!parse_flat_json(line, fields, error)) return false;
    type = get_string(fields, "type").value_or("");
    node = get_string(fields, "node").value_or("");
    return true;
  }

 private:
  TcpStream stream_;
  LineReader reader_;
};

struct RouterRunner {
  explicit RouterRunner(RouterConfig config) : router(std::move(config)) {
    thread = std::thread([this] { router.run(); });
  }
  ~RouterRunner() {
    router.request_stop();
    thread.join();
  }
  Router router;
  std::thread thread;
};

TEST(RouterCluster, SessionAffinityAndFailureHandoff) {
  std::signal(SIGPIPE, SIG_IGN);
  FakeNode node_a("A");
  FakeNode node_b("B");
  RouterConfig config;
  config.listen_host = "127.0.0.1";
  config.nodes = {NodeEndpoint{"127.0.0.1", node_a.port(), 0},
                  NodeEndpoint{"127.0.0.1", node_b.port(), 0}};
  config.tick_seconds = 0.05;
  RouterRunner runner(std::move(config));
  EXPECT_EQ(runner.router.live_nodes(), 2u);

  RouterClient client(runner.router.port());
  constexpr int kSessions = 16;
  constexpr int kStepsBefore = 3;
  std::map<std::string, std::string> owner;  // session -> fake node id
  for (int step = 0; step < kStepsBefore; ++step) {
    for (int s = 0; s < kSessions; ++s) {
      const std::string session = "s" + std::to_string(s);
      client.send_event("u" + std::to_string(s % 3), session, step);
      std::string type, node;
      ASSERT_TRUE(client.next_reply(type, node));
      ASSERT_EQ(type, "step");
      ASSERT_FALSE(node.empty());
      const auto [it, inserted] = owner.emplace(session, node);
      // Session affinity: every event of a session answers from one node.
      if (!inserted) {
        ASSERT_EQ(it->second, node) << "session " << session << " moved nodes";
      }
    }
  }
  EXPECT_EQ(runner.router.active_sessions(), static_cast<std::size_t>(kSessions));

  // Crash the node that owns session s0 (guarantees the dead node holds
  // at least one session) and count what the survivor must inherit.
  FakeNode& dead = owner.at("s0") == "A" ? node_a : node_b;
  FakeNode& survivor = owner.at("s0") == "A" ? node_b : node_a;
  std::size_t dead_sessions = 0;
  for (const auto& [session, node] : owner) dead_sessions += (node == dead.id()) ? 1 : 0;
  const std::uint64_t survivor_before = survivor.lines_seen();

  dead.stop();
  ASSERT_TRUE(eventually([&] { return runner.router.live_nodes() == 1; }));
  // Handoff replays every journaled event of the dead node's sessions to
  // the survivor; the client saw those verdicts already, so nothing new
  // arrives on the client socket (checked below by lockstep reads).
  ASSERT_TRUE(eventually([&] {
    return survivor.lines_seen() >= survivor_before + dead_sessions * kStepsBefore;
  }));

  // Every session keeps flowing, now answered by the survivor — exactly
  // one verdict per event, so no replayed verdict was duplicated to the
  // client and none of the new ones was lost.
  for (int s = 0; s < kSessions; ++s) {
    client.send_event("u" + std::to_string(s % 3), "s" + std::to_string(s), kStepsBefore);
    std::string type, node;
    ASSERT_TRUE(client.next_reply(type, node));
    EXPECT_EQ(type, "step");
    EXPECT_EQ(node, survivor.id()) << "session s" << s;
  }
  // The survivor processed its own pre-crash events, the replayed
  // journal, and every post-crash event.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kSessions - dead_sessions) * kStepsBefore +
      static_cast<std::uint64_t>(dead_sessions) * kStepsBefore + kSessions;
  ASSERT_TRUE(eventually([&] { return survivor.lines_seen() == expected; }));
}

TEST(RouterCluster, CascadingFailureMidReplayLosesNoVerdict) {
  std::signal(SIGPIPE, SIG_IGN);
  // The cascade the single-failure test cannot see: a session with an
  // undelivered verdict is handed off, the successor answers only the
  // *suppressed* prefix of the replay, then dies mid-replay. `confirmed`
  // must still equal the client-visible prefix at the second handoff —
  // counting suppressed replies as deliveries would inflate it and the
  // third node's replay would suppress a verdict the client never saw.
  FakeNode node_a("A");
  FakeNode node_b("B");
  FakeNode node_c("C");
  std::map<std::string, FakeNode*> nodes = {
      {"A", &node_a}, {"B", &node_b}, {"C", &node_c}};
  RouterConfig config;
  config.listen_host = "127.0.0.1";
  config.nodes = {NodeEndpoint{"127.0.0.1", node_a.port(), 0},
                  NodeEndpoint{"127.0.0.1", node_b.port(), 0},
                  NodeEndpoint{"127.0.0.1", node_c.port(), 0}};
  config.tick_seconds = 0.05;
  RouterRunner runner(std::move(config));
  ASSERT_EQ(runner.router.live_nodes(), 3u);

  RouterClient client(runner.router.port());
  client.set_read_timeout(5.0);
  const std::uint64_t suppressed_before = router_metrics().replay_suppressed.value();

  // Two delivered verdicts: the client-visible prefix is 2.
  std::string type, node_id;
  client.send_event("u0", "s0", 0.0);
  ASSERT_TRUE(client.next_reply(type, node_id));
  ASSERT_EQ(type, "step");
  client.send_event("u0", "s0", 1.0);
  ASSERT_TRUE(client.next_reply(type, node_id));
  ASSERT_EQ(type, "step");
  FakeNode& owner = *nodes.at(node_id);

  // Wedge the owner (keeps reading, stops answering) and send a third
  // event: the journal holds 3 entries, the client has seen 2 verdicts.
  owner.set_reply_limit(owner.replies_sent());
  client.send_event("u0", "s0", 2.0);
  ASSERT_TRUE(eventually([&] { return owner.lines_seen() == 3; }));

  // Every potential successor will answer exactly the 2-entry
  // suppressed prefix of the replay, then wedge with the fresh verdict
  // for event 3 still owed.
  for (auto& [id, fake] : nodes) {
    if (fake != &owner) fake->set_reply_limit(2);
  }
  owner.stop();  // first failure: the 3-entry journal replays
  ASSERT_TRUE(eventually([&] { return runner.router.live_nodes() == 2; }));
  FakeNode* successor = nullptr;
  ASSERT_TRUE(eventually([&] {
    for (auto& [id, fake] : nodes) {
      if (fake != &owner && fake->lines_seen() == 3) successor = fake;
    }
    return successor != nullptr;
  }));
  // Wait for the router to consume both suppressed replies — the state
  // the bug corrupts — before triggering the cascade.
  ASSERT_TRUE(eventually(
      [&] { return router_metrics().replay_suppressed.value() >= suppressed_before + 2; }));

  FakeNode* last = nullptr;
  for (auto& [id, fake] : nodes) {
    if (fake != &owner && fake != successor) last = fake;
  }
  ASSERT_NE(last, nullptr);
  last->set_reply_limit(UINT64_MAX);
  successor->stop();  // second failure, mid-replay
  ASSERT_TRUE(eventually([&] { return runner.router.live_nodes() == 1; }));

  // The surviving node's replay must deliver exactly the verdict the
  // client never saw (event 3), then the fourth event's verdict —
  // nothing lost, nothing duplicated.
  client.send_event("u0", "s0", 3.0);
  ASSERT_TRUE(client.next_reply(type, node_id)) << "verdict for event 3 was lost in the cascade";
  EXPECT_EQ(type, "step");
  EXPECT_EQ(node_id, last->id());
  ASSERT_TRUE(client.next_reply(type, node_id)) << "verdict for event 4 never arrived";
  EXPECT_EQ(type, "step");
  EXPECT_EQ(node_id, last->id());
  // Exactly 4 verdicts total reached the wire from the survivor: 2
  // suppressed replays + the fresh event-3 verdict + event 4.
  EXPECT_EQ(last->lines_seen(), 4u);
}

TEST(RouterCluster, SessionTtlMustOutliveNodeTtl) {
  FakeNode node("N");
  RouterConfig bad;
  bad.listen_host = "127.0.0.1";
  bad.nodes = {NodeEndpoint{"127.0.0.1", node.port(), 0}};
  bad.session_ttl_seconds = 300.0;
  bad.node_ttl_seconds = 900.0;  // journal would be pruned first: refuse
  EXPECT_THROW(Router{std::move(bad)}, std::runtime_error);

  RouterConfig ok;
  ok.listen_host = "127.0.0.1";
  ok.nodes = {NodeEndpoint{"127.0.0.1", node.port(), 0}};
  ok.session_ttl_seconds = 900.0;
  ok.node_ttl_seconds = 300.0;  // comfortable 3x margin
  Router router(std::move(ok));
  EXPECT_EQ(router.live_nodes(), 1u);
  router.request_stop();
}

TEST(RouterCluster, QuotaRejectsAtTheFrontDoor) {
  std::signal(SIGPIPE, SIG_IGN);
  FakeNode node("N");
  RouterConfig config;
  config.listen_host = "127.0.0.1";
  config.nodes = {NodeEndpoint{"127.0.0.1", node.port(), 0}};
  config.quota.rate = 1.0;
  config.quota.burst = 2.0;
  RouterRunner runner(std::move(config));
  RouterClient client(runner.router.port());

  std::string type, dummy;
  // Burst of two admitted, third rejected with an error record the node
  // never sees (event time drives the bucket: all three stamp t=0).
  for (int i = 0; i < 2; ++i) {
    client.send_event("tenant-a", "s0", 0.0);
    ASSERT_TRUE(client.next_reply(type, dummy));
    EXPECT_EQ(type, "step");
  }
  client.send_event("tenant-a", "s0", 0.0);
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "error");

  // Two event-time seconds later one token is back...
  client.send_event("tenant-a", "s0", 2.0);
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "step");
  // ...and other tenants were never throttled.
  client.send_event("tenant-b", "s0", 0.0);
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "step");

  // Per-tenant event clocks: tenant-b jumping to a far-future stamp
  // must not advance tenant-a's refill clock (a global event clock
  // would refill every bucket here).
  client.send_event("tenant-b", "s0", 5e8);
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "step");
  client.send_event("tenant-a", "s0", 2.0);  // drains tenant-a's last token
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "step");
  client.send_event("tenant-a", "s0", 2.5);  // 0.5 event-seconds: no token yet
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "error");

  EXPECT_EQ(node.lines_seen(), 6u);  // the rejected events were never forwarded
}

TEST(RouterCluster, MalformedLinesAnswerWithErrorRecords) {
  std::signal(SIGPIPE, SIG_IGN);
  FakeNode node("N");
  RouterConfig config;
  config.listen_host = "127.0.0.1";
  config.nodes = {NodeEndpoint{"127.0.0.1", node.port(), 0}};
  RouterRunner runner(std::move(config));
  RouterClient client(runner.router.port());

  std::string type, dummy;
  client.send_raw("this is not json");
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "error");
  client.send_raw("{\"user_id\":\"u0\"}");  // missing session_id/action
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "error");
  // The connection survives rejected lines.
  client.send_event("u0", "s0", 0.0);
  ASSERT_TRUE(client.next_reply(type, dummy));
  EXPECT_EQ(type, "step");
  EXPECT_EQ(node.lines_seen(), 1u);
}

TEST(RouterCluster, ConstructorRequiresAReachableNode) {
  std::uint16_t dead_port;
  {
    TcpListener probe = TcpListener::bind(0, "127.0.0.1");
    dead_port = probe.port();
  }  // released: connections to dead_port now refuse

  RouterConfig config;
  config.listen_host = "127.0.0.1";
  config.nodes = {NodeEndpoint{"127.0.0.1", dead_port, 0}};
  EXPECT_THROW(Router{std::move(config)}, std::runtime_error);

  // One dead + one live node: starts with the survivor only.
  FakeNode node("N");
  RouterConfig partial;
  partial.listen_host = "127.0.0.1";
  partial.nodes = {NodeEndpoint{"127.0.0.1", dead_port, 0},
                   NodeEndpoint{"127.0.0.1", node.port(), 0}};
  Router router(std::move(partial));
  EXPECT_EQ(router.live_nodes(), 1u);
  router.request_stop();
}

}  // namespace
}  // namespace misuse::router

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "cluster/assigner.hpp"
#include "cluster/expert_policy.hpp"
#include "util/rng.hpp"

namespace misuse::cluster {
namespace {

// --- agglomerate_by_similarity ------------------------------------------

Matrix block_similarity(std::size_t block_size, std::size_t blocks, float within, float between) {
  const std::size_t n = block_size * blocks;
  Matrix sim(n, n, between);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i / block_size == j / block_size) sim(i, j) = within;
    }
    sim(i, i) = 1.0f;
  }
  return sim;
}

TEST(Agglomerate, RecoversBlockStructure) {
  const Matrix sim = block_similarity(4, 3, 0.9f, 0.1f);
  const auto groups = agglomerate_by_similarity(sim, 3);
  ASSERT_EQ(groups.size(), 12u);
  // All members of a block share a group; different blocks differ.
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(groups[b * 4], groups[b * 4 + i]);
    }
  }
  EXPECT_NE(groups[0], groups[4]);
  EXPECT_NE(groups[4], groups[8]);
}

TEST(Agglomerate, SingleGroupMergesEverything) {
  const Matrix sim = block_similarity(3, 2, 0.9f, 0.2f);
  const auto groups = agglomerate_by_similarity(sim, 1);
  for (std::size_t g : groups) EXPECT_EQ(g, 0u);
}

TEST(Agglomerate, TargetEqualToItemsKeepsSingletons) {
  const Matrix sim = block_similarity(2, 2, 0.9f, 0.1f);
  const auto groups = agglomerate_by_similarity(sim, 4);
  std::set<std::size_t> distinct(groups.begin(), groups.end());
  EXPECT_EQ(distinct.size(), 4u);
}

// --- ExpertPolicy over a synthetic ensemble ------------------------------

std::vector<std::vector<int>> grouped_corpus(std::size_t groups, std::size_t per_group,
                                             std::size_t actions_per_group, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> docs;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t d = 0; d < per_group; ++d) {
      std::vector<int> doc;
      const std::size_t len = 6 + rng.uniform_index(8);
      for (std::size_t i = 0; i < len; ++i) {
        doc.push_back(static_cast<int>(g * actions_per_group +
                                       rng.uniform_index(actions_per_group)));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

TEST(ExpertPolicy, PartitionCoversAllSessions) {
  const auto docs = grouped_corpus(3, 30, 4, 1);
  topics::EnsembleConfig ec;
  ec.topic_counts = {3, 5};
  ec.iterations = 50;
  const auto ensemble = topics::LdaEnsemble::fit(docs, 12, ec);

  ExpertPolicyConfig pc;
  pc.target_clusters = 3;
  pc.min_cluster_sessions = 5;
  const ClusteringResult result = ExpertPolicy(pc).run(ensemble);

  ASSERT_EQ(result.session_cluster.size(), docs.size());
  std::size_t total = 0;
  for (const auto& c : result.clusters) total += c.size();
  EXPECT_EQ(total, docs.size());  // union of clusters = H (§III)
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const std::size_t c = result.session_cluster[d];
    ASSERT_LT(c, result.clusters.size());
    EXPECT_TRUE(std::find(result.clusters[c].begin(), result.clusters[c].end(), d) !=
                result.clusters[c].end());
  }
}

TEST(ExpertPolicy, RecoversPlantedGroups) {
  const auto docs = grouped_corpus(3, 40, 4, 2);
  topics::EnsembleConfig ec;
  ec.topic_counts = {3, 6};
  ec.iterations = 60;
  const auto ensemble = topics::LdaEnsemble::fit(docs, 12, ec);

  ExpertPolicyConfig pc;
  pc.target_clusters = 3;
  pc.min_cluster_sessions = 10;
  const ClusteringResult result = ExpertPolicy(pc).run(ensemble);

  // Cluster purity w.r.t. planted groups must be high.
  double weighted_purity = 0.0;
  for (const auto& members : result.clusters) {
    std::map<std::size_t, std::size_t> counts;
    for (std::size_t d : members) ++counts[d / 40];
    std::size_t peak = 0;
    for (const auto& [g, n] : counts) peak = std::max(peak, n);
    weighted_purity += static_cast<double>(peak);
  }
  weighted_purity /= static_cast<double>(docs.size());
  EXPECT_GT(weighted_purity, 0.9);
}

TEST(ExpertPolicy, MergesUndersizedClusters) {
  const auto docs = grouped_corpus(2, 50, 5, 3);
  topics::EnsembleConfig ec;
  ec.topic_counts = {8};
  ec.iterations = 40;
  const auto ensemble = topics::LdaEnsemble::fit(docs, 10, ec);

  ExpertPolicyConfig pc;
  pc.target_clusters = 8;
  pc.min_cluster_sessions = 20;  // forces merges
  const ClusteringResult result = ExpertPolicy(pc).run(ensemble);
  for (const auto& members : result.clusters) {
    EXPECT_GE(members.size(), 20u);
  }
  EXPECT_EQ(result.representative_topics.size(), result.clusters.size());
}

// --- ClusterAssigner ------------------------------------------------------

struct AssignerFixture {
  std::vector<std::vector<int>> cluster_a;  // actions 0-2
  std::vector<std::vector<int>> cluster_b;  // actions 5-7
  ClusterAssigner assigner;

  static AssignerFixture make() {
    Rng rng(5);
    std::vector<std::vector<int>> a, b;
    for (int i = 0; i < 60; ++i) {
      std::vector<int> sa, sb;
      const std::size_t len = 5 + rng.uniform_index(10);
      for (std::size_t j = 0; j < len; ++j) {
        sa.push_back(static_cast<int>(rng.uniform_index(3)));
        sb.push_back(static_cast<int>(5 + rng.uniform_index(3)));
      }
      a.push_back(std::move(sa));
      b.push_back(std::move(sb));
    }
    AssignerConfig config;
    config.features.vocab = 8;
    config.svm.nu = 0.1;
    std::vector<std::vector<std::span<const int>>> clusters(2);
    for (const auto& s : a) clusters[0].push_back(s);
    for (const auto& s : b) clusters[1].push_back(s);
    return AssignerFixture{std::move(a), std::move(b),
                           ClusterAssigner::train(clusters, config)};
  }
};

TEST(Assigner, RoutesSessionsToTheirCluster) {
  auto fixture = AssignerFixture::make();
  EXPECT_EQ(fixture.assigner.cluster_count(), 2u);
  const std::vector<int> like_a = {0, 1, 2, 0, 1};
  const std::vector<int> like_b = {5, 6, 7, 5, 6};
  EXPECT_EQ(fixture.assigner.assign(like_a), 0u);
  EXPECT_EQ(fixture.assigner.assign(like_b), 1u);
}

TEST(Assigner, ScoresOrderedCorrectly) {
  auto fixture = AssignerFixture::make();
  const std::vector<int> like_a = {1, 2, 0, 1};
  const auto scores = fixture.assigner.scores(like_a);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(Assigner, OnlineVotingFreezesEarlyCluster) {
  auto fixture = AssignerFixture::make();
  auto online = fixture.assigner.start_online();
  // 15 actions of cluster A, then a long tail of cluster B actions: the
  // vote must stay with A, while the per-step argmax flips to B.
  for (int i = 0; i < 15; ++i) online.push(i % 3);
  EXPECT_EQ(online.voted_cluster(), 0u);
  for (int i = 0; i < 40; ++i) online.push(5 + i % 3);
  EXPECT_EQ(online.voted_cluster(), 0u);       // frozen by the first-15 vote
  EXPECT_EQ(online.current_argmax(), 1u);      // per-step view has flipped
}

TEST(Assigner, OnlineResetClearsVotes) {
  auto fixture = AssignerFixture::make();
  auto online = fixture.assigner.start_online();
  for (int i = 0; i < 10; ++i) online.push(i % 3);
  online.reset();
  EXPECT_EQ(online.steps(), 0u);
  for (int i = 0; i < 10; ++i) online.push(5 + i % 3);
  EXPECT_EQ(online.voted_cluster(), 1u);
}

TEST(Assigner, SaveLoadRoundTripsScores) {
  auto fixture = AssignerFixture::make();
  std::stringstream buf;
  BinaryWriter w(buf);
  fixture.assigner.save(w);
  BinaryReader r(buf);
  const ClusterAssigner loaded = ClusterAssigner::load(r);
  const std::vector<int> probe = {0, 5, 1, 6, 2};
  const auto a = fixture.assigner.scores(probe);
  const auto b = loaded.scores(probe);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  EXPECT_EQ(loaded.config().vote_actions, fixture.assigner.config().vote_actions);
}

}  // namespace
}  // namespace misuse::cluster

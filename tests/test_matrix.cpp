#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace misuse {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m(1, 2), 1.5f);
  m(0, 1) = 7.0f;
  EXPECT_EQ(m(0, 1), 7.0f);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m(1, 0) = 3.0f;
  auto row = m.row(1);
  EXPECT_EQ(row[0], 3.0f);
  row[1] = 4.0f;
  EXPECT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, FromRowsChecksSize) {
  const auto m = Matrix::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, FillAndZero) {
  Matrix m(3, 3, 2.0f);
  m.zero();
  for (float v : m.flat()) EXPECT_EQ(v, 0.0f);
  m.fill(5.0f);
  for (float v : m.flat()) EXPECT_EQ(v, 5.0f);
}

TEST(Matrix, ResizeDiscardsContents) {
  Matrix m(2, 2, 9.0f);
  m.resize(3, 1, 0.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  for (float v : m.flat()) EXPECT_EQ(v, 0.5f);
}

TEST(Matrix, TransposedSwapsIndices) {
  auto m = Matrix::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), t(c, r));
  }
}

TEST(Matrix, InitUniformRespectsScale) {
  Rng rng(1);
  Matrix m(20, 20);
  m.init_uniform(rng, 0.25f);
  bool nonzero = false;
  for (float v : m.flat()) {
    EXPECT_LE(std::abs(v), 0.25f);
    nonzero |= (v != 0.0f);
  }
  EXPECT_TRUE(nonzero);
}

TEST(Matrix, InitXavierBoundsByFanInOut) {
  Rng rng(2);
  Matrix m(50, 50);
  m.init_xavier(rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (float v : m.flat()) EXPECT_LE(std::abs(v), bound);
}

TEST(Matrix, InitGaussianHasRoughlyRightSpread) {
  Rng rng(3);
  Matrix m(100, 100);
  m.init_gaussian(rng, 2.0f);
  double sum_sq = 0.0;
  for (float v : m.flat()) sum_sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sum_sq / static_cast<double>(m.size())), 2.0, 0.1);
}

TEST(Matrix, EqualityIsElementwise) {
  auto a = Matrix::from_rows(1, 2, {1, 2});
  auto b = Matrix::from_rows(1, 2, {1, 2});
  auto c = Matrix::from_rows(2, 1, {1, 2});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b(0, 1) = 9.0f;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, SaveLoadRoundTrip) {
  Rng rng(4);
  Matrix m(7, 5);
  m.init_gaussian(rng, 1.0f);
  std::stringstream buf;
  BinaryWriter w(buf);
  m.save(w);
  BinaryReader r(buf);
  const Matrix loaded = Matrix::load(r);
  EXPECT_TRUE(m == loaded);
}

TEST(Matrix, LoadRejectsCorruptShape) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write<std::uint64_t>(2);
  w.write<std::uint64_t>(2);
  w.write_vector(std::vector<float>{1.0f});  // only 1 element for a 2x2
  BinaryReader r(buf);
  EXPECT_THROW(Matrix::load(r), SerializeError);
}

}  // namespace
}  // namespace misuse

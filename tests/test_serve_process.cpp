// End-to-end process tests of the misusedet_serve binary (path baked in
// as MISUSEDET_SERVE_BIN): SIGTERM graceful drain with live TCP
// connections mid-session, and kill -9 crash recovery via --wal-dir —
// the recovered run's session reports must match an uninterrupted run's.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "synth/portal.hpp"
#include "util/line_io.hpp"
#include "util/socket.hpp"

namespace misuse::serve {
namespace {

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "misusedet_proc_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A spawned misusedet_serve with its three standard streams piped.
class ServeProcess {
 public:
  explicit ServeProcess(const std::vector<std::string>& extra_args) {
    int in_pipe[2];
    int out_pipe[2];
    int err_pipe[2];
    if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) {
      throw std::runtime_error("pipe failed");
    }
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(in_pipe[0], STDIN_FILENO);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::dup2(err_pipe[1], STDERR_FILENO);
      for (const int fd :
           {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1], err_pipe[0], err_pipe[1]}) {
        ::close(fd);
      }
      std::vector<std::string> args = {MISUSEDET_SERVE_BIN};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[1]);
    stdin_fd_ = in_pipe[1];
    stdout_fd_ = out_pipe[0];
    stderr_fd_ = err_pipe[0];
    stdout_buf_ = std::make_unique<FdStreamBuf>(stdout_fd_);
    stdout_stream_ = std::make_unique<std::istream>(stdout_buf_.get());
    stderr_buf_ = std::make_unique<FdStreamBuf>(stderr_fd_);
    stderr_stream_ = std::make_unique<std::istream>(stderr_buf_.get());
  }

  ~ServeProcess() {
    close_stdin();
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    if (stderr_fd_ >= 0) ::close(stderr_fd_);
  }

  /// Writes one NDJSON line to the child's stdin (EINTR-safe full write).
  /// Returns false once the child stopped reading (EPIPE).
  bool write_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(stdin_fd_, framed.data() + off, framed.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void close_stdin() {
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }

  std::istream& out() { return *stdout_stream_; }
  std::istream& err() { return *stderr_stream_; }

  /// Blocks until the child logs its listening port on stderr.
  std::uint16_t wait_for_port() {
    LineReader reader(*stderr_stream_);
    std::string line;
    while (reader.next(line)) {
      const auto pos = line.find("listening on port ");
      if (pos != std::string::npos) {
        return static_cast<std::uint16_t>(
            std::stoul(line.substr(pos + std::string("listening on port ").size())));
      }
    }
    ADD_FAILURE() << "child exited before logging its port";
    return 0;
  }

  void signal(int sig) { ::kill(pid_, sig); }

  void kill_hard() {
    ::kill(pid_, SIGKILL);
    wait();
  }

  int wait() {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  int stderr_fd_ = -1;
  std::unique_ptr<FdStreamBuf> stdout_buf_;
  std::unique_ptr<std::istream> stdout_stream_;
  std::unique_ptr<FdStreamBuf> stderr_buf_;
  std::unique_ptr<std::istream> stderr_stream_;
};

class ServeProcessFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The child dying mid-write must surface as a failed write, not kill
    // this test process.
    ::signal(SIGPIPE, SIG_IGN);

    synth::PortalConfig pc;
    pc.sessions = 200;
    pc.users = 30;
    pc.action_count = 50;
    pc.seed = 9;
    synth::Portal portal(pc);
    const SessionStore store = portal.generate();
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {8, 10};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 3;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    const core::MisuseDetector detector = core::MisuseDetector::train(store, dc);

    model_path_ = new std::string(scratch_dir("model") + "/detector.bin");
    std::ofstream out(*model_path_, std::ios::binary);
    BinaryWriter writer(out);
    detector.save(writer);

    // An interleaved six-session NDJSON trace over the trained vocabulary.
    trace_ = new std::vector<std::string>();
    actions_ = new std::vector<std::string>();
    std::vector<std::vector<int>> sessions;
    for (std::size_t i = 0; i < store.size() && sessions.size() < 6; ++i) {
      if (store.at(i).length() >= 3 && store.at(i).length() <= 15) {
        sessions.push_back(store.at(i).actions);
      }
    }
    std::vector<std::size_t> cursor(sessions.size(), 0);
    double t = 0.0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (cursor[s] >= sessions[s].size()) continue;
        const std::string action = detector.vocab().name(sessions[s][cursor[s]]);
        actions_->push_back(action);
        trace_->push_back(event_line("u" + std::to_string(s % 3), "s" + std::to_string(s),
                                     action, t));
        t += 1.0;
        ++cursor[s];
        progressed = true;
      }
    }
  }
  static void TearDownTestSuite() {
    delete model_path_;
    delete trace_;
    delete actions_;
    model_path_ = nullptr;
    trace_ = nullptr;
    actions_ = nullptr;
  }

  static std::string event_line(const std::string& user, const std::string& session,
                                const std::string& action, double t) {
    std::ostringstream line;
    line << R"({"user_id":")" << user << R"(","session_id":")" << session
         << R"(","action":")" << action << R"(","timestamp":)" << t << "}";
    return line.str();
  }

  static std::vector<std::string> session_reports(const std::vector<std::string>& lines) {
    std::vector<std::string> reports;
    for (const auto& line : lines) {
      if (line.find("\"type\":\"session_report\"") != std::string::npos) {
        reports.push_back(line);
      }
    }
    std::sort(reports.begin(), reports.end());
    return reports;
  }

  static std::vector<std::string> drain(std::istream& in) {
    std::vector<std::string> lines;
    LineReader reader(in);
    std::string line;
    while (reader.next(line)) lines.push_back(line);
    return lines;
  }

  /// Feeds lines on a helper thread (so the child's stdout never backs up
  /// against our stdin writes), drains stdout to EOF, reaps the child.
  static std::vector<std::string> feed_and_drain(ServeProcess& proc,
                                                 const std::vector<std::string>& lines,
                                                 int& exit_status) {
    std::thread feeder([&proc, &lines] {
      for (const auto& line : lines) {
        if (!proc.write_line(line)) break;
      }
      proc.close_stdin();
    });
    const auto out = drain(proc.out());
    feeder.join();
    exit_status = proc.wait();
    return out;
  }

  /// Reference run: the whole trace through one uninterrupted pipe-mode
  /// process, no WAL.
  static std::vector<std::string> baseline_reports() {
    ServeProcess proc({"--model=" + *model_path_, "--batch=4"});
    int status = 0;
    const auto lines = feed_and_drain(proc, *trace_, status);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    return session_reports(lines);
  }

  static std::string* model_path_;
  static std::vector<std::string>* trace_;
  static std::vector<std::string>* actions_;
};

std::string* ServeProcessFixture::model_path_ = nullptr;
std::vector<std::string>* ServeProcessFixture::trace_ = nullptr;
std::vector<std::string>* ServeProcessFixture::actions_ = nullptr;

// SIGTERM with multiple TCP connections mid-session: every open session
// gets a session_report on stdout before the process exits cleanly.
TEST_F(ServeProcessFixture, SigtermDrainsOpenTcpSessions) {
  ServeProcess proc({"--model=" + *model_path_, "--listen=0"});
  const std::uint16_t port = proc.wait_for_port();
  ASSERT_GT(port, 0);

  // Two concurrent connections, two in-flight sessions each; every
  // submitted event's verdict is read back, so all events are applied
  // before the signal lands.
  std::vector<TcpStream> clients;
  clients.push_back(tcp_connect("127.0.0.1", port));
  clients.push_back(tcp_connect("127.0.0.1", port));
  double t = 0.0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      for (int k = 0; k < 2; ++k) {
        const std::string& action =
            (*actions_)[(static_cast<std::size_t>(round) * 4 + c * 2 +
                         static_cast<std::size_t>(k)) %
                        actions_->size()];
        clients[c].io() << event_line("tcp" + std::to_string(c),
                                      "conn" + std::to_string(c) + "-" + std::to_string(k),
                                      action, t)
                        << "\n";
        clients[c].io().flush();
        t += 1.0;
        std::string verdict;
        LineReader reader(clients[c].io());
        ASSERT_TRUE(reader.next(verdict)) << "no verdict for connection " << c;
        EXPECT_NE(verdict.find("\"type\":\"step\""), std::string::npos) << verdict;
      }
    }
  }

  proc.signal(SIGTERM);
  const auto lines = drain(proc.out());
  const int status = proc.wait();
  EXPECT_TRUE(WIFEXITED(status)) << "server must exit, not die on a signal";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  const auto reports = session_reports(lines);
  ASSERT_EQ(reports.size(), 4u) << "one report per open session";
  for (std::size_t c = 0; c < 2; ++c) {
    for (int k = 0; k < 2; ++k) {
      const std::string id = "conn" + std::to_string(c) + "-" + std::to_string(k);
      EXPECT_TRUE(std::any_of(reports.begin(), reports.end(),
                              [&](const std::string& r) {
                                return r.find(id) != std::string::npos;
                              }))
          << "missing report for session " << id;
    }
  }
}

// Differential lockdown of the epoll front end: the identical trace,
// split across two TCP connections in lockstep, must produce byte-equal
// per-connection verdict streams and byte-equal shutdown session
// reports under --io=threads and --io=epoll. The epoll loop feeds the
// same ScoringServer::submit_sync the blocking path does, so any
// divergence is a framing or routing bug in the front end.
TEST_F(ServeProcessFixture, EpollFrontEndMatchesThreadsByteForByte) {
  struct TcpRun {
    std::vector<std::vector<std::string>> per_connection;
    std::vector<std::string> reports;
  };
  const auto run_mode = [&](const std::string& io_mode) {
    TcpRun result;
    ServeProcess proc({"--model=" + *model_path_, "--listen=0", "--io=" + io_mode});
    const std::uint16_t port = proc.wait_for_port();
    EXPECT_GT(port, 0);
    std::vector<TcpStream> clients;
    clients.push_back(tcp_connect("127.0.0.1", port));
    clients.push_back(tcp_connect("127.0.0.1", port));
    std::vector<std::unique_ptr<LineReader>> readers;
    for (auto& client : clients) readers.push_back(std::make_unique<LineReader>(client.io()));
    result.per_connection.resize(clients.size());
    // Lockstep (send one event, read its verdict) pins the server-side
    // arrival order, so both io modes score the exact same sequence.
    for (std::size_t i = 0; i < trace_->size(); ++i) {
      const std::size_t c = i % clients.size();
      clients[c].io() << (*trace_)[i] << "\n";
      clients[c].io().flush();
      std::string verdict;
      if (!readers[c]->next(verdict)) {
        ADD_FAILURE() << io_mode << ": no verdict for event " << i;
        break;
      }
      result.per_connection[c].push_back(verdict);
    }
    for (auto& client : clients) client.shutdown_write();
    proc.signal(SIGTERM);
    const auto lines = drain(proc.out());
    const int status = proc.wait();
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << io_mode;
    result.reports = session_reports(lines);
    return result;
  };

  const TcpRun threads = run_mode("threads");
  const TcpRun epoll = run_mode("epoll");
  ASSERT_EQ(threads.per_connection.size(), epoll.per_connection.size());
  for (std::size_t c = 0; c < threads.per_connection.size(); ++c) {
    EXPECT_EQ(threads.per_connection[c], epoll.per_connection[c]) << "connection " << c;
  }
  ASSERT_EQ(epoll.reports.size(), 6u) << "one shutdown report per session";
  EXPECT_EQ(threads.reports, epoll.reports);
}

// kill -9 mid-replay, restart on the same --wal-dir with --resume-replay,
// resend the stream from origin: the surviving run's session reports
// equal an uninterrupted run's.
TEST_F(ServeProcessFixture, Kill9RecoveryMatchesBaseline) {
  const auto baseline = baseline_reports();
  ASSERT_GT(baseline.size(), 0u);
  const std::string wal_dir = scratch_dir("kill9_wal");
  const std::size_t cut = trace_->size() / 2;

  {
    ServeProcess crashed({"--model=" + *model_path_, "--batch=1", "--wal-dir=" + wal_dir,
                          "--wal-sync=1"});
    LineReader reader(crashed.out());
    std::string line;
    std::size_t steps_seen = 0;
    for (std::size_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(crashed.write_line((*trace_)[i]));
      // --batch=1 flushes after every event; wait for its verdict so the
      // event is known applied (and, with --wal-sync=1, fsynced).
      while (reader.next(line)) {
        if (line.find("\"type\":\"step\"") != std::string::npos) {
          ++steps_seen;
          break;
        }
      }
    }
    ASSERT_EQ(steps_seen, cut);
    crashed.kill_hard();
  }

  ServeProcess restarted({"--model=" + *model_path_, "--batch=4", "--wal-dir=" + wal_dir,
                          "--resume-replay"});
  int status = 0;
  const auto lines = feed_and_drain(restarted, *trace_, status);  // from origin
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(session_reports(lines), baseline);
}

// CliArgs folds "--no-X" into key "X" with value "false", so main must
// read negative flags through their positive name; a consumption bug
// once left --no-steps and --no-quant silently inert. Pin both through
// the real binary: --no-steps suppresses per-step verdicts (reports
// still drain), and --no-quant flips the quant gate before model load
// (visible in the kernel-selection log line).
TEST_F(ServeProcessFixture, NegativeFlagsReachTheServer) {
  ServeProcess proc({"--model=" + *model_path_, "--batch=4", "--no-steps", "--no-quant"});
  int status = 0;
  const auto lines = feed_and_drain(proc, *trace_, status);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("\"type\":\"step\""), std::string::npos) << line;
  }
  EXPECT_EQ(session_reports(lines).size(), 6u) << "one report per drained session";
  const auto logs = drain(proc.err());
  EXPECT_TRUE(std::any_of(logs.begin(), logs.end(),
                          [](const std::string& l) {
                            return l.find("quantized sections off") != std::string::npos;
                          }))
      << "--no-quant did not reach the quant gate";
}

// EOF drain without --metrics-out: the final metrics snapshot must still
// surface, logged at INFO on stderr, so operators of bare deployments
// (no scrape file, no admin port) get the run's counters post-mortem.
TEST_F(ServeProcessFixture, DrainLogsFinalMetricsSnapshotWithoutMetricsOut) {
  ServeProcess proc({"--model=" + *model_path_, "--batch=4"});
  int status = 0;
  (void)feed_and_drain(proc, *trace_, status);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const auto logs = drain(proc.err());
  const auto snapshot = std::find_if(logs.begin(), logs.end(), [](const std::string& l) {
    return l.find("final metrics snapshot: ") != std::string::npos;
  });
  ASSERT_NE(snapshot, logs.end()) << "no final snapshot logged on EOF drain";
  EXPECT_NE(snapshot->find("\"serve.steps\""), std::string::npos) << *snapshot;
  EXPECT_NE(snapshot->find("\"serve.sessions_finished\""), std::string::npos) << *snapshot;
}

}  // namespace
}  // namespace misuse::serve

// Direct unit tests for core/drift's DriftMonitor — the window fill /
// threshold / constructor contracts the continuous-learning guardrails
// (src/learn/policy) lean on, exercised here in isolation rather than
// through the serving path.
#include "core/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sessions/store.hpp"

namespace misuse::core {
namespace {

SessionStore corpus(std::size_t vocab, const std::vector<std::vector<int>>& sessions) {
  ActionVocab v;
  for (std::size_t i = 0; i < vocab; ++i) v.intern("A" + std::to_string(i));
  SessionStore store(std::move(v));
  std::uint64_t id = 0;
  for (const auto& actions : sessions) {
    Session s;
    s.id = ++id;
    s.actions = actions;
    store.add(std::move(s));
  }
  return store;
}

TEST(DriftMonitorUnits, StoreAndCountConstructorsAgree) {
  // The serving layer builds the monitor from explicit counts
  // (training_action_counts); it must read identically to the
  // corpus-built monitor over the same traffic.
  const SessionStore store = corpus(3, {{0, 0, 1}, {1, 2, 2}, {0, 1, 2}});
  DriftConfig config;
  config.window_sessions = 4;
  DriftMonitor from_store(store, config);
  // The corpus above holds three 0s, three 1s, three 2s.
  DriftMonitor from_counts(std::vector<double>{3.0, 3.0, 3.0}, config);
  ASSERT_EQ(from_store.dimensions(), from_counts.dimensions());

  const std::vector<std::vector<int>> traffic = {{0, 1}, {2, 2}, {0, 0, 1}, {1, 2}};
  for (const auto& session : traffic) {
    const double a = from_store.observe(session);
    const double b = from_counts.observe(session);
    EXPECT_DOUBLE_EQ(a, b);
  }
  EXPECT_DOUBLE_EQ(from_store.current_divergence(), from_counts.current_divergence());
}

TEST(DriftMonitorUnits, SilentUntilQuarterWindowThenReports) {
  DriftConfig config;
  config.window_sessions = 8;  // quarter = 2 sessions
  DriftMonitor monitor(std::vector<double>{10.0, 10.0}, config);
  EXPECT_EQ(monitor.window_fill(), 0u);
  // Feed clearly shifted traffic: divergence must stay 0 (not "small")
  // until the window holds window_sessions/4 sessions.
  EXPECT_EQ(monitor.observe(std::vector<int>{1, 1, 1}), 0.0);
  EXPECT_EQ(monitor.window_fill(), 1u);
  const double at_quarter = monitor.observe(std::vector<int>{1, 1, 1});
  EXPECT_GT(at_quarter, 0.0) << "quarter-full window must start reporting";
  EXPECT_EQ(monitor.window_fill(), 2u);
}

TEST(DriftMonitorUnits, ThresholdGatesDriftDetected) {
  DriftConfig config;
  config.window_sessions = 4;
  config.threshold = 0.05;
  DriftMonitor matching(std::vector<double>{5.0, 5.0}, config);
  DriftMonitor shifted(std::vector<double>{5.0, 5.0}, config);
  for (int i = 0; i < 4; ++i) {
    matching.observe(std::vector<int>{0, 1});  // same 50/50 mix as training
    shifted.observe(std::vector<int>{1, 1});   // all mass on one action
  }
  EXPECT_FALSE(matching.drift_detected());
  EXPECT_LE(matching.current_divergence(), config.threshold);
  EXPECT_TRUE(shifted.drift_detected());
  EXPECT_GT(shifted.current_divergence(), config.threshold);
  // The divergence is the JS bound at most.
  EXPECT_LE(shifted.current_divergence(), std::log(2.0) + 1e-12);
}

TEST(DriftMonitorUnits, WindowSlidesAndRecovers) {
  DriftConfig config;
  config.window_sessions = 4;
  config.threshold = 0.05;
  DriftMonitor monitor(std::vector<double>{5.0, 5.0}, config);
  for (int i = 0; i < 4; ++i) monitor.observe(std::vector<int>{1, 1, 1, 1});
  EXPECT_TRUE(monitor.drift_detected());
  EXPECT_EQ(monitor.window_fill(), 4u);
  // Traffic reverts to the training mix; the shifted sessions must age
  // out of the bounded window and the gauge must come back down.
  for (int i = 0; i < 4; ++i) monitor.observe(std::vector<int>{0, 1, 0, 1});
  EXPECT_EQ(monitor.window_fill(), 4u) << "window must stay bounded";
  EXPECT_FALSE(monitor.drift_detected())
      << "divergence stuck high after traffic reverted: " << monitor.current_divergence();
}

TEST(DriftMonitorUnits, OutOfVocabActionsAreDrift) {
  DriftConfig config;
  config.window_sessions = 4;
  config.threshold = 0.05;
  // Reference over 3 actions; production traffic concentrates on an
  // action the training corpus barely saw.
  DriftMonitor monitor(std::vector<double>{10.0, 10.0, 0.0}, config);
  for (int i = 0; i < 4; ++i) monitor.observe(std::vector<int>{2, 2});
  EXPECT_TRUE(monitor.drift_detected());
}

}  // namespace
}  // namespace misuse::core

#include "cluster/baselines.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace misuse::cluster {
namespace {

// Two clusters with disjoint action pools (0-2 vs 5-7) over vocab 8.
struct Fixture {
  std::vector<std::vector<int>> a, b;
  std::vector<std::vector<std::span<const int>>> clusters;

  static Fixture make(std::uint64_t seed = 1) {
    Fixture f;
    Rng rng(seed);
    for (int i = 0; i < 50; ++i) {
      std::vector<int> sa, sb;
      const std::size_t len = 4 + rng.uniform_index(10);
      for (std::size_t j = 0; j < len; ++j) {
        sa.push_back(static_cast<int>(rng.uniform_index(3)));
        sb.push_back(static_cast<int>(5 + rng.uniform_index(3)));
      }
      f.a.push_back(std::move(sa));
      f.b.push_back(std::move(sb));
    }
    f.clusters.resize(2);
    for (const auto& s : f.a) f.clusters[0].push_back(s);
    for (const auto& s : f.b) f.clusters[1].push_back(s);
    return f;
  }
};

ocsvm::FeaturizerConfig normalized_features() {
  return {.vocab = 8, .normalize = true, .length_feature_weight = 0.0};
}

TEST(NearestCentroid, AssignsObviousSessions) {
  auto f = Fixture::make();
  const auto assigner = NearestCentroidAssigner::train(f.clusters, normalized_features());
  EXPECT_EQ(assigner.cluster_count(), 2u);
  EXPECT_EQ(assigner.assign(std::vector<int>{0, 1, 2, 0}), 0u);
  EXPECT_EQ(assigner.assign(std::vector<int>{5, 6, 7, 5}), 1u);
}

TEST(NearestCentroid, ScoresAreNegatedDistances) {
  auto f = Fixture::make();
  const auto assigner = NearestCentroidAssigner::train(f.clusters, normalized_features());
  const auto scores = assigner.scores(std::vector<int>{0, 1, 2});
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_LE(scores[0], 0.0);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(NearestCentroid, MixedSessionGoesToDominantCluster) {
  auto f = Fixture::make();
  const auto assigner = NearestCentroidAssigner::train(f.clusters, normalized_features());
  // 3 actions from cluster 0, 1 from cluster 1.
  EXPECT_EQ(assigner.assign(std::vector<int>{0, 1, 2, 5}), 0u);
  EXPECT_EQ(assigner.assign(std::vector<int>{5, 6, 7, 0}), 1u);
}

TEST(Knn, AssignsObviousSessions) {
  auto f = Fixture::make(2);
  const auto assigner = KnnAssigner::train(f.clusters, normalized_features(), 5);
  EXPECT_EQ(assigner.cluster_count(), 2u);
  EXPECT_EQ(assigner.training_points(), 100u);
  EXPECT_EQ(assigner.assign(std::vector<int>{0, 0, 1}), 0u);
  EXPECT_EQ(assigner.assign(std::vector<int>{7, 6, 6}), 1u);
}

TEST(Knn, ScoresAreVoteFractions) {
  auto f = Fixture::make(3);
  const auto assigner = KnnAssigner::train(f.clusters, normalized_features(), 5);
  const auto votes = assigner.scores(std::vector<int>{1, 2, 0});
  ASSERT_EQ(votes.size(), 2u);
  double sum = 0.0;
  for (double v : votes) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(votes[0], 1.0);  // all 5 neighbours come from cluster 0
}

TEST(Knn, KLargerThanTrainingSetStillWorks) {
  std::vector<std::vector<int>> tiny_a = {{0, 1}, {1, 0}};
  std::vector<std::vector<int>> tiny_b = {{5, 6}};
  std::vector<std::vector<std::span<const int>>> clusters(2);
  for (const auto& s : tiny_a) clusters[0].push_back(s);
  for (const auto& s : tiny_b) clusters[1].push_back(s);
  const auto assigner = KnnAssigner::train(clusters, normalized_features(), 50);
  EXPECT_EQ(assigner.assign(std::vector<int>{0, 1}), 0u);  // majority of all 3 points
}

TEST(Knn, OddKBreaksTiesDeterministically) {
  auto f = Fixture::make(4);
  const auto assigner = KnnAssigner::train(f.clusters, normalized_features(), 7);
  // Repeated queries give identical results (no hidden randomness).
  const std::vector<int> probe = {0, 5, 1, 6};
  EXPECT_EQ(assigner.assign(probe), assigner.assign(probe));
}

}  // namespace
}  // namespace misuse::cluster

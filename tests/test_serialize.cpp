#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace misuse {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write<std::uint32_t>(0xdeadbeefu);
  w.write<float>(1.5f);
  w.write<double>(-2.25);
  w.write<std::int64_t>(-42);

  BinaryReader r(buf);
  EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.read<float>(), 1.5f);
  EXPECT_EQ(r.read<double>(), -2.25);
  EXPECT_EQ(r.read<std::int64_t>(), -42);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write_string("ActionSearchUser");
  w.write_string("");
  w.write_string(std::string("with\0null", 9));

  BinaryReader r(buf);
  EXPECT_EQ(r.read_string(), "ActionSearchUser");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("with\0null", 9));
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(buf);
  const std::vector<float> xs = {1.0f, -2.5f, 3.25f};
  const std::vector<int> empty;
  w.write_vector(xs);
  w.write_vector(std::span<const int>(empty));

  BinaryReader r(buf);
  EXPECT_EQ(r.read_vector<float>(), xs);
  EXPECT_TRUE(r.read_vector<int>().empty());
}

TEST(Serialize, StringVectorRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(buf);
  const std::vector<std::string> v = {"a", "bb", ""};
  w.write_string_vector(v);
  BinaryReader r(buf);
  EXPECT_EQ(r.read_string_vector(), v);
}

TEST(Serialize, MagicAcceptsMatching) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write_magic(0x12345678u, 3);
  BinaryReader r(buf);
  EXPECT_EQ(r.read_magic(0x12345678u), 3u);
}

TEST(Serialize, MagicRejectsMismatch) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write_magic(0x11111111u, 1);
  BinaryReader r(buf);
  EXPECT_THROW(r.read_magic(0x22222222u), SerializeError);
}

TEST(Serialize, TruncatedScalarThrows) {
  std::stringstream buf;
  buf << "xy";  // 2 bytes, not enough for a uint32
  BinaryReader r(buf);
  EXPECT_THROW(r.read<std::uint32_t>(), SerializeError);
}

TEST(Serialize, TruncatedVectorThrows) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write<std::uint64_t>(1000);  // claims 1000 floats, provides none
  BinaryReader r(buf);
  EXPECT_THROW(r.read_vector<float>(), SerializeError);
}

TEST(Serialize, ImplausibleLengthRejected) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write<std::uint64_t>(~0ULL);
  BinaryReader r(buf);
  EXPECT_THROW(r.read_vector<double>(), SerializeError);
}

TEST(Serialize, ImplausibleStringLengthRejected) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.write<std::uint64_t>(1ULL << 40);
  BinaryReader r(buf);
  EXPECT_THROW(r.read_string(), SerializeError);
}

}  // namespace
}  // namespace misuse

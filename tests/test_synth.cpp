#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "synth/actions.hpp"
#include "synth/archetype.hpp"
#include "synth/portal.hpp"

namespace misuse::synth {
namespace {

TEST(Actions, CatalogueHitsTargetSize) {
  const auto catalogue = build_action_catalogue(300);
  EXPECT_GE(catalogue.size(), 290u);
  EXPECT_LE(catalogue.size(), 320u);
}

TEST(Actions, CatalogueContainsPaperQuotedActions) {
  const auto catalogue = build_action_catalogue(300);
  const auto has = [&](const char* name) {
    return std::any_of(catalogue.begin(), catalogue.end(),
                       [&](const ActionDef& a) { return a.name == name; });
  };
  EXPECT_TRUE(has("ActionSearchUsr"));
  EXPECT_TRUE(has("ActionDeleteUser"));
  EXPECT_TRUE(has("ActionCreateUser"));
  EXPECT_TRUE(has("ActionWarningDeleteUser"));
  EXPECT_TRUE(has("ActionResetPwdUnlock"));
  EXPECT_TRUE(has("ActionUnLockDisplayedUser"));
  EXPECT_TRUE(has("ActionDisplayOneOffice"));
  EXPECT_TRUE(has("ActionDisplayDirectTFARule"));
}

TEST(Actions, CatalogueNamesAreUnique) {
  const auto catalogue = build_action_catalogue(300);
  std::set<std::string> names;
  for (const auto& a : catalogue) names.insert(a.name);
  EXPECT_EQ(names.size(), catalogue.size());
}

TEST(Actions, EveryAreaRepresented) {
  const auto catalogue = build_action_catalogue(300);
  ActionVocab vocab;
  const auto by_area = intern_catalogue(catalogue, vocab);
  ASSERT_EQ(by_area.size(), kAreaCount);
  for (std::size_t a = 0; a < kAreaCount; ++a) {
    EXPECT_FALSE(by_area[a].empty()) << "area " << area_name(static_cast<Area>(a));
  }
  EXPECT_EQ(vocab.size(), catalogue.size());
}

BehaviorArchetype make_archetype() {
  ArchetypeConfig c;
  c.name = "test";
  c.pool = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  c.workflow_size = 7;  // last 3 are "commons"
  c.log_len_mu = 2.3;
  c.log_len_sigma = 0.8;
  return BehaviorArchetype(std::move(c));
}

TEST(Archetype, GeneratesRequestedLength) {
  const auto arch = make_archetype();
  Rng rng(1);
  for (std::size_t len : {1u, 2u, 10u, 100u}) {
    EXPECT_EQ(arch.generate(rng, len).size(), len);
  }
}

TEST(Archetype, EmitsOnlyPoolActions) {
  const auto arch = make_archetype();
  Rng rng(2);
  const auto session = arch.generate(rng, 500);
  for (int a : session) {
    EXPECT_TRUE(std::find(arch.pool().begin(), arch.pool().end(), a) != arch.pool().end());
  }
}

TEST(Archetype, SampledLengthsAtLeastTwo) {
  const auto arch = make_archetype();
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) EXPECT_GE(arch.sample_length(rng), 2u);
}

TEST(Archetype, WorkflowProgressionDominates) {
  // With advance_prob 0.55, consecutive pairs (i, i+1 mod w) should be the
  // most common bigram type.
  const auto arch = make_archetype();
  Rng rng(4);
  const auto session = arch.generate(rng, 5000);
  std::size_t advance = 0, other = 0;
  for (std::size_t i = 0; i + 1 < session.size(); ++i) {
    if (session[i] < 7 && session[i + 1] == (session[i] + 1) % 7) ++advance;
    else ++other;
  }
  EXPECT_GT(advance, session.size() / 3);
}

TEST(Portal, SmallCorpusShapesAndDeterminism) {
  PortalConfig config;
  config.sessions = 500;
  config.users = 50;
  config.action_count = 120;
  config.seed = 9;
  const Portal portal(config);
  const SessionStore a = portal.generate();
  const SessionStore b = portal.generate();
  ASSERT_EQ(a.size(), 500u);
  ASSERT_EQ(b.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).actions, b.at(i).actions);
  }
}

TEST(Portal, ThirteenArchetypes) {
  PortalConfig config;
  config.sessions = 10;
  const Portal portal(config);
  EXPECT_EQ(portal.archetypes().size(), 13u);
  EXPECT_EQ(portal.archetype_weights().size(), 13u);
  double sum = 0.0;
  for (double w : portal.archetype_weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Portal, CorpusMatchesPaperLengthStatistics) {
  // Fig. 3 of the paper: mean session length ~15, 98% of sessions below
  // 91 actions, longest session above 800 (at the full 15k scale).
  PortalConfig config;
  config.sessions = 15000;
  config.seed = 42;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  const Summary s = store.length_summary();
  EXPECT_NEAR(s.mean, 15.0, 4.0);
  EXPECT_LT(s.p98, 91.0);
  EXPECT_GT(s.max, 300.0);
  EXPECT_GE(s.min, 2.0);
}

TEST(Portal, SessionsSortedByStartTime) {
  PortalConfig config;
  config.sessions = 300;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  for (std::size_t i = 1; i < store.size(); ++i) {
    EXPECT_LE(store.at(i - 1).start_minute, store.at(i).start_minute);
  }
}

TEST(Portal, StartTimesWithinRecordingWindow) {
  PortalConfig config;
  config.sessions = 300;
  config.days = 31;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  for (const auto& s : store.all()) {
    EXPECT_LT(s.start_minute, 31u * 1440u);
  }
}

TEST(Portal, ArchetypeLabelsCoverAllThirteen) {
  PortalConfig config;
  config.sessions = 5000;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  std::set<int> seen;
  for (const auto& s : store.all()) {
    ASSERT_GE(s.archetype, 0);
    ASSERT_LT(s.archetype, 13);
    seen.insert(s.archetype);
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(Portal, ArchetypePrevalenceTracksWeights) {
  PortalConfig config;
  config.sessions = 15000;
  config.habit_strength = 0.0;  // draw archetype directly from weights
  const Portal portal(config);
  const SessionStore store = portal.generate();
  std::vector<double> counts(13, 0.0);
  for (const auto& s : store.all()) counts[static_cast<std::size_t>(s.archetype)] += 1.0;
  for (std::size_t k = 0; k < 13; ++k) {
    EXPECT_NEAR(counts[k] / 15000.0, portal.archetype_weights()[k], 0.02);
  }
}

TEST(Portal, NoMisuseByDefault) {
  PortalConfig config;
  config.sessions = 400;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  for (const auto& s : store.all()) EXPECT_FALSE(s.injected_misuse);
}

TEST(Portal, MisuseInjectionFraction) {
  PortalConfig config;
  config.sessions = 4000;
  config.misuse_fraction = 0.1;
  const Portal portal(config);
  const SessionStore store = portal.generate();
  std::size_t misuses = 0;
  for (const auto& s : store.all()) misuses += s.injected_misuse ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(misuses) / 4000.0, 0.1, 0.02);
}

TEST(Portal, MassModificationMisuseUsesSensitiveActions) {
  PortalConfig config;
  config.sessions = 10;
  const Portal portal(config);
  Rng rng(5);
  const Session s = portal.make_misuse(MisuseKind::kMassProfileModification, rng);
  EXPECT_TRUE(s.injected_misuse);
  EXPECT_GE(s.length(), 2u);
  const std::set<std::string> sensitive = {
      "ActionDeleteUser", "ActionWarningDeleteUser", "ActionCreateUser",
      "ActionUnLockUser", "ActionResetPwdUnlock", "ActionUnLockDisplayedUser",
      "ActionSearchUsr"};
  for (int a : s.actions) {
    EXPECT_TRUE(sensitive.count(portal.vocab().name(a))) << portal.vocab().name(a);
  }
}

TEST(Portal, RandomSessionsMatchPaperSpec) {
  PortalConfig config;
  config.sessions = 10;
  const Portal portal(config);
  const SessionStore random = portal.generate_random_sessions(500, 7);
  EXPECT_EQ(random.size(), 500u);
  for (const auto& s : random.all()) {
    EXPECT_GE(s.length(), 5u);
    EXPECT_LE(s.length(), 25u);
    for (int a : s.actions) {
      EXPECT_GE(a, 0);
      EXPECT_LT(static_cast<std::size_t>(a), portal.vocab().size());
    }
  }
}

TEST(Portal, RandomSessionsUseWholeVocabulary) {
  PortalConfig config;
  config.sessions = 10;
  config.action_count = 64;
  const Portal portal(config);
  const SessionStore random = portal.generate_random_sessions(2000, 11);
  std::set<int> seen;
  for (const auto& s : random.all()) seen.insert(s.actions.begin(), s.actions.end());
  // Uniform sampling over d actions with ~30k draws covers nearly all.
  EXPECT_GT(seen.size(), portal.vocab().size() * 9 / 10);
}

TEST(Portal, MisuseKindNames) {
  EXPECT_STREQ(misuse_kind_name(MisuseKind::kMassProfileModification),
               "mass-profile-modification");
  EXPECT_STREQ(misuse_kind_name(MisuseKind::kRandomActivity), "random-activity");
  EXPECT_STREQ(misuse_kind_name(MisuseKind::kAreaHopping), "area-hopping");
}

}  // namespace
}  // namespace misuse::synth

// Golden regression for the determinism contract of the thread-pool
// execution layer (util/thread_pool.hpp): the end-to-end pipeline —
// corpus synthesis, LDA ensemble, expert clustering, per-cluster OC-SVM
// and LSTM training, and batch session monitoring — must produce
// bit-identical results at any thread count.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/monitor.hpp"
#include "util/thread_pool.hpp"

namespace misuse::core {
namespace {

ExperimentConfig small_config() {
  const std::vector<const char*> argv = {
      "test",        "--sessions=220",          "--actions=60", "--hidden=8",
      "--epochs=2",  "--lda-iters=8",           "--clusters=4", "--min-cluster-sessions=5",
      "--patience=0", "--log-level=warn",
  };
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  ExperimentConfig config = ExperimentConfig::from_cli(args);
  config.use_cache = false;  // always retrain: the comparison is the point
  return config;
}

struct PipelineRun {
  SessionStore store;
  MisuseDetector detector;
  std::vector<SessionMonitorReport> monitor_reports;
};

PipelineRun run_pipeline(std::size_t threads) {
  set_global_threads(threads);
  const ExperimentConfig config = small_config();
  synth::Portal portal(config.portal);
  SessionStore store = portal.generate();
  MisuseDetector detector = MisuseDetector::train(store, config.detector);

  // Batch-monitor a deterministic slice of sessions (first test session
  // of every cluster).
  std::vector<std::span<const int>> sessions;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    if (!detector.cluster(c).test.empty()) {
      sessions.push_back(store.at(detector.cluster(c).test.front()).view());
    }
  }
  std::vector<SessionMonitorReport> reports =
      monitor_sessions(detector, MonitorConfig{}, sessions);
  return PipelineRun{std::move(store), std::move(detector), std::move(reports)};
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    serial_ = new PipelineRun(run_pipeline(1));
    parallel_ = new PipelineRun(run_pipeline(4));
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete parallel_;
    serial_ = nullptr;
    parallel_ = nullptr;
    set_global_threads(1);
  }

  static PipelineRun* serial_;
  static PipelineRun* parallel_;
};

PipelineRun* DeterminismTest::serial_ = nullptr;
PipelineRun* DeterminismTest::parallel_ = nullptr;

TEST_F(DeterminismTest, CorpusIsIdentical) {
  ASSERT_EQ(serial_->store.size(), parallel_->store.size());
  for (std::size_t i = 0; i < serial_->store.size(); ++i) {
    ASSERT_EQ(serial_->store.at(i).actions, parallel_->store.at(i).actions) << "session " << i;
  }
}

TEST_F(DeterminismTest, ClusterAssignmentsAreBitIdentical) {
  ASSERT_EQ(serial_->detector.cluster_count(), parallel_->detector.cluster_count());
  for (std::size_t c = 0; c < serial_->detector.cluster_count(); ++c) {
    const ClusterInfo& a = serial_->detector.cluster(c);
    const ClusterInfo& b = parallel_->detector.cluster(c);
    EXPECT_EQ(a.label, b.label) << "cluster " << c;
    EXPECT_EQ(a.members, b.members) << "cluster " << c;
    EXPECT_EQ(a.train, b.train) << "cluster " << c;
    EXPECT_EQ(a.valid, b.valid) << "cluster " << c;
    EXPECT_EQ(a.test, b.test) << "cluster " << c;
  }
}

TEST_F(DeterminismTest, ModelLossesAreBitIdentical) {
  for (std::size_t c = 0; c < serial_->detector.cluster_count(); ++c) {
    const auto& a = serial_->detector.train_report(c).epochs;
    const auto& b = parallel_->detector.train_report(c).epochs;
    ASSERT_EQ(a.size(), b.size()) << "cluster " << c;
    for (std::size_t e = 0; e < a.size(); ++e) {
      // Exact double equality: the parallel run must replay the very same
      // floating-point operations in the very same order.
      EXPECT_EQ(a[e].train_loss, b[e].train_loss) << "cluster " << c << " epoch " << e;
      EXPECT_EQ(a[e].train_accuracy, b[e].train_accuracy) << "cluster " << c << " epoch " << e;
      EXPECT_EQ(a[e].valid_loss, b[e].valid_loss) << "cluster " << c << " epoch " << e;
    }
  }
}

TEST_F(DeterminismTest, NormalityScoresAreBitIdentical) {
  for (std::size_t c = 0; c < serial_->detector.cluster_count(); ++c) {
    const auto& test_split = serial_->detector.cluster(c).test;
    for (std::size_t i = 0; i < std::min<std::size_t>(test_split.size(), 3); ++i) {
      const auto view = serial_->store.at(test_split[i]).view();
      const auto a = serial_->detector.predict(view);
      const auto b = parallel_->detector.predict(view);
      EXPECT_EQ(a.cluster, b.cluster);
      ASSERT_EQ(a.score.likelihoods.size(), b.score.likelihoods.size());
      for (std::size_t j = 0; j < a.score.likelihoods.size(); ++j) {
        EXPECT_EQ(a.score.likelihoods[j], b.score.likelihoods[j])
            << "cluster " << c << " session " << i << " step " << j;
      }
    }
  }
}

TEST_F(DeterminismTest, BatchMonitorReportsAreBitIdentical) {
  ASSERT_EQ(serial_->monitor_reports.size(), parallel_->monitor_reports.size());
  ASSERT_GT(serial_->monitor_reports.size(), 0u);
  for (std::size_t s = 0; s < serial_->monitor_reports.size(); ++s) {
    const SessionMonitorReport& a = serial_->monitor_reports[s];
    const SessionMonitorReport& b = parallel_->monitor_reports[s];
    EXPECT_EQ(a.steps, b.steps) << s;
    EXPECT_EQ(a.alarms, b.alarms) << s;
    EXPECT_EQ(a.trend_alarms, b.trend_alarms) << s;
    EXPECT_EQ(a.first_alarm_step, b.first_alarm_step) << s;
    EXPECT_EQ(a.voted_cluster, b.voted_cluster) << s;
    EXPECT_EQ(a.avg_likelihood_voted, b.avg_likelihood_voted) << s;
  }
}

}  // namespace
}  // namespace misuse::core

#include "lm/batching.hpp"

#include <gtest/gtest.h>

#include <map>

namespace misuse::lm {
namespace {

TEST(Windowing, ShortSessionsYieldNothing) {
  EXPECT_TRUE(make_window_examples(std::vector<int>{}, 10).empty());
  EXPECT_TRUE(make_window_examples(std::vector<int>{3}, 10).empty());
}

TEST(Windowing, OneExamplePerPredictablePosition) {
  const std::vector<int> session = {1, 2, 3, 4, 5};
  const auto examples = make_window_examples(session, 10);
  EXPECT_EQ(examples.size(), 4u);  // predicts positions 2..5
}

TEST(Windowing, FirstExampleIsZeroPaddedWithFirstActionLast) {
  // The paper: "first element of batch is filled with zeros in the
  // beginning and first action of the session in the end".
  const std::vector<int> session = {7, 8, 9};
  const auto examples = make_window_examples(session, 5);  // inputs length 4
  ASSERT_EQ(examples.size(), 2u);
  EXPECT_EQ(examples[0].inputs, (std::vector<int>{nn::kPadToken, nn::kPadToken, nn::kPadToken, 7}));
  EXPECT_EQ(examples[0].target, 8);
  EXPECT_EQ(examples[1].inputs, (std::vector<int>{nn::kPadToken, nn::kPadToken, 7, 8}));
  EXPECT_EQ(examples[1].target, 9);
}

TEST(Windowing, LongSessionsCroppedToWindow) {
  std::vector<int> session;
  for (int i = 0; i < 20; ++i) session.push_back(i);
  const auto examples = make_window_examples(session, 5);  // inputs length 4
  // The last example must contain exactly the final 4 actions before the
  // target.
  const auto& last = examples.back();
  EXPECT_EQ(last.inputs, (std::vector<int>{15, 16, 17, 18}));
  EXPECT_EQ(last.target, 19);
  for (const auto& ex : examples) EXPECT_EQ(ex.inputs.size(), 4u);
}

TEST(Windowing, ReconstructsSessionFromTargets) {
  // Property: concatenating the first action with every target rebuilds
  // the session.
  const std::vector<int> session = {4, 9, 2, 7, 7, 1};
  const auto examples = make_window_examples(session, 100);
  std::vector<int> rebuilt = {session[0]};
  for (const auto& ex : examples) rebuilt.push_back(ex.target);
  EXPECT_EQ(rebuilt, session);
}

TEST(WindowPacking, BatchShapesAndLastTimestepTargets) {
  const std::vector<int> session = {1, 2, 3, 4, 5, 6, 7};
  const auto examples = make_window_examples(session, 4);  // 6 examples, T=3
  const auto batches = pack_window_batches(examples, 4);
  ASSERT_EQ(batches.size(), 2u);  // 4 + 2
  EXPECT_EQ(batches[0].time_steps(), 3u);
  EXPECT_EQ(batches[0].batch_size(), 4u);
  EXPECT_EQ(batches[1].batch_size(), 2u);
  for (const auto& batch : batches) {
    for (std::size_t t = 0; t + 1 < batch.time_steps(); ++t) {
      for (int target : batch.targets[t]) EXPECT_EQ(target, nn::kIgnoreTarget);
    }
    for (int target : batch.targets.back()) EXPECT_NE(target, nn::kIgnoreTarget);
  }
}

TEST(FullSequencePacking, TargetsShiftInputsByOne) {
  const std::vector<int> s1 = {1, 2, 3};
  std::vector<std::span<const int>> sessions = {s1};
  const auto batches = pack_full_sequence_batches(sessions, 100, 8);
  ASSERT_EQ(batches.size(), 1u);
  const auto& b = batches[0];
  EXPECT_EQ(b.time_steps(), 2u);
  EXPECT_EQ(b.tokens[0][0], 1);
  EXPECT_EQ(b.targets[0][0], 2);
  EXPECT_EQ(b.tokens[1][0], 2);
  EXPECT_EQ(b.targets[1][0], 3);
}

TEST(FullSequencePacking, PadsTailsWithIgnore) {
  const std::vector<int> short_s = {1, 2};
  const std::vector<int> long_s = {3, 4, 5, 6};
  std::vector<std::span<const int>> sessions = {short_s, long_s};
  const auto batches = pack_full_sequence_batches(sessions, 100, 2);
  ASSERT_EQ(batches.size(), 1u);
  const auto& b = batches[0];
  EXPECT_EQ(b.time_steps(), 3u);
  // Column for the short session: valid at t=0, padded after.
  std::size_t col_short = b.tokens[0][0] == 1 ? 0 : 1;
  EXPECT_EQ(b.targets[1][col_short], nn::kIgnoreTarget);
  EXPECT_EQ(b.tokens[2][col_short], nn::kPadToken);
}

TEST(FullSequencePacking, CropsAtWindow) {
  std::vector<int> long_s;
  for (int i = 0; i < 50; ++i) long_s.push_back(i % 7);
  std::vector<std::span<const int>> sessions = {long_s};
  const auto batches = pack_full_sequence_batches(sessions, 10, 4);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].time_steps(), 9u);  // window - 1
}

TEST(FullSequencePacking, TargetCountEqualsPredictablePositions) {
  const std::vector<int> s1 = {1, 2, 3};        // 2 targets
  const std::vector<int> s2 = {4, 5};           // 1 target
  const std::vector<int> s3 = {6};              // too short: 0 targets
  std::vector<std::span<const int>> sessions = {s1, s2, s3};
  const auto batches = pack_full_sequence_batches(sessions, 100, 2);
  std::size_t targets = 0;
  for (const auto& b : batches) targets += b.target_count();
  EXPECT_EQ(targets, 3u);
}

TEST(FullSequencePacking, LengthSortingGroupsSimilarLengths) {
  std::vector<std::vector<int>> data;
  for (int len : {2, 30, 2, 30, 2, 30}) {
    std::vector<int> s;
    for (int i = 0; i < len; ++i) s.push_back(i % 5);
    data.push_back(std::move(s));
  }
  std::vector<std::span<const int>> sessions(data.begin(), data.end());
  const auto batches = pack_full_sequence_batches(sessions, 100, 3);
  ASSERT_EQ(batches.size(), 2u);
  // First batch holds the three short sessions => 1 timestep.
  EXPECT_EQ(batches[0].time_steps(), 1u);
  EXPECT_EQ(batches[1].time_steps(), 29u);
}

TEST(EpochBatches, WindowedModeCountsAllExamples) {
  const std::vector<int> s1 = {1, 2, 3, 4};
  const std::vector<int> s2 = {5, 6};
  std::vector<std::span<const int>> sessions = {s1, s2};
  BatchingConfig config;
  config.mode = BatchingMode::kWindowed;
  config.window = 8;
  config.batch_size = 3;
  Rng rng(1);
  const auto batches = make_epoch_batches(sessions, config, rng);
  std::size_t targets = 0;
  for (const auto& b : batches) targets += b.target_count();
  EXPECT_EQ(targets, 4u);  // 3 + 1 predictable positions
}

TEST(EpochBatches, BothModesDeliverSameTargetMultiset) {
  const std::vector<int> s1 = {1, 2, 3, 4, 1, 2};
  const std::vector<int> s2 = {3, 3, 4};
  std::vector<std::span<const int>> sessions = {s1, s2};
  Rng rng(2);

  std::map<int, int> windowed_targets, fullseq_targets;
  BatchingConfig wc;
  wc.mode = BatchingMode::kWindowed;
  wc.window = 16;
  for (const auto& b : make_epoch_batches(sessions, wc, rng)) {
    for (const auto& row : b.targets) {
      for (int t : row) {
        if (t != nn::kIgnoreTarget) ++windowed_targets[t];
      }
    }
  }
  BatchingConfig fc;
  fc.mode = BatchingMode::kFullSequence;
  fc.window = 16;
  for (const auto& b : make_epoch_batches(sessions, fc, rng)) {
    for (const auto& row : b.targets) {
      for (int t : row) {
        if (t != nn::kIgnoreTarget) ++fullseq_targets[t];
      }
    }
  }
  EXPECT_EQ(windowed_targets, fullseq_targets);
}

}  // namespace
}  // namespace misuse::lm

#include "sessions/sessionizer.hpp"

#include <gtest/gtest.h>

namespace misuse {
namespace {

ActionVocab vocab_with(std::initializer_list<const char*> names) {
  ActionVocab v;
  for (const char* n : names) v.intern(n);
  return v;
}

TEST(Sessionizer, EmptyStreamYieldsNothing) {
  const auto vocab = vocab_with({"A"});
  const auto store = sessionize({}, vocab, {});
  EXPECT_TRUE(store.empty());
}

TEST(Sessionizer, SingleUserSingleSession) {
  const auto vocab = vocab_with({"A", "B"});
  const std::vector<Event> events = {{1, 10, 0}, {1, 11, 1}, {1, 12, 0}};
  const auto store = sessionize(events, vocab, {});
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.at(0).actions, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(store.at(0).user, 1u);
  EXPECT_EQ(store.at(0).start_minute, 10u);
}

TEST(Sessionizer, SplitsOnIdleGap) {
  const auto vocab = vocab_with({"A"});
  SessionizerConfig config;
  config.idle_gap_minutes = 30;
  const std::vector<Event> events = {{1, 0, 0}, {1, 10, 0}, {1, 100, 0}, {1, 105, 0}};
  const auto store = sessionize(events, vocab, config);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).length(), 2u);
  EXPECT_EQ(store.at(1).length(), 2u);
  EXPECT_EQ(store.at(1).start_minute, 100u);
}

TEST(Sessionizer, ExactGapBoundaryStaysTogether) {
  const auto vocab = vocab_with({"A"});
  SessionizerConfig config;
  config.idle_gap_minutes = 30;
  const std::vector<Event> events = {{1, 0, 0}, {1, 30, 0}};
  const auto store = sessionize(events, vocab, config);
  EXPECT_EQ(store.size(), 1u);  // gap is exclusive: > 30, not >= 30
}

TEST(Sessionizer, SplitsOnUserChange) {
  const auto vocab = vocab_with({"A"});
  const std::vector<Event> events = {{1, 0, 0}, {2, 1, 0}, {1, 2, 0}};
  const auto store = sessionize(events, vocab, {});
  ASSERT_EQ(store.size(), 2u);
  // Stable (user, minute) sort groups user 1's events.
  EXPECT_EQ(store.at(0).user, 1u);
  EXPECT_EQ(store.at(0).length(), 2u);
  EXPECT_EQ(store.at(1).user, 2u);
}

TEST(Sessionizer, UnsortedInputIsSorted) {
  const auto vocab = vocab_with({"A", "B", "C"});
  const std::vector<Event> events = {{1, 12, 2}, {1, 10, 0}, {1, 11, 1}};
  const auto store = sessionize(events, vocab, {});
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.at(0).actions, (std::vector<int>{0, 1, 2}));
}

TEST(Sessionizer, LoginMarkerOpensNewSession) {
  auto vocab = vocab_with({"ActionLogin", "A", "B"});
  SessionizerConfig config;
  config.login_action = 0;
  config.idle_gap_minutes = 0;
  const std::vector<Event> events = {
      {1, 0, 0}, {1, 1, 1}, {1, 2, 2}, {1, 3, 0}, {1, 4, 1}};
  const auto store = sessionize(events, vocab, config);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).actions, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(store.at(1).actions, (std::vector<int>{0, 1}));
}

TEST(Sessionizer, LogoutMarkerClosesSession) {
  auto vocab = vocab_with({"A", "ActionLogout"});
  SessionizerConfig config;
  config.logout_action = 1;
  config.idle_gap_minutes = 0;
  const std::vector<Event> events = {{1, 0, 0}, {1, 1, 1}, {1, 2, 0}, {1, 3, 0}};
  const auto store = sessionize(events, vocab, config);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).actions, (std::vector<int>{0, 1}));
  EXPECT_EQ(store.at(1).actions, (std::vector<int>{0, 0}));
}

TEST(Sessionizer, MarkersCanBeDropped) {
  auto vocab = vocab_with({"ActionLogin", "A", "ActionLogout"});
  SessionizerConfig config;
  config.login_action = 0;
  config.logout_action = 2;
  config.keep_markers = false;
  config.idle_gap_minutes = 0;
  const std::vector<Event> events = {{1, 0, 0}, {1, 1, 1}, {1, 2, 1}, {1, 3, 2}};
  const auto store = sessionize(events, vocab, config);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.at(0).actions, (std::vector<int>{1, 1}));
}

TEST(Sessionizer, SequentialSessionIds) {
  const auto vocab = vocab_with({"A"});
  SessionizerConfig config;
  config.idle_gap_minutes = 5;
  const std::vector<Event> events = {{1, 0, 0}, {1, 100, 0}, {2, 0, 0}};
  const auto store = sessionize(events, vocab, config);
  ASSERT_EQ(store.size(), 3u);
  std::set<std::uint64_t> ids;
  for (const auto& s : store.all()) ids.insert(s.id);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Sessionizer, InterleavedUsersSeparatedCorrectly) {
  const auto vocab = vocab_with({"A", "B"});
  std::vector<Event> events;
  for (std::uint64_t t = 0; t < 10; ++t) {
    events.push_back({1, t, 0});
    events.push_back({2, t, 1});
  }
  const auto store = sessionize(events, vocab, {});
  ASSERT_EQ(store.size(), 2u);
  for (const auto& s : store.all()) {
    EXPECT_EQ(s.length(), 10u);
    for (int a : s.actions) EXPECT_EQ(a, s.user == 1 ? 0 : 1);
  }
}

}  // namespace
}  // namespace misuse

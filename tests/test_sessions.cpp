#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sessions/store.hpp"
#include "sessions/vocab.hpp"

namespace misuse {
namespace {

TEST(Vocab, InternAssignsSequentialIds) {
  ActionVocab v;
  EXPECT_EQ(v.intern("ActionSearchUser"), 0);
  EXPECT_EQ(v.intern("ActionDeleteUser"), 1);
  EXPECT_EQ(v.intern("ActionSearchUser"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(Vocab, FindWithoutInterning) {
  ActionVocab v;
  v.intern("A");
  EXPECT_TRUE(v.find("A").has_value());
  EXPECT_FALSE(v.find("B").has_value());
  EXPECT_EQ(v.size(), 1u);
}

TEST(Vocab, NameLookup) {
  ActionVocab v;
  const int id = v.intern("ActionResetPwdUnlock");
  EXPECT_EQ(v.name(id), "ActionResetPwdUnlock");
}

TEST(Vocab, SaveLoadRoundTrip) {
  ActionVocab v;
  v.intern("X");
  v.intern("Y");
  std::stringstream buf;
  BinaryWriter w(buf);
  v.save(w);
  BinaryReader r(buf);
  const ActionVocab loaded = ActionVocab::load(r);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.find("Y"), 1);
  EXPECT_EQ(loaded.name(0), "X");
}

SessionStore make_store(std::initializer_list<std::vector<int>> sessions, std::size_t vocab = 10) {
  ActionVocab v;
  for (std::size_t i = 0; i < vocab; ++i) v.intern("A" + std::to_string(i));
  SessionStore store(std::move(v));
  std::uint64_t id = 0;
  for (const auto& actions : sessions) {
    Session s;
    s.id = ++id;
    s.user = static_cast<std::uint32_t>(id % 3);
    s.actions = actions;
    store.add(std::move(s));
  }
  return store;
}

TEST(Store, BasicAccounting) {
  const auto store = make_store({{0, 1, 2}, {3, 4}});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).length(), 3u);
  EXPECT_EQ(store.at(1).actions[1], 4);
}

TEST(Store, DistinctUsers) {
  const auto store = make_store({{0}, {1}, {2}, {3}});  // users 1,2,0,1
  EXPECT_EQ(store.distinct_users(), 3u);
}

TEST(Store, LengthSummary) {
  const auto store = make_store({{0, 1}, {0, 1, 2, 3}, {0, 1, 2, 3, 4, 5}});
  const Summary s = store.length_summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Store, FilterShortSessions) {
  auto store = make_store({{0}, {0, 1}, {}, {0, 1, 2}});
  const std::size_t removed = store.filter_short_sessions(2);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(store.size(), 2u);
  for (const auto& s : store.all()) EXPECT_GE(s.length(), 2u);
}

TEST(Store, SplitProportionsAndDisjointness) {
  std::initializer_list<std::vector<int>> empty_init = {};
  (void)empty_init;
  ActionVocab v;
  v.intern("A");
  SessionStore store(std::move(v));
  for (int i = 0; i < 1000; ++i) {
    Session s;
    s.id = static_cast<std::uint64_t>(i);
    s.actions = {0, 0};
    store.add(std::move(s));
  }
  Rng rng(1);
  const Split split = store.split_70_15_15(rng);
  EXPECT_EQ(split.total(), 1000u);
  EXPECT_EQ(split.train.size(), 700u);
  EXPECT_EQ(split.valid.size(), 150u);
  EXPECT_EQ(split.test.size(), 150u);

  std::set<std::size_t> seen;
  for (const auto& part : {split.train, split.valid, split.test}) {
    for (std::size_t i : part) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " appears twice";
      EXPECT_LT(i, 1000u);
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Store, SplitOverSubsetOnlyUsesGivenIndices) {
  const auto store = make_store({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Rng rng(2);
  const Split split = store.split(rng, 0.6, 0.2, {0, 2, 4});
  EXPECT_EQ(split.total(), 3u);
  std::set<std::size_t> all;
  for (const auto& part : {split.train, split.valid, split.test}) {
    all.insert(part.begin(), part.end());
  }
  EXPECT_EQ(all, (std::set<std::size_t>{0, 2, 4}));
}

TEST(Store, SplitIsSeedDeterministic) {
  const auto store = make_store({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  Rng rng1(7), rng2(7);
  const Split a = store.split_70_15_15(rng1);
  const Split b = store.split_70_15_15(rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.test, b.test);
}

}  // namespace
}  // namespace misuse

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace misuse {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, UniformIndexSingleValue) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(31);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, LognormalIsPositiveWithExpectedMedian) {
  Rng rng(37);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = rng.lognormal(2.0, 0.5);
    ASSERT_GT(x, 0.0);
  }
  std::sort(xs.begin(), xs.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(2.0), 0.3);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(41);
  const double p = 0.25;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the splitmix64 paper test vector.
  std::uint64_t state = 1234567;
  const auto v1 = splitmix64(state);
  std::uint64_t state2 = 1234567;
  EXPECT_EQ(v1, splitmix64(state2));
  EXPECT_NE(v1, splitmix64(state2));
}

TEST(Rng, StreamIsReproducibleAndOrderFree) {
  // stream() is a pure function of (base, id): the same pair always
  // yields the same draws, in any call order — the property parallel
  // tasks rely on for deterministic per-task randomness.
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 32; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, AdjacentStreamsAreIndependent) {
  for (std::uint64_t id = 1; id < 8; ++id) {
    Rng other = Rng::stream(42, id);
    Rng reference = Rng::stream(42, 0);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
      if (reference.next_u64() == other.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2) << "stream " << id;
  }
}

TEST(Rng, StreamsDifferAcrossBaseSeeds) {
  Rng a = Rng::stream(1, 5);
  Rng b = Rng::stream(2, 5);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngIndexSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RngIndexSweep, UniformIndexStaysInRange) {
  Rng rng(GetParam());
  const std::size_t n = GetParam() % 11 + 1;
  for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.uniform_index(n), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngIndexSweep,
                         ::testing::Values(1u, 2u, 3u, 10u, 100u, 1000u, 99999u));

}  // namespace
}  // namespace misuse

// Cross-cutting property tests: invariants that must hold across
// parameter sweeps and module boundaries (DESIGN.md's "invariants under
// test" list).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "lm/batching.hpp"
#include "nn/next_action_model.hpp"
#include "ocsvm/ocsvm.hpp"
#include "synth/portal.hpp"
#include "topics/lda.hpp"

namespace misuse {
namespace {

// --- LSTM numerical stability over long horizons ---------------------------

class LongSequenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LongSequenceSweep, LstmStableOver500Steps) {
  Rng rng(GetParam());
  nn::ModelConfig config{.vocab = 20, .hidden = 24, .dropout = 0.0f};
  nn::NextActionModel model(config, rng);
  auto state = model.make_state();
  for (int i = 0; i < 500; ++i) {
    const auto probs = model.step(state, static_cast<int>(rng.uniform_index(20)));
    double sum = 0.0;
    for (float p : probs) {
      ASSERT_TRUE(std::isfinite(p));
      ASSERT_GE(p, 0.0f);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongSequenceSweep, ::testing::Values(1u, 7u, 42u, 1000u));

// --- Windowed vs full-sequence evaluation equivalence ----------------------

class BatchingEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchingEquivalenceSweep, WindowedAndFullSequenceEvaluationAgree) {
  // For sessions no longer than the window, every prediction sees the
  // same prefix under either batching, so total loss must match.
  Rng rng(GetParam());
  nn::ModelConfig config{.vocab = 12, .hidden = 10, .dropout = 0.0f};
  nn::NextActionModel model(config, rng);

  std::vector<std::vector<int>> sessions;
  for (int i = 0; i < 12; ++i) {
    std::vector<int> s;
    const std::size_t len = 2 + rng.uniform_index(14);  // <= 15 < window 16
    for (std::size_t j = 0; j < len; ++j) s.push_back(static_cast<int>(rng.uniform_index(12)));
    sessions.push_back(std::move(s));
  }
  std::vector<std::span<const int>> views(sessions.begin(), sessions.end());

  double windowed_total = 0.0;
  std::size_t windowed_preds = 0;
  {
    std::vector<lm::WindowExample> examples;
    for (const auto& s : views) {
      auto ex = lm::make_window_examples(s, 16);
      examples.insert(examples.end(), ex.begin(), ex.end());
    }
    for (const auto& batch : lm::pack_window_batches(examples, 8)) {
      const auto res = model.evaluate(batch);
      windowed_total += res.total_loss;
      windowed_preds += res.rows;
    }
  }
  double fullseq_total = 0.0;
  std::size_t fullseq_preds = 0;
  for (const auto& batch : lm::pack_full_sequence_batches(views, 16, 8)) {
    const auto res = model.evaluate(batch);
    fullseq_total += res.total_loss;
    fullseq_preds += res.rows;
  }
  ASSERT_EQ(windowed_preds, fullseq_preds);
  EXPECT_NEAR(windowed_total, fullseq_total, 1e-2 * std::abs(fullseq_total) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingEquivalenceSweep, ::testing::Range<std::uint64_t>(1, 7));

// --- OC-SVM invariants across nu ------------------------------------------

class OcSvmNuSweep : public ::testing::TestWithParam<double> {};

TEST_P(OcSvmNuSweep, ScoreIsDeterministicAndDuplicatesAreHarmless) {
  Rng rng(5);
  std::vector<std::vector<float>> train;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> x(4);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 0.5));
    train.push_back(x);
    train.push_back(x);  // exact duplicates must not break the solver
  }
  ocsvm::OcSvmConfig config;
  config.nu = GetParam();
  config.gamma = 1.0;
  const auto svm = ocsvm::OneClassSvm::train(train, config);
  const std::vector<float> probe = {0.1f, -0.2f, 0.3f, 0.0f};
  const double s1 = svm.score(probe);
  const double s2 = svm.score(probe);
  EXPECT_EQ(s1, s2);
  EXPECT_TRUE(std::isfinite(s1));
  EXPECT_LE(svm.training_outlier_fraction(), GetParam() + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Nus, OcSvmNuSweep, ::testing::Values(0.01, 0.05, 0.1, 0.3, 0.7));

// --- LDA prior sweeps -------------------------------------------------------

class LdaPriorSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LdaPriorSweep, DistributionsValidUnderAnyPriors) {
  const auto [alpha, beta] = GetParam();
  Rng rng(3);
  std::vector<std::vector<int>> docs(25);
  for (auto& d : docs) {
    d.resize(10);
    for (auto& w : d) w = static_cast<int>(rng.uniform_index(8));
  }
  topics::LdaConfig config;
  config.topics = 3;
  config.alpha = alpha;
  config.beta = beta;
  config.iterations = 25;
  const auto model = topics::fit_lda(docs, 8, config);
  for (std::size_t t = 0; t < 3; ++t) {
    double sum = 0.0;
    for (float p : model.topic_action.row(t)) {
      ASSERT_GT(p, 0.0f);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
  for (std::size_t d = 0; d < docs.size(); ++d) {
    double sum = 0.0;
    for (float p : model.doc_topic.row(d)) sum += p;
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Priors, LdaPriorSweep,
                         ::testing::Values(std::make_pair(0.01, 0.01),
                                           std::make_pair(0.1, 0.05),
                                           std::make_pair(1.0, 0.5),
                                           std::make_pair(5.0, 1.0)));

// --- Portal statistics are stable across seeds -----------------------------

class PortalSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PortalSeedSweep, LengthLawHoldsAcrossSeeds) {
  synth::PortalConfig config;
  config.sessions = 4000;
  config.seed = GetParam();
  const synth::Portal portal(config);
  const Summary s = portal.generate().length_summary();
  EXPECT_GT(s.mean, 10.0);
  EXPECT_LT(s.mean, 22.0);
  EXPECT_LT(s.p98, 91.0);
  EXPECT_GE(s.min, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortalSeedSweep, ::testing::Values(1u, 42u, 777u, 31337u));

// --- Serialization robustness: truncated archives always throw -------------

TEST(SerializationRobustness, TruncatedModelArchivesThrowNotCrash) {
  Rng rng(9);
  nn::ModelConfig config{.vocab = 8, .hidden = 6, .dropout = 0.1f};
  nn::NextActionModel model(config, rng);
  std::stringstream full;
  BinaryWriter w(full);
  model.save(w);
  const std::string bytes = full.str();

  // Cut at a spread of offsets, including mid-header and mid-matrix.
  for (const double frac : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const auto cut = static_cast<std::size_t>(frac * static_cast<double>(bytes.size()));
    std::stringstream truncated(bytes.substr(0, cut));
    BinaryReader r(truncated);
    EXPECT_THROW(nn::NextActionModel::load(r), SerializeError) << "cut at " << cut;
  }
}

TEST(SerializationRobustness, BitFlippedHeaderRejected) {
  Rng rng(10);
  nn::ModelConfig config{.vocab = 5, .hidden = 4, .dropout = 0.0f};
  nn::NextActionModel model(config, rng);
  std::stringstream full;
  BinaryWriter w(full);
  model.save(w);
  std::string bytes = full.str();
  bytes[0] ^= 0x5a;  // corrupt the magic
  std::stringstream corrupted(bytes);
  BinaryReader r(corrupted);
  EXPECT_THROW(nn::NextActionModel::load(r), SerializeError);
}

// --- Score invariances ------------------------------------------------------

TEST(ScoreInvariance, SessionScoreIndependentOfTrailingContext) {
  // Scoring a session must depend only on the session itself: scoring s
  // twice in a row from fresh state is identical (no state leakage).
  Rng rng(11);
  nn::ModelConfig config{.vocab = 10, .hidden = 8, .dropout = 0.3f};
  nn::NextActionModel model(config, rng);
  const std::vector<int> session = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto a = model.score_session(session);
  const auto b = model.score_session(session);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
}

TEST(ScoreInvariance, PrefixScoresAreAPrefixOfFullScores) {
  Rng rng(12);
  nn::ModelConfig config{.vocab = 10, .hidden = 8, .dropout = 0.0f};
  nn::NextActionModel model(config, rng);
  const std::vector<int> session = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto full = model.score_session(session);
  const auto prefix =
      model.score_session(std::span<const int>(session.data(), 5));
  ASSERT_EQ(prefix.likelihoods.size(), 4u);
  for (std::size_t i = 0; i < prefix.likelihoods.size(); ++i) {
    EXPECT_NEAR(prefix.likelihoods[i], full.likelihoods[i], 1e-7);
  }
}

}  // namespace
}  // namespace misuse

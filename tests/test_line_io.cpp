// Line reader, flat-JSON parsing, and the TCP helpers that carry the
// serving wire format.
#include "util/line_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/socket.hpp"

namespace misuse {
namespace {

TEST(LineReader, SplitsLinesAndStripsCr) {
  std::istringstream in("alpha\nbeta\r\n\ngamma");
  LineReader reader(in);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "beta");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "gamma");  // final unterminated line still surfaces
  EXPECT_FALSE(reader.next(line));
  EXPECT_EQ(reader.lines_read(), 4u);
  EXPECT_FALSE(reader.truncated());
}

// CRLF and LF streams must parse to the same lines — a Windows-produced
// NDJSON feed is the same feed.
TEST(LineReader, CrlfStreamMatchesLfStream) {
  const auto read_all = [](const std::string& text) {
    std::istringstream in(text);
    LineReader reader(in);
    std::vector<std::string> lines;
    std::string line;
    while (reader.next(line)) lines.push_back(line);
    return lines;
  };
  EXPECT_EQ(read_all("{\"a\":1}\r\n{\"b\":2}\r\n\r\ntail"),
            read_all("{\"a\":1}\n{\"b\":2}\n\ntail"));
}

TEST(LineReader, CrlfTerminatorDoesNotCountTowardSizeCap) {
  // A line of exactly max_line_bytes must survive whether it ends in
  // "\n" or "\r\n" — the '\r' is part of the terminator, not the line.
  std::istringstream in("abcde\r\nxy\r\n");
  LineReader reader(in, 5);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "abcde");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "xy");
  EXPECT_FALSE(reader.next(line));
  EXPECT_FALSE(reader.truncated());
}

TEST(LineReader, BareCrStaysPayload) {
  std::istringstream in("a\rb\nfinal\r");
  LineReader reader(in);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "a\rb");  // '\r' not followed by '\n' is data
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "final");  // trailing '\r' at EOF is a terminator
  EXPECT_FALSE(reader.next(line));
}

TEST(LineReader, OversizedLineAbortsStream) {
  std::istringstream in(std::string(64, 'x') + "\nnext\n");
  LineReader reader(in, 16);
  std::string line;
  EXPECT_FALSE(reader.next(line));
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.next(line));  // stays aborted
}

TEST(FlatJson, ParsesStringsNumbersBools) {
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(
      R"({"user_id": "u1", "n": 42, "t": 1722945600.25, "ok": true, "none": null})", fields,
      error))
      << error;
  EXPECT_EQ(get_string(fields, "user_id"), "u1");
  EXPECT_EQ(get_number(fields, "n"), 42.0);
  EXPECT_EQ(get_number(fields, "t"), 1722945600.25);
  ASSERT_NE(find_field(fields, "ok"), nullptr);
  EXPECT_EQ(find_field(fields, "ok")->value, "true");
  EXPECT_FALSE(get_number(fields, "missing").has_value());
  EXPECT_FALSE(get_number(fields, "user_id").has_value());  // not numeric
}

TEST(FlatJson, UnescapesStrings) {
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(R"({"k": "a\"b\\c\ndA"})", fields, error)) << error;
  EXPECT_EQ(get_string(fields, "k"), "a\"b\\c\ndA");
}

TEST(FlatJson, RejectsMalformedAndNested) {
  std::vector<JsonField> fields;
  std::string error;
  EXPECT_FALSE(parse_flat_json("", fields, error));
  EXPECT_FALSE(parse_flat_json("not json", fields, error));
  EXPECT_FALSE(parse_flat_json(R"({"k": )", fields, error));
  EXPECT_FALSE(parse_flat_json(R"({"k": "unterminated)", fields, error));
  EXPECT_FALSE(parse_flat_json(R"({"k": {"nested": 1}})", fields, error));
  EXPECT_FALSE(parse_flat_json(R"({"k": [1, 2]})", fields, error));
  EXPECT_FALSE(parse_flat_json(R"({"k": 1} trailing)", fields, error));
  EXPECT_FALSE(error.empty());
}

TEST(FlatJson, EmptyObjectIsValid) {
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json("{}", fields, error)) << error;
  EXPECT_TRUE(fields.empty());
}

TEST(TcpSocket, LoopbackLineRoundTrip) {
  TcpListener listener = TcpListener::bind(0, "localhost");
  ASSERT_GT(listener.port(), 0);

  std::thread echo([&listener] {
    auto conn = listener.accept();
    ASSERT_TRUE(conn.has_value());
    LineReader reader(conn->io());
    std::string line;
    while (reader.next(line)) {
      conn->io() << "echo:" << line << '\n';
      conn->io().flush();
    }
  });

  TcpStream client = tcp_connect("localhost", listener.port());
  client.io() << "hello\nworld\n";
  client.io().flush();
  client.shutdown_write();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "echo:hello");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "echo:world");
  EXPECT_FALSE(reader.next(line));
  echo.join();
}

TEST(TcpSocket, CloseUnblocksAccept) {
  TcpListener listener = TcpListener::bind(0, "localhost");
  std::thread closer([&listener] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.close();
  });
  EXPECT_FALSE(listener.accept().has_value());
  closer.join();
}

}  // namespace
}  // namespace misuse

// End-to-end integration tests of the full pipeline on a small synthetic
// portal corpus. One fixture is trained once and shared across tests
// (training the pipeline is the expensive part).
#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/evaluation.hpp"
#include "core/monitor.hpp"
#include "synth/portal.hpp"

namespace misuse::core {
namespace {

DetectorConfig small_detector_config() {
  DetectorConfig config;
  config.ensemble.topic_counts = {6, 8};
  config.ensemble.iterations = 40;
  config.expert.target_clusters = 6;
  config.expert.min_cluster_sessions = 10;
  config.lm.hidden = 16;
  config.lm.learning_rate = 0.01f;
  config.lm.epochs = 25;
  config.lm.patience = 0;
  config.lm.batching.window = 32;
  config.lm.batching.batch_size = 8;
  config.assigner.svm.max_training_points = 300;
  config.seed = 99;
  return config;
}

class DetectorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 700;
    pc.users = 80;
    pc.action_count = 80;
    pc.seed = 21;
    portal_ = new synth::Portal(pc);
    store_ = new SessionStore(portal_->generate());
    detector_ = new MisuseDetector(MisuseDetector::train(*store_, small_detector_config()));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    delete portal_;
    detector_ = nullptr;
    store_ = nullptr;
    portal_ = nullptr;
  }

  static synth::Portal* portal_;
  static SessionStore* store_;
  static MisuseDetector* detector_;
};

synth::Portal* DetectorFixture::portal_ = nullptr;
SessionStore* DetectorFixture::store_ = nullptr;
MisuseDetector* DetectorFixture::detector_ = nullptr;

TEST_F(DetectorFixture, ClustersPartitionEligibleSessions) {
  std::set<std::size_t> seen;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() >= 2) ++eligible;
  }
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    for (std::size_t i : detector_->cluster(c).members) {
      EXPECT_TRUE(seen.insert(i).second) << "session " << i << " in two clusters";
      EXPECT_GE(store_->at(i).length(), 2u);
    }
  }
  EXPECT_EQ(seen.size(), eligible);
}

TEST_F(DetectorFixture, SplitsAreDisjointAndCoverCluster) {
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    const ClusterInfo& info = detector_->cluster(c);
    std::set<std::size_t> members(info.members.begin(), info.members.end());
    std::set<std::size_t> split_union;
    for (const auto* part : {&info.train, &info.valid, &info.test}) {
      for (std::size_t i : *part) {
        EXPECT_TRUE(members.count(i));
        EXPECT_TRUE(split_union.insert(i).second);
      }
    }
    EXPECT_EQ(split_union.size(), members.size());
    // 70/15/15: train must dominate.
    EXPECT_GT(info.train.size(), info.valid.size());
    EXPECT_GT(info.train.size(), info.test.size());
  }
}

TEST_F(DetectorFixture, ClustersSortedBySizeAscending) {
  for (std::size_t c = 1; c < detector_->cluster_count(); ++c) {
    EXPECT_LE(detector_->cluster(c - 1).size(), detector_->cluster(c).size());
  }
}

TEST_F(DetectorFixture, ClusterLabelsAreNonEmptyActionNames) {
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    const std::string& label = detector_->cluster(c).label;
    EXPECT_FALSE(label.empty());
    EXPECT_NE(label.find("Action"), std::string::npos) << label;
  }
}

TEST_F(DetectorFixture, ClustersAlignWithArchetypes) {
  // The informed clustering must recover real generative structure: NMI
  // with the hidden archetype labels well above chance.
  const double nmi = clustering_nmi(*store_, *detector_);
  EXPECT_GT(nmi, 0.4) << "clustering is not informative of archetypes";
  const auto purity = cluster_archetype_purity(*store_, *detector_);
  double mean_purity = 0.0;
  for (double p : purity) mean_purity += p;
  mean_purity /= static_cast<double>(purity.size());
  EXPECT_GT(mean_purity, 0.5);
}

TEST_F(DetectorFixture, RouteReturnsValidCluster) {
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    for (std::size_t i : detector_->cluster(c).test) {
      const std::size_t routed = detector_->route(store_->at(i).view());
      ASSERT_LT(routed, detector_->cluster_count());
    }
    if (!detector_->cluster(c).test.empty()) break;  // sample is enough
  }
}

TEST_F(DetectorFixture, RoutingBeatsChance) {
  std::size_t correct = 0, total = 0;
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    for (std::size_t i : detector_->cluster(c).test) {
      if (detector_->route(store_->at(i).view()) == c) ++correct;
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  const double accuracy = static_cast<double>(correct) / static_cast<double>(total);
  const double chance = 1.0 / static_cast<double>(detector_->cluster_count());
  EXPECT_GT(accuracy, 2.0 * chance) << "OC-SVM routing accuracy " << accuracy;
}

TEST_F(DetectorFixture, ModelsScoreOwnClusterSessions) {
  // Each cluster model must assign its own test sessions clearly more
  // likelihood than uniform.
  const double uniform = 1.0 / static_cast<double>(store_->vocab().size());
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    const auto& test = detector_->cluster(c).test;
    if (test.empty()) continue;
    double avg = 0.0;
    std::size_t n = 0;
    for (std::size_t i : test) {
      const auto score = detector_->score_with_cluster(c, store_->at(i).view());
      if (score.likelihoods.empty()) continue;
      avg += score.avg_likelihood();
      ++n;
    }
    if (n == 0) continue;
    avg /= static_cast<double>(n);
    EXPECT_GT(avg, 3.0 * uniform) << "cluster " << c;
  }
}

TEST_F(DetectorFixture, RealSessionsScoreAboveRandomSessions) {
  // The paper's core validation (§IV-D): random sessions must look
  // abnormal to the pipeline.
  const SessionStore random = portal_->generate_random_sessions(60, 77);
  double real_like = 0.0, random_like = 0.0;
  std::size_t n_real = 0;
  for (std::size_t c = 0; c < detector_->cluster_count(); ++c) {
    for (std::size_t i : detector_->cluster(c).test) {
      const auto p = detector_->predict(store_->at(i).view());
      if (p.score.likelihoods.empty()) continue;
      real_like += p.score.avg_likelihood();
      ++n_real;
    }
  }
  real_like /= static_cast<double>(n_real);
  for (const auto& s : random.all()) {
    random_like += detector_->predict(s.view()).score.avg_likelihood();
  }
  random_like /= static_cast<double>(random.size());
  EXPECT_GT(real_like, 3.0 * random_like)
      << "real " << real_like << " vs random " << random_like;
}

TEST_F(DetectorFixture, SaveLoadRoundTripsPredictions) {
  std::stringstream buf;
  BinaryWriter w(buf);
  detector_->save(w);
  BinaryReader r(buf);
  const MisuseDetector loaded = MisuseDetector::load(r);

  EXPECT_EQ(loaded.cluster_count(), detector_->cluster_count());
  const auto& probe = store_->at(detector_->cluster(0).test.empty()
                                     ? detector_->cluster(0).members.front()
                                     : detector_->cluster(0).test.front());
  const auto a = detector_->predict(probe.view());
  const auto b = loaded.predict(probe.view());
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.score.likelihoods.size(), b.score.likelihoods.size());
  for (std::size_t i = 0; i < a.score.likelihoods.size(); ++i) {
    EXPECT_EQ(a.score.likelihoods[i], b.score.likelihoods[i]);
  }
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    EXPECT_EQ(loaded.cluster(c).label, detector_->cluster(c).label);
    EXPECT_EQ(loaded.cluster(c).test, detector_->cluster(c).test);
  }
}

TEST_F(DetectorFixture, OnlineMonitorTracksSession) {
  OnlineMonitor monitor(*detector_, MonitorConfig{});
  const Session& s = store_->at(detector_->cluster(detector_->cluster_count() - 1).test.front());
  ASSERT_GE(s.length(), 2u);
  std::size_t steps = 0;
  for (int action : s.actions) {
    const auto result = monitor.observe(action);
    ++steps;
    EXPECT_EQ(result.step, steps);
    EXPECT_EQ(result.ocsvm_scores.size(), detector_->cluster_count());
    if (steps == 1) {
      EXPECT_FALSE(result.likelihood_argmax.has_value());
    } else {
      ASSERT_TRUE(result.likelihood_argmax.has_value());
      EXPECT_GE(*result.likelihood_argmax, 0.0);
      EXPECT_LE(*result.likelihood_argmax, 1.0);
      ASSERT_TRUE(result.likelihood_voted.has_value());
    }
  }
  EXPECT_EQ(monitor.steps(), s.length());
}

TEST_F(DetectorFixture, OnlineMonitorMatchesOfflineScoring) {
  // The voted-cluster likelihood stream must equal score_session under
  // that same cluster's model.
  const Session& s = store_->at(detector_->cluster(detector_->cluster_count() - 1).test.front());
  OnlineMonitor monitor(*detector_, MonitorConfig{});
  std::vector<double> streamed;
  std::size_t final_voted = 0;
  for (int action : s.actions) {
    const auto result = monitor.observe(action);
    if (result.likelihood_voted) streamed.push_back(*result.likelihood_voted);
    final_voted = result.cluster_voted;
  }
  // If the vote never changed mid-session, the streamed likelihoods match
  // the offline per-action scores of the final voted model.
  const auto offline = detector_->score_with_cluster(final_voted, s.view());
  ASSERT_EQ(streamed.size(), offline.likelihoods.size());
  // (Only guaranteed when the voted cluster was stable from step 2 on;
  // check values where the offline model agrees.)
  std::size_t matches = 0;
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    if (std::abs(streamed[i] - offline.likelihoods[i]) < 1e-9) ++matches;
  }
  EXPECT_GT(matches, streamed.size() / 2);
}

TEST_F(DetectorFixture, MonitorResetStartsFresh) {
  OnlineMonitor monitor(*detector_, MonitorConfig{});
  const auto r1 = monitor.observe(0);
  monitor.reset();
  const auto r2 = monitor.observe(0);
  EXPECT_EQ(r2.step, 1u);
  ASSERT_EQ(r1.ocsvm_scores.size(), r2.ocsvm_scores.size());
  for (std::size_t c = 0; c < r1.ocsvm_scores.size(); ++c) {
    EXPECT_DOUBLE_EQ(r1.ocsvm_scores[c], r2.ocsvm_scores[c]);
  }
}

TEST_F(DetectorFixture, AlarmsCarryExpectedActionExplanations) {
  MonitorConfig mc;
  mc.alarm_likelihood = 0.5;  // alarm aggressively so explanations appear
  mc.explain_top_k = 3;
  OnlineMonitor monitor(*detector_, mc);
  const SessionStore random = portal_->generate_random_sessions(5, 321);
  bool saw_explained_alarm = false;
  for (const auto& s : random.all()) {
    monitor.reset();
    for (int action : s.actions) {
      const auto result = monitor.observe(action);
      if (result.alarm) {
        ASSERT_EQ(result.expected.size(), 3u);
        // Explanations are sorted by probability and are valid actions.
        for (std::size_t e = 1; e < result.expected.size(); ++e) {
          EXPECT_GE(result.expected[e - 1].probability, result.expected[e].probability);
        }
        for (const auto& exp : result.expected) {
          EXPECT_GE(exp.action, 0);
          EXPECT_LT(static_cast<std::size_t>(exp.action), store_->vocab().size());
          EXPECT_GT(exp.probability, 0.0);
        }
        saw_explained_alarm = true;
      }
    }
  }
  EXPECT_TRUE(saw_explained_alarm);
}

TEST_F(DetectorFixture, NonAlarmStepsHaveNoExplanations) {
  MonitorConfig mc;
  mc.alarm_likelihood = 0.0;  // nothing can fall below zero
  mc.trend_drop = 1.1;        // trend can never fire either
  OnlineMonitor monitor(*detector_, mc);
  const Session& s = store_->at(detector_->cluster(0).members.front());
  for (int action : s.actions) {
    const auto result = monitor.observe(action);
    EXPECT_FALSE(result.alarm);
    EXPECT_TRUE(result.expected.empty());
  }
}

TEST_F(DetectorFixture, RandomSessionsTriggerAlarms) {
  const SessionStore random = portal_->generate_random_sessions(30, 123);
  MonitorConfig mc;
  mc.alarm_likelihood = 0.02;
  std::size_t alarmed_sessions = 0;
  for (const auto& s : random.all()) {
    OnlineMonitor monitor(*detector_, mc);
    bool alarmed = false;
    for (int action : s.actions) alarmed |= monitor.observe(action).alarm;
    alarmed_sessions += alarmed ? 1 : 0;
  }
  EXPECT_GT(alarmed_sessions, random.size() / 2);
}

}  // namespace
}  // namespace misuse::core

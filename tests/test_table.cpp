#include "util/table.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace misuse {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"cluster", "accuracy"});
  t.add_row({"user-unlock", "0.81"});
  t.add_row({"x", "0.5"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| cluster     | accuracy |"), std::string::npos);
  EXPECT_NE(s.find("| user-unlock | 0.81     |"), std::string::npos);
}

TEST(Table, RowAndColCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[2], "3");
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\"\nok"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "name,note\n\"x,y\",\"say \"\"hi\"\"\nok\"\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(0.5), "0.5000");
}

TEST(Table, WriteCsvFileCreatesDirectories) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/misuse_table_test/sub/out.csv";
  t.write_csv_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
}

}  // namespace
}  // namespace misuse

// Differential test harness for the inference engine (nn/infer/).
//
// The engine's contracts, in decreasing strictness:
//   * scalar kernels — BIT-identical to the training-grade reference
//     forward (NextActionModel::step_into), one-row and batched alike
//     (the scalar table has no fused batch kernels, so batching loops
//     the one-row kernels). Every determinism guarantee in the repo
//     (WAL replay, hot swap, server-vs-offline) leans on this.
//   * avx2 kernels — ULP-bounded against scalar per step (vectorized
//     exp approximation, FMA re-association); the fused batch kernels
//     (register-blocked broadcast-FMA) must sit in the same envelope.
//   * quantized weights — different weights entirely; gated by the
//     measured verdict-flip check (core/quant_gate.hpp).
//   * packing — a pure permutation; pack -> unpack is lossless.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "core/quant_gate.hpp"
#include "nn/dense.hpp"
#include "nn/infer/dispatch.hpp"
#include "nn/infer/engine.hpp"
#include "nn/infer/packed.hpp"
#include "nn/infer/quant.hpp"
#include "nn/lstm.hpp"
#include "nn/next_action_model.hpp"
#include "synth/portal.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace misuse::nn::infer {
namespace {

// The mode/quant switches are process globals; every test restores them.
struct ModeGuard {
  InferMode mode = infer_mode();
  bool quant = quant_enabled();
  ~ModeGuard() {
    set_infer_mode(mode);
    set_quant_enabled(quant);
  }
};

std::vector<int> random_actions(std::size_t n, std::size_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> actions(n);
  for (auto& a : actions) a = static_cast<int>(rng.uniform_index(vocab));
  return actions;
}

NextActionModel make_model(std::size_t vocab, std::size_t hidden, std::uint64_t seed) {
  ModelConfig config;
  config.vocab = vocab;
  config.hidden = hidden;
  Rng rng(seed);
  return NextActionModel(config, rng);
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Lexicographically ordered integer image of a float: distances in this
// space count representable values between two floats (ULPs).
std::int64_t float_lex(float x) {
  const auto i = std::bit_cast<std::int32_t>(x);
  return i >= 0 ? static_cast<std::int64_t>(i)
                : static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min()) - i;
}

std::int64_t ulp_distance(float a, float b) {
  return std::llabs(float_lex(a) - float_lex(b));
}

// Max per-element ULP divergence tolerated between the avx2 kernels and
// scalar for one step from an identical state. Headroom over observed
// maxima (tens of ULPs) without masking real kernel bugs, which show up
// orders of magnitude larger.
constexpr std::int64_t kAvx2UlpBound = 2048;

// --- scalar: bit-identity with the reference forward -------------------

TEST(InferScalar, BitIdenticalToReferenceAcrossShapesAndSeeds) {
  ModeGuard guard;
  const struct {
    std::size_t vocab, hidden;
    std::uint64_t seed;
  } cases[] = {
      {13, 16, 1}, {29, 32, 2}, {50, 64, 3}, {61, 24, 4}, {7, 5, 5}, {40, 128, 6},
  };
  for (const auto& c : cases) {
    const NextActionModel model = make_model(c.vocab, c.hidden, c.seed);
    const auto engine = LstmInferEngine::build(model);
    ASSERT_NE(engine, nullptr);
    const auto actions = random_actions(120, c.vocab, c.seed * 977);

    set_infer_mode(InferMode::kScalar);
    ModelState ref_state = model.make_state();
    EngineState eng_state = engine->make_state();
    EngineScratch scratch;
    std::vector<float> ref_probs, eng_probs;
    for (const int a : actions) {
      model.step_into(ref_state, a, ref_probs);
      engine->step(eng_state, a, eng_probs, scratch);
      ASSERT_TRUE(bit_equal(ref_probs, eng_probs))
          << "vocab=" << c.vocab << " hidden=" << c.hidden << " seed=" << c.seed;
    }
  }
}

TEST(InferScalar, AutoModeResolvesToBitIdenticalKernels) {
  ModeGuard guard;
  const NextActionModel model = make_model(23, 48, 11);
  const auto engine = LstmInferEngine::build(model);
  ASSERT_NE(engine, nullptr);
  const auto actions = random_actions(60, 23, 123);

  set_infer_mode(InferMode::kAuto);
  ModelState ref_state = model.make_state();
  EngineState eng_state = engine->make_state();
  EngineScratch scratch;
  std::vector<float> ref_probs, eng_probs;
  for (const int a : actions) {
    model.step_into(ref_state, a, ref_probs);
    engine->step(eng_state, a, eng_probs, scratch);
    ASSERT_TRUE(bit_equal(ref_probs, eng_probs));
  }
}

TEST(InferScalar, BatchBitIdenticalToSequential) {
  ModeGuard guard;
  set_infer_mode(InferMode::kScalar);
  const NextActionModel model = make_model(31, 40, 17);
  const auto engine = LstmInferEngine::build(model);
  ASSERT_NE(engine, nullptr);

  constexpr std::size_t kSessions = 7;  // odd on purpose — no tile alignment
  constexpr std::size_t kSteps = 40;
  std::vector<std::vector<int>> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    streams.push_back(random_actions(kSteps, 31, 500 + i));
  }

  std::vector<EngineState> seq(kSessions, engine->make_state());
  std::vector<EngineState> bat(kSessions, engine->make_state());
  EngineScratch scratch;
  std::vector<float> seq_probs;
  std::vector<std::vector<float>> bat_probs(kSessions);
  std::vector<EngineState*> state_ptrs(kSessions);
  std::vector<std::vector<float>*> prob_ptrs(kSessions);
  std::vector<int> actions(kSessions);
  for (std::size_t t = 0; t < kSteps; ++t) {
    for (std::size_t i = 0; i < kSessions; ++i) {
      actions[i] = streams[i][t];
      state_ptrs[i] = &bat[i];
      prob_ptrs[i] = &bat_probs[i];
    }
    engine->step_batch(state_ptrs, actions, prob_ptrs, scratch);
    for (std::size_t i = 0; i < kSessions; ++i) {
      engine->step(seq[i], actions[i], seq_probs, scratch);
      ASSERT_TRUE(bit_equal(seq_probs, bat_probs[i])) << "step " << t << " session " << i;
      ASSERT_TRUE(bit_equal(seq[i].h, bat[i].h));
      ASSERT_TRUE(bit_equal(seq[i].c, bat[i].c));
    }
  }
}

// --- avx2: ULP envelope against scalar ----------------------------------

TEST(InferAvx2, OneRowStepWithinUlpOfScalar) {
  if (!avx2_supported()) GTEST_SKIP() << "avx2 kernels unavailable on this host";
  ModeGuard guard;
  const NextActionModel model = make_model(50, 96, 29);
  const auto engine = LstmInferEngine::build(model);
  ASSERT_NE(engine, nullptr);
  const auto actions = random_actions(100, 50, 4242);

  // Walk the trajectory under scalar; at each step, run one avx2 step
  // from the identical pre-step state so only per-step kernel error is
  // measured, not accumulated trajectory divergence.
  EngineState state = engine->make_state();
  EngineScratch scratch;
  std::vector<float> scalar_probs, avx2_probs;
  std::int64_t worst = 0;
  for (const int a : actions) {
    EngineState snapshot = state;
    set_infer_mode(InferMode::kScalar);
    engine->step(state, a, scalar_probs, scratch);
    set_infer_mode(InferMode::kAvx2);
    engine->step(snapshot, a, avx2_probs, scratch);
    ASSERT_EQ(scalar_probs.size(), avx2_probs.size());
    for (std::size_t j = 0; j < scalar_probs.size(); ++j) {
      worst = std::max(worst, ulp_distance(scalar_probs[j], avx2_probs[j]));
    }
    ASSERT_LE(worst, kAvx2UlpBound);
  }
  RecordProperty("max_ulp", static_cast<int>(worst));
}

TEST(InferAvx2, FusedBatchWithinUlpOfScalar) {
  if (!avx2_supported()) GTEST_SKIP() << "avx2 kernels unavailable on this host";
  ModeGuard guard;
  const NextActionModel model = make_model(44, 80, 31);
  const auto engine = LstmInferEngine::build(model);
  ASSERT_NE(engine, nullptr);

  // 10 sessions: one full 6-session tile plus a remainder, so both the
  // tiled kernel and the single-row tail are exercised.
  constexpr std::size_t kSessions = 10;
  constexpr std::size_t kSteps = 50;
  std::vector<std::vector<int>> streams;
  for (std::size_t i = 0; i < kSessions; ++i) {
    streams.push_back(random_actions(kSteps, 44, 900 + i));
  }

  std::vector<EngineState> scalar_states(kSessions, engine->make_state());
  EngineScratch scratch;
  std::vector<float> scalar_probs;
  std::vector<std::vector<float>> batch_probs(kSessions);
  std::int64_t worst = 0;
  for (std::size_t t = 0; t < kSteps; ++t) {
    // Fresh copies of the scalar trajectory states for the avx2 batch.
    std::vector<EngineState> batch_states(scalar_states);
    std::vector<EngineState*> state_ptrs(kSessions);
    std::vector<std::vector<float>*> prob_ptrs(kSessions);
    std::vector<int> actions(kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      actions[i] = streams[i][t];
      state_ptrs[i] = &batch_states[i];
      prob_ptrs[i] = &batch_probs[i];
    }
    set_infer_mode(InferMode::kAvx2);
    engine->step_batch(state_ptrs, actions, prob_ptrs, scratch);
    set_infer_mode(InferMode::kScalar);
    for (std::size_t i = 0; i < kSessions; ++i) {
      engine->step(scalar_states[i], actions[i], scalar_probs, scratch);
      ASSERT_EQ(scalar_probs.size(), batch_probs[i].size());
      for (std::size_t j = 0; j < scalar_probs.size(); ++j) {
        worst = std::max(worst, ulp_distance(scalar_probs[j], batch_probs[i][j]));
      }
      ASSERT_LE(worst, kAvx2UlpBound) << "step " << t << " session " << i;
    }
  }
  RecordProperty("max_ulp", static_cast<int>(worst));
}

// --- packing: pure permutation, lossless --------------------------------

TEST(InferPacking, PackUnpackLosslessOver100RandomShapes) {
  Rng shape_rng(2026);
  for (int k = 0; k < 100; ++k) {
    const std::size_t vocab = 3 + shape_rng.uniform_index(38);
    const std::size_t hidden = 2 + shape_rng.uniform_index(46);
    const NextActionModel model = make_model(vocab, hidden, 7000 + k);
    const auto* cell = dynamic_cast<const Lstm*>(&model.layer(0));
    ASSERT_NE(cell, nullptr);
    const PackedLstm packed = pack_lstm(*cell, model.head());

    // Direct copies must match the source matrices bit for bit.
    ASSERT_EQ(packed.wx.size(), cell->wx().size());
    EXPECT_EQ(std::memcmp(packed.wx.data(), cell->wx().data(),
                          packed.wx.size() * sizeof(float)),
              0);
    ASSERT_EQ(packed.wh.size(), cell->wh().size());
    EXPECT_EQ(std::memcmp(packed.wh.data(), cell->wh().data(),
                          packed.wh.size() * sizeof(float)),
              0);
    ASSERT_EQ(packed.head_w.size(), model.head().weights().size());
    EXPECT_EQ(std::memcmp(packed.head_w.data(), model.head().weights().data(),
                          packed.head_w.size() * sizeof(float)),
              0);

    // Transposed copies invert exactly.
    const Matrix wh = unpack_wh(packed);
    ASSERT_EQ(wh.rows(), cell->wh().rows());
    ASSERT_EQ(wh.cols(), cell->wh().cols());
    EXPECT_EQ(std::memcmp(wh.data(), cell->wh().data(), wh.size() * sizeof(float)), 0)
        << "case " << k << " vocab=" << vocab << " hidden=" << hidden;
    const Matrix hw = unpack_head_w(packed);
    ASSERT_EQ(hw.rows(), model.head().weights().rows());
    ASSERT_EQ(hw.cols(), model.head().weights().cols());
    EXPECT_EQ(std::memcmp(hw.data(), model.head().weights().data(),
                          hw.size() * sizeof(float)),
              0)
        << "case " << k << " vocab=" << vocab << " hidden=" << hidden;
  }
}

// --- quantization: measured verdict-flip gate ---------------------------

class QuantGateFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 150;
    pc.action_count = 50;
    pc.seed = 21;
    const SessionStore store = synth::Portal(pc).generate();
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {8, 10};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 3;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 16;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    detector_ = new core::MisuseDetector(core::MisuseDetector::train(store, dc));
  }
  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }

  static core::MisuseDetector quantized_reload(QuantKind kind) {
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    core::DetectorSaveOptions options;
    options.quant = kind;
    detector_->save(writer, options);
    std::istringstream in(out.str(), std::ios::binary);
    BinaryReader reader(in);
    return core::MisuseDetector::load(reader);
  }

  static core::MisuseDetector* detector_;
};

core::MisuseDetector* QuantGateFixture::detector_ = nullptr;

TEST_F(QuantGateFixture, Int8FlipRateUnderFixedThreshold) {
  ModeGuard guard;
  set_infer_mode(InferMode::kAuto);
  const core::MisuseDetector loaded = quantized_reload(QuantKind::kInt8);
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    ASSERT_TRUE(loaded.cluster_quantized(c));
  }
  core::QuantGateConfig gate;
  gate.max_flip_rate = 0.01;  // the registry's default publish threshold
  gate.sessions_per_cluster = 12;
  gate.session_length = 32;
  const core::QuantGateResult result = core::measure_quant_gate(loaded, gate);
  EXPECT_GT(result.steps, 0u);
  EXPECT_LE(result.flip_rate, 0.01) << result.verdict_flips << "/" << result.steps;
  EXPECT_TRUE(result.pass) << "max_loss_delta=" << result.max_loss_delta;
}

TEST_F(QuantGateFixture, Fp16FlipRateUnderFixedThreshold) {
  ModeGuard guard;
  set_infer_mode(InferMode::kAuto);
  const core::MisuseDetector loaded = quantized_reload(QuantKind::kFp16);
  core::QuantGateConfig gate;
  gate.max_flip_rate = 0.01;
  gate.sessions_per_cluster = 12;
  gate.session_length = 32;
  const core::QuantGateResult result = core::measure_quant_gate(loaded, gate);
  EXPECT_GT(result.steps, 0u);
  EXPECT_LE(result.flip_rate, 0.01);
  EXPECT_TRUE(result.pass);
}

// --- fp16 converters ----------------------------------------------------

TEST(InferQuant, HalfRoundTripExactForRepresentableValues) {
  // Every binary16 value decodes to a float that re-encodes to the same
  // bits (NaNs excluded — payload bits may legitimately differ).
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = half_to_float(h);
    if (std::isnan(f)) continue;
    EXPECT_EQ(float_to_half(f), h) << "half bits 0x" << std::hex << bits;
  }
}

}  // namespace
}  // namespace misuse::nn::infer

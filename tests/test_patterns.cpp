#include "patterns/mining.hpp"

#include <gtest/gtest.h>

namespace misuse::patterns {
namespace {

std::vector<Session> make_sessions(std::initializer_list<std::vector<int>> specs) {
  std::vector<Session> out;
  std::uint64_t id = 0;
  for (const auto& actions : specs) {
    Session s;
    s.id = ++id;
    s.actions = actions;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<const Session*> ptrs(const std::vector<Session>& sessions) {
  std::vector<const Session*> out;
  for (const auto& s : sessions) out.push_back(&s);
  return out;
}

TEST(Itemsets, FindsFrequentSingletons) {
  const auto sessions = make_sessions({{0, 1}, {0, 2}, {0, 3}, {4}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.5;
  const auto patterns = mine_frequent_itemsets(p, config);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].actions, std::vector<int>{0});
  EXPECT_EQ(patterns[0].support, 3u);
}

TEST(Itemsets, FindsFrequentPairs) {
  const auto sessions = make_sessions({{0, 1, 5}, {1, 0}, {0, 1, 2}, {3, 4}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.5;
  const auto patterns = mine_frequent_itemsets(p, config);
  bool found_pair = false;
  for (const auto& pattern : patterns) {
    if (pattern.actions == std::vector<int>{0, 1}) {
      found_pair = true;
      EXPECT_EQ(pattern.support, 3u);
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(Itemsets, RepetitionCountsOncePerSession) {
  const auto sessions = make_sessions({{7, 7, 7, 7}, {7}, {1}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.5;
  const auto patterns = mine_frequent_itemsets(p, config);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].actions, std::vector<int>{7});
  EXPECT_EQ(patterns[0].support, 2u);
}

TEST(Itemsets, RespectsMaxPatternLength) {
  const auto sessions = make_sessions({{0, 1, 2, 3}, {0, 1, 2, 3}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.9;
  config.max_pattern = 2;
  const auto patterns = mine_frequent_itemsets(p, config);
  for (const auto& pattern : patterns) EXPECT_LE(pattern.actions.size(), 2u);
}

TEST(Itemsets, SupportFractionComputed) {
  ItemsetPattern p;
  p.support = 3;
  EXPECT_DOUBLE_EQ(p.support_fraction(6), 0.5);
  EXPECT_DOUBLE_EQ(p.support_fraction(0), 0.0);
}

TEST(Itemsets, ResultsSortedBySupport) {
  const auto sessions = make_sessions({{0, 1}, {0, 1}, {0}, {1}, {0}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.2;
  const auto patterns = mine_frequent_itemsets(p, config);
  for (std::size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].support, patterns[i].support);
  }
}

TEST(Subsequences, FindsWorkflowBigrams) {
  const auto sessions = make_sessions({{0, 1, 2}, {0, 1, 3}, {0, 1}, {5, 6}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.5;
  const auto patterns = mine_frequent_subsequences(p, config);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns[0].actions, (std::vector<int>{0, 1}));
  EXPECT_EQ(patterns[0].support, 3u);
}

TEST(Subsequences, ContiguityRequired) {
  // 0...2 is never contiguous, so {0,2} must not appear.
  const auto sessions = make_sessions({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.9;
  const auto patterns = mine_frequent_subsequences(p, config);
  for (const auto& pattern : patterns) {
    EXPECT_NE(pattern.actions, (std::vector<int>{0, 2}));
  }
}

TEST(Subsequences, ExtendsToTrigrams) {
  const auto sessions = make_sessions({{4, 5, 6, 9}, {1, 4, 5, 6}, {4, 5, 6}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.9;
  config.max_pattern = 3;
  const auto patterns = mine_frequent_subsequences(p, config);
  bool found = false;
  for (const auto& pattern : patterns) {
    if (pattern.actions == (std::vector<int>{4, 5, 6})) {
      found = true;
      EXPECT_EQ(pattern.support, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Subsequences, SupportCountsSessionsNotOccurrences) {
  const auto sessions = make_sessions({{1, 2, 1, 2, 1, 2}, {3}});
  const auto p = ptrs(sessions);
  MiningConfig config;
  config.min_support = 0.4;
  const auto patterns = mine_frequent_subsequences(p, config);
  for (const auto& pattern : patterns) {
    if (pattern.actions == (std::vector<int>{1, 2})) {
      EXPECT_EQ(pattern.support, 1u);
    }
  }
}

TEST(Characteristic, HighLiftForClusterSpecificActions) {
  // Action 9 appears in every cluster session but rarely elsewhere.
  const auto cluster_sessions = make_sessions({{9, 1}, {9, 2}, {9, 3}});
  const auto other_sessions = make_sessions({{1, 2}, {2, 3}, {3, 1}, {1, 3}, {2, 1}, {3, 2}});
  std::vector<const Session*> cluster = ptrs(cluster_sessions);
  std::vector<const Session*> corpus = ptrs(other_sessions);
  for (const auto* s : cluster) corpus.push_back(s);

  const auto chars = characteristic_actions(cluster, corpus, 3);
  ASSERT_FALSE(chars.empty());
  EXPECT_EQ(chars[0].action, 9);
  EXPECT_DOUBLE_EQ(chars[0].cluster_frequency, 1.0);
  EXPECT_GT(chars[0].lift, 2.0);
}

TEST(Characteristic, TopNLimitsOutput) {
  const auto sessions = make_sessions({{0, 1, 2, 3, 4, 5}});
  const auto p = ptrs(sessions);
  const auto chars = characteristic_actions(p, p, 3);
  EXPECT_LE(chars.size(), 3u);
}

TEST(Describe, RendersNamesAndSupport) {
  ActionVocab vocab;
  vocab.intern("ActionUnLockUser");
  vocab.intern("ActionSearchUsr");
  std::vector<ItemsetPattern> patterns = {{{0, 1}, 8}, {{1}, 10}};
  const std::string text = describe_itemsets(patterns, vocab, 10, 5);
  EXPECT_NE(text.find("ActionUnLockUser"), std::string::npos);
  EXPECT_NE(text.find("80%"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

}  // namespace
}  // namespace misuse::patterns

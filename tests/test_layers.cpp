#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/ops.hpp"

namespace misuse::nn {
namespace {

TEST(Dense, ForwardKnownValues) {
  Dense d(2, 2);
  auto params = d.params();
  params[0]->value = Matrix::from_rows(2, 2, {1, 2, 3, 4});  // W
  params[1]->value = Matrix::from_rows(1, 2, {10, 20});      // b
  const auto x = Matrix::from_rows(1, 2, {1, 1});
  Matrix y;
  d.infer(x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 14.0f);  // 1*1 + 1*3 + 10
  EXPECT_FLOAT_EQ(y(0, 1), 26.0f);  // 1*2 + 1*4 + 20
}

TEST(Dense, ForwardAndInferAgree) {
  Rng rng(1);
  Dense d(5, 3, rng);
  Matrix x(4, 5);
  x.init_gaussian(rng, 1.0f);
  Matrix y1, y2;
  d.forward(x, y1);
  d.infer(x, y2);
  EXPECT_TRUE(y1 == y2);
}

TEST(Dense, BackwardGradientShapes) {
  Rng rng(2);
  Dense d(4, 6, rng);
  Matrix x(3, 4);
  x.init_gaussian(rng, 1.0f);
  Matrix y;
  d.forward(x, y);
  Matrix dy(3, 6, 1.0f);
  Matrix dx;
  zero_grads(d.params());
  d.backward(dy, dx);
  EXPECT_EQ(dx.rows(), 3u);
  EXPECT_EQ(dx.cols(), 4u);
  EXPECT_EQ(d.params()[0]->grad.rows(), 4u);
  EXPECT_EQ(d.params()[0]->grad.cols(), 6u);
}

TEST(Dense, BackwardMatchesFiniteDifference) {
  Rng rng(3);
  Dense d(3, 2, rng);
  Matrix x(2, 3);
  x.init_gaussian(rng, 1.0f);

  // Scalar loss = sum(Y).
  const auto loss = [&]() {
    Matrix y;
    d.infer(x, y);
    double sum = 0.0;
    for (float v : y.flat()) sum += v;
    return sum;
  };

  Matrix y;
  d.forward(x, y);
  Matrix dy(2, 2, 1.0f);
  Matrix dx;
  zero_grads(d.params());
  d.backward(dy, dx);

  for (auto* p : d.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.flat()[i];
      const double eps = 1e-2;
      p->value.flat()[i] = orig + static_cast<float>(eps);
      const double plus = loss();
      p->value.flat()[i] = orig - static_cast<float>(eps);
      const double minus = loss();
      p->value.flat()[i] = orig;
      const double numeric = (plus - minus) / (2 * eps);
      ASSERT_NEAR(p->grad.flat()[i], numeric, 5e-2) << p->name << "[" << i << "]";
    }
  }
}

TEST(Dense, SaveLoadRoundTrip) {
  Rng rng(4);
  Dense d(3, 5, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  d.save(w);
  BinaryReader r(buf);
  Dense loaded = Dense::load(r);
  Matrix x(2, 3);
  x.init_gaussian(rng, 1.0f);
  Matrix y1, y2;
  d.infer(x, y1);
  loaded.infer(x, y2);
  EXPECT_TRUE(y1 == y2);
}

TEST(Dropout, ZeroRateIsIdentity) {
  Rng rng(5);
  Dropout drop(0.0f);
  Matrix x(3, 3, 2.0f);
  Matrix before = x;
  drop.forward_train(x, rng);
  EXPECT_TRUE(x == before);
}

TEST(Dropout, MaskZeroesApproximatelyRateFraction) {
  Rng rng(6);
  Dropout drop(0.4f);
  Matrix x(100, 100, 1.0f);
  drop.forward_train(x, rng);
  std::size_t zeros = 0;
  for (float v : x.flat()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(x.size()), 0.4, 0.02);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Rng rng(7);
  Dropout drop(0.4f);
  Matrix x(200, 200, 1.0f);
  drop.forward_train(x, rng);
  double sum = 0.0;
  for (float v : x.flat()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(x.size()), 1.0, 0.02);
}

TEST(Dropout, KeptValuesScaledByInverseKeep) {
  Rng rng(8);
  Dropout drop(0.5f);
  Matrix x(10, 10, 3.0f);
  drop.forward_train(x, rng);
  for (float v : x.flat()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 6.0f) < 1e-5f);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(9);
  Dropout drop(0.5f);
  Matrix x(20, 20, 1.0f);
  drop.forward_train(x, rng);
  Matrix dx(20, 20, 1.0f);
  drop.backward(dx);
  // Gradient must be zero exactly where activation was zeroed.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x.flat()[i] == 0.0f, dx.flat()[i] == 0.0f);
  }
}

TEST(SoftmaxXent, LossOfUniformLogitsIsLogD) {
  Matrix logits(1, 8, 0.0f);
  const std::vector<int> targets = {3};
  const XentResult res = softmax_xent_eval(logits, targets);
  EXPECT_NEAR(res.mean_loss(), std::log(8.0), 1e-6);
}

TEST(SoftmaxXent, PerfectPredictionLowLoss) {
  Matrix logits(1, 4, 0.0f);
  logits(0, 2) = 100.0f;
  const std::vector<int> targets = {2};
  const XentResult res = softmax_xent_eval(logits, targets);
  EXPECT_LT(res.mean_loss(), 1e-6);
  EXPECT_EQ(res.correct, 1u);
}

TEST(SoftmaxXent, AccuracyCountsArgmaxHits) {
  Matrix logits(3, 2, 0.0f);
  logits(0, 0) = 1.0f;  // predicts 0
  logits(1, 1) = 1.0f;  // predicts 1
  logits(2, 0) = 1.0f;  // predicts 0
  const std::vector<int> targets = {0, 1, 1};
  const XentResult res = softmax_xent_eval(logits, targets);
  EXPECT_EQ(res.correct, 2u);
  EXPECT_NEAR(res.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(SoftmaxXent, GradientIsProbMinusOnehotOverN) {
  Matrix logits = Matrix::from_rows(2, 3, {1, 2, 3, 0, 0, 0});
  const std::vector<int> targets = {2, 0};
  Matrix d_logits;
  softmax_xent_backward(logits, targets, d_logits);

  Matrix probs = logits;
  softmax_rows(probs);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t j = 0; j < 3; ++j) {
      const float expected =
          (probs(r, j) - (static_cast<int>(j) == targets[r] ? 1.0f : 0.0f)) / 2.0f;
      EXPECT_NEAR(d_logits(r, j), expected, 1e-6f);
    }
  }
}

TEST(SoftmaxXent, GradientRowsSumToZero) {
  Rng rng(10);
  Matrix logits(5, 7);
  logits.init_gaussian(rng, 2.0f);
  const std::vector<int> targets = {0, 1, 2, 3, 4};
  Matrix d_logits;
  softmax_xent_backward(logits, targets, d_logits);
  for (std::size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (float v : d_logits.row(r)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxXent, BackwardAndEvalAgreeOnLoss) {
  Rng rng(11);
  Matrix logits(6, 9);
  logits.init_gaussian(rng, 1.5f);
  std::vector<int> targets;
  for (int i = 0; i < 6; ++i) targets.push_back(static_cast<int>(rng.uniform_index(9)));
  Matrix d_logits;
  const XentResult a = softmax_xent_backward(logits, targets, d_logits);
  const XentResult b = softmax_xent_eval(logits, targets);
  EXPECT_NEAR(a.total_loss, b.total_loss, 1e-9);
  EXPECT_EQ(a.correct, b.correct);
}

TEST(SoftmaxXent, TargetProbabilitiesMatchSoftmax) {
  Matrix logits = Matrix::from_rows(1, 3, {0.0f, 1.0f, 2.0f});
  const std::vector<int> targets = {1};
  const auto probs = target_probabilities(logits, targets);
  Matrix sm = logits;
  softmax_rows(sm);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_NEAR(probs[0], sm(0, 1), 1e-6);
}

}  // namespace
}  // namespace misuse::nn

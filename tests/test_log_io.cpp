#include "sessions/log_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace misuse {
namespace {

SessionStore sample_store() {
  ActionVocab v;
  SessionStore store(std::move(v));
  Session s1;
  s1.id = 10;
  s1.user = 3;
  s1.start_minute = 120;
  s1.actions = {store.vocab().intern("ActionSearchUser"), store.vocab().intern("ActionDisplayUser")};
  store.add(std::move(s1));
  Session s2;
  s2.id = 11;
  s2.user = 4;
  s2.start_minute = 500;
  s2.actions = {store.vocab().intern("ActionDeleteUser")};
  store.add(std::move(s2));
  return store;
}

TEST(LogIo, WriterEmitsHeaderAndRows) {
  std::ostringstream out;
  write_session_log(sample_store(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# misusedet session log v1"), std::string::npos);
  EXPECT_NE(text.find("10\t3\t120\tActionSearchUser,ActionDisplayUser"), std::string::npos);
  EXPECT_NE(text.find("11\t4\t500\tActionDeleteUser"), std::string::npos);
}

TEST(LogIo, RoundTripPreservesEverything) {
  const SessionStore original = sample_store();
  std::stringstream buf;
  write_session_log(original, buf);
  SessionStore loaded;
  read_session_log(buf, loaded);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Session& a = original.at(i);
    const Session& b = loaded.at(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.start_minute, b.start_minute);
    ASSERT_EQ(a.actions.size(), b.actions.size());
    for (std::size_t j = 0; j < a.actions.size(); ++j) {
      EXPECT_EQ(original.vocab().name(a.actions[j]), loaded.vocab().name(b.actions[j]));
    }
  }
}

TEST(LogIo, SkipsCommentsAndBlankLines) {
  std::stringstream in("# comment\n\n1\t2\t3\tActionA\n# another\n");
  SessionStore store;
  read_session_log(in, store);
  EXPECT_EQ(store.size(), 1u);
}

TEST(LogIo, RejectsWrongFieldCount) {
  std::stringstream in("1\t2\tActionA\n");
  SessionStore store;
  EXPECT_THROW(read_session_log(in, store), LogParseError);
}

TEST(LogIo, RejectsNonNumericId) {
  std::stringstream in("abc\t2\t3\tActionA\n");
  SessionStore store;
  EXPECT_THROW(read_session_log(in, store), LogParseError);
}

TEST(LogIo, RejectsEmptyActionName) {
  std::stringstream in("1\t2\t3\tActionA,,ActionB\n");
  SessionStore store;
  EXPECT_THROW(read_session_log(in, store), LogParseError);
}

TEST(LogIo, ErrorMessageIncludesLineNumber) {
  std::stringstream in("1\t2\t3\tActionA\nbad line here\n");
  SessionStore store;
  try {
    read_session_log(in, store);
    FAIL() << "expected LogParseError";
  } catch (const LogParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LogIo, EmptyActionsFieldYieldsEmptySession) {
  std::stringstream in("1\t2\t3\t\n");
  SessionStore store;
  read_session_log(in, store);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.at(0).length(), 0u);
}

TEST(LogIo, SharedVocabAcrossSessions) {
  std::stringstream in("1\t1\t1\tActionA,ActionB\n2\t1\t2\tActionB,ActionA\n");
  SessionStore store;
  read_session_log(in, store);
  EXPECT_EQ(store.vocab().size(), 2u);
  EXPECT_EQ(store.at(0).actions[0], store.at(1).actions[1]);
}

TEST(LogIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/misuse_log_io_test.log";
  write_session_log_file(sample_store(), path);
  const SessionStore loaded = read_session_log_file(path);
  EXPECT_EQ(loaded.size(), 2u);
}

TEST(LogIo, MissingFileThrows) {
  EXPECT_THROW(read_session_log_file("/nonexistent/path/x.log"), LogParseError);
}

}  // namespace
}  // namespace misuse

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace misuse::core {
namespace {

ExperimentConfig config_from(std::initializer_list<const char*> flags) {
  std::vector<const char*> argv = {"bench"};
  argv.insert(argv.end(), flags.begin(), flags.end());
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  return ExperimentConfig::from_cli(args);
}

TEST(ExperimentConfig, DefaultsAreCpuScale) {
  const auto config = config_from({});
  EXPECT_EQ(config.portal.sessions, 3000u);
  EXPECT_EQ(config.portal.action_count, 100u);
  EXPECT_EQ(config.detector.lm.hidden, 48u);
  EXPECT_EQ(config.detector.lm.layers, 1u);
  EXPECT_EQ(config.detector.lm.batching.mode, lm::BatchingMode::kFullSequence);
  EXPECT_EQ(config.detector.expert.target_clusters, 13u);
  EXPECT_TRUE(config.use_cache);
}

TEST(ExperimentConfig, PaperScaleMatchesPaper) {
  const auto config = config_from({"--paper-scale"});
  EXPECT_EQ(config.portal.sessions, 15000u);   // ~15000 sessions (SS IV-A)
  EXPECT_EQ(config.portal.users, 1400u);       // ~1400 users
  EXPECT_EQ(config.portal.action_count, 300u); // ~300 actions
  EXPECT_EQ(config.detector.lm.hidden, 256u);  // 256 LSTM units
  EXPECT_EQ(config.detector.lm.batching.window, 100u);  // window 100
  EXPECT_FLOAT_EQ(config.detector.lm.dropout, 0.4f);    // dropout 0.4
  EXPECT_EQ(config.detector.ensemble.topic_counts.size(), 4u);
}

TEST(ExperimentConfig, WindowedModeUsesPaperTrainingHyperparams) {
  const auto config = config_from({"--mode=windowed"});
  EXPECT_EQ(config.detector.lm.batching.mode, lm::BatchingMode::kWindowed);
  EXPECT_EQ(config.detector.lm.batching.batch_size, 32u);  // minibatch 32
  EXPECT_FLOAT_EQ(config.detector.lm.learning_rate, 1e-3f);  // lr 0.001
}

TEST(ExperimentConfig, FlagsOverrideDefaults) {
  const auto config = config_from({"--sessions=777", "--hidden=32", "--layers=2",
                                   "--embedding=16", "--seed=9", "--no-cache"});
  EXPECT_EQ(config.portal.sessions, 777u);
  EXPECT_EQ(config.detector.lm.hidden, 32u);
  EXPECT_EQ(config.detector.lm.layers, 2u);
  EXPECT_EQ(config.detector.lm.embedding_dim, 16u);
  EXPECT_EQ(config.portal.seed, 9u);
  EXPECT_FALSE(config.use_cache);
}

TEST(ExperimentConfig, FingerprintStableForSameConfig) {
  const auto a = config_from({"--sessions=500"});
  const auto b = config_from({"--sessions=500"});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ExperimentConfig, FingerprintSensitiveToTrainingKnobs) {
  const auto base = config_from({});
  for (const char* flag : {"--sessions=2999", "--actions=99", "--hidden=49", "--layers=2",
                           "--embedding=8", "--epochs=29", "--window=63", "--seed=43",
                           "--clusters=12", "--nu=0.2", "--mode=windowed",
                           "--normalize-features"}) {
    const auto changed = config_from({flag});
    EXPECT_NE(base.fingerprint(), changed.fingerprint()) << flag;
  }
}

TEST(ExperimentConfig, FingerprintIgnoresPresentationKnobs) {
  const auto a = config_from({});
  const auto b = config_from({"--results-dir=elsewhere", "--log-level=warn"});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Experiment, PrepareTrainsAndCachesDetector) {
  const std::string dir = ::testing::TempDir() + "/misuse_experiment_cache";
  std::filesystem::remove_all(dir);
  auto config = config_from({"--sessions=250", "--actions=60", "--hidden=8", "--epochs=2",
                             "--lda-iters=10", "--clusters=4", "--min-cluster-sessions=5",
                             "--patience=0"});
  config.results_dir = dir;

  Experiment first = Experiment::prepare(config);
  EXPECT_GT(first.detector.cluster_count(), 0u);
  // A cache file must now exist.
  std::size_t cache_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir + "/cache")) {
    (void)entry;
    ++cache_files;
  }
  EXPECT_EQ(cache_files, 1u);

  // Second prepare loads the cache and yields identical predictions.
  Experiment second = Experiment::prepare(config);
  const auto& probe = first.store.at(first.detector.cluster(0).members.front());
  const auto a = first.detector.predict(probe.view());
  const auto b = second.detector.predict(probe.view());
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.score.likelihoods.size(), b.score.likelihoods.size());
  for (std::size_t i = 0; i < a.score.likelihoods.size(); ++i) {
    EXPECT_EQ(a.score.likelihoods[i], b.score.likelihoods[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Experiment, UnitedTestSetCoversAllClusters) {
  const std::string dir = ::testing::TempDir() + "/misuse_experiment_united";
  std::filesystem::remove_all(dir);
  auto config = config_from({"--sessions=250", "--actions=60", "--hidden=8", "--epochs=2",
                             "--lda-iters=10", "--clusters=4", "--min-cluster-sessions=5",
                             "--patience=0"});
  config.results_dir = dir;
  Experiment experiment = Experiment::prepare(config);
  const auto united = experiment.united_test_set();
  std::set<std::size_t> clusters;
  for (const auto& [i, c] : united) {
    EXPECT_LT(i, experiment.store.size());
    clusters.insert(c);
  }
  EXPECT_EQ(clusters.size(), experiment.detector.cluster_count());
  std::filesystem::remove_all(dir);
}

TEST(Experiment, CorruptCacheFallsBackToTraining) {
  const std::string dir = ::testing::TempDir() + "/misuse_experiment_corrupt";
  std::filesystem::remove_all(dir);
  auto config = config_from({"--sessions=250", "--actions=60", "--hidden=8", "--epochs=2",
                             "--lda-iters=10", "--clusters=4", "--min-cluster-sessions=5",
                             "--patience=0"});
  config.results_dir = dir;
  Experiment first = Experiment::prepare(config);
  // Corrupt the cache file.
  for (const auto& entry : std::filesystem::directory_iterator(dir + "/cache")) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  Experiment second = Experiment::prepare(config);  // must retrain, not crash
  EXPECT_EQ(second.detector.cluster_count(), first.detector.cluster_count());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace misuse::core

#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace misuse {
namespace {

// The trace tree is process-global and aggregates by name, so every test
// uses its own span names and locates them with find_span rather than
// assuming a fresh tree.

TEST(Trace, SpanRecordsIntoNamedNode) {
  { Span span("trace_test.single"); }
  const TraceStats tree = trace_snapshot();
  const TraceStats* stats = find_span(tree, "trace_test.single");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->count, 1u);
  EXPECT_GE(stats->total_seconds, 0.0);
  EXPECT_LE(stats->min_seconds, stats->max_seconds);
}

TEST(Trace, NestedSpansBecomeChildren) {
  {
    Span outer("trace_test.parent");
    Span inner("trace_test.child");
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.parent");
  ASSERT_NE(parent, nullptr);
  const TraceStats* child = find_span(*parent, "trace_test.child");
  ASSERT_NE(child, nullptr);
  EXPECT_GE(child->count, 1u);
}

TEST(Trace, SameNameAggregatesUnderSameParent) {
  {
    Span outer("trace_test.agg_parent");
    for (int i = 0; i < 5; ++i) {
      Span inner("trace_test.agg_child");
    }
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.agg_parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 1u);  // one node, not five
  EXPECT_EQ(parent->children[0].count, 5u);
  EXPECT_GE(parent->children[0].total_seconds, parent->children[0].min_seconds);
}

TEST(Trace, StopIsIdempotentAndReturnsSeconds) {
  Span span("trace_test.stop");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  const double second = span.stop();
  EXPECT_DOUBLE_EQ(first, second);  // destructor will also be a no-op
}

TEST(Trace, SecondsReadsWithoutStopping) {
  Span span("trace_test.seconds");
  const double early = span.seconds();
  EXPECT_GE(early, 0.0);
  EXPECT_GE(span.seconds(), early);
}

TEST(Trace, SpansNestAcrossParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    Span outer("trace_test.fanout");
    pool.parallel_for(0, 64, [&](std::size_t) {
      Span inner("trace_test.fanout_task");
      ran.fetch_add(1);
    });
  }
  EXPECT_EQ(ran.load(), 64);
  const TraceStats tree = trace_snapshot();
  const TraceStats* outer = find_span(tree, "trace_test.fanout");
  ASSERT_NE(outer, nullptr);
  // Worker-side spans attached under the span that issued the fan-out,
  // not at the root: 64 closes aggregated into one child node.
  const TraceStats* inner = find_span(*outer, "trace_test.fanout_task");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 64u);
}

TEST(Trace, SpansNestAcrossSubmit) {
  ThreadPool pool(2);
  {
    Span outer("trace_test.submit");
    auto f = pool.submit([] { Span inner("trace_test.submit_task"); });
    f.get();
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* outer = find_span(tree, "trace_test.submit");
  ASSERT_NE(outer, nullptr);
  const TraceStats* inner = find_span(*outer, "trace_test.submit_task");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->count, 1u);
}

TEST(Trace, EnsurePathCreatesZeroCountNodes) {
  trace_ensure_path({"trace_test.skeleton", "trace_test.skeleton_leaf"});
  const TraceStats tree = trace_snapshot();
  const TraceStats* node = find_span(tree, "trace_test.skeleton");
  ASSERT_NE(node, nullptr);
  const TraceStats* leaf = find_span(*node, "trace_test.skeleton_leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 0u);
  EXPECT_DOUBLE_EQ(leaf->total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(leaf->min_seconds, 0.0);  // unrecorded min reads as 0
}

TEST(Trace, FormatTreeListsSpanNames) {
  { Span span("trace_test.format"); }
  const std::string text = format_trace_tree(trace_snapshot());
  EXPECT_NE(text.find("trace_test.format"), std::string::npos);
}

TEST(Trace, ResetZeroesStatsButKeepsStructure) {
  { Span span("trace_test.reset"); }
  trace_reset();
  const TraceStats tree = trace_snapshot();
  const TraceStats* stats = find_span(tree, "trace_test.reset");
  ASSERT_NE(stats, nullptr);  // node survives
  EXPECT_EQ(stats->count, 0u);
  EXPECT_DOUBLE_EQ(stats->total_seconds, 0.0);
  // Recording works again after the reset.
  { Span span("trace_test.reset"); }
  const TraceStats tree_after = trace_snapshot();
  const TraceStats* after = find_span(tree_after, "trace_test.reset");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count, 1u);
}

TEST(Trace, ChildrenAreNameSorted) {
  {
    Span outer("trace_test.sorted");
    { Span b("trace_test.sorted_b"); }
    { Span a("trace_test.sorted_a"); }
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.sorted");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 2u);
  EXPECT_EQ(parent->children[0].name, "trace_test.sorted_a");
  EXPECT_EQ(parent->children[1].name, "trace_test.sorted_b");
}

// --- Sampled trace events ------------------------------------------------

/// The event ring is process-global; every test enables it fresh (enable
/// clears) and disables on the way out so other tests see it off.
class EventLogGuard {
 public:
  explicit EventLogGuard(std::size_t capacity) { trace_events().enable(capacity); }
  ~EventLogGuard() { trace_events().disable(); }
};

TraceEvent make_event(const std::string& name, const std::string& track, std::uint64_t start,
                      std::uint64_t duration = 10, const std::string& args = "") {
  TraceEvent e;
  e.name = name;
  e.track = track;
  e.start_nanos = start;
  e.duration_nanos = duration;
  e.args = args;
  return e;
}

TEST(TraceEvents, DisabledRecordIsDropped) {
  trace_events().disable();
  EXPECT_FALSE(trace_events().enabled());
  trace_events().record(make_event("e", "t", 1));
  EXPECT_TRUE(trace_events().snapshot().empty());
}

TEST(TraceEvents, RingKeepsNewestAndCountsDropped) {
  EventLogGuard guard(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace_events().record(make_event("e" + std::to_string(i), "t", i));
  }
  const auto events = trace_events().snapshot();
  ASSERT_EQ(events.size(), 3u);  // bounded by capacity
  EXPECT_EQ(trace_events().dropped(), 2u);
  // Oldest-first order, holding the newest three.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
}

TEST(TraceEvents, EnableClearsAndClearKeepsEnabled) {
  EventLogGuard guard(4);
  trace_events().record(make_event("stale", "t", 1));
  trace_events().enable(4);  // re-enable = fresh ring
  EXPECT_TRUE(trace_events().snapshot().empty());
  trace_events().record(make_event("fresh", "t", 2));
  trace_events().clear();
  EXPECT_TRUE(trace_events().snapshot().empty());
  EXPECT_TRUE(trace_events().enabled());
}

TEST(TraceEvents, ChromeTraceExportShape) {
  const std::vector<TraceEvent> events = {
      make_event("step", "user1|s1", 2000, 500, "\"step\":1,\"alarm\":false"),
      make_event("step", "user2|s2", 3000, 250),
  };
  std::ostringstream out;
  write_chrome_trace(out, events);
  const std::string doc = out.str();
  // Complete events with microsecond units, plus thread_name metadata
  // naming each track lane.
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"user1|s1\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":2"), std::string::npos);   // 2000 ns -> 2 us
  EXPECT_NE(doc.find("\"dur\":0.5"), std::string::npos);  // 500 ns -> 0.5 us
  EXPECT_NE(doc.find("\"args\":{\"step\":1,\"alarm\":false}"), std::string::npos);
  // Balanced braces: args splicing must not break the document.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceEvents, NdjsonExportOneFlatObjectPerLine) {
  const std::vector<TraceEvent> events = {
      make_event("enqueue", "k", 100, 7, "\"shard\":2"),
      make_event("report", "k", 200, 0),
  };
  std::ostringstream out;
  write_trace_events_ndjson(out, events);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":"), std::string::npos);
    EXPECT_NE(line.find("\"start_nanos\":"), std::string::npos);
    ++n;
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(out.str().find("\"duration_nanos\":7,\"shard\":2}"), std::string::npos);
}

TEST(TraceEvents, ConcurrentRecordsAllLandWithinCapacity) {
  EventLogGuard guard(256);
  ThreadPool pool(4);
  pool.parallel_for(0, 200, [&](std::size_t i) {
    trace_events().record(make_event("c", "t" + std::to_string(i % 8), i));
  });
  EXPECT_EQ(trace_events().snapshot().size(), 200u);
  EXPECT_EQ(trace_events().dropped(), 0u);
}

}  // namespace
}  // namespace misuse

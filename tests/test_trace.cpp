#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/thread_pool.hpp"

namespace misuse {
namespace {

// The trace tree is process-global and aggregates by name, so every test
// uses its own span names and locates them with find_span rather than
// assuming a fresh tree.

TEST(Trace, SpanRecordsIntoNamedNode) {
  { Span span("trace_test.single"); }
  const TraceStats tree = trace_snapshot();
  const TraceStats* stats = find_span(tree, "trace_test.single");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->count, 1u);
  EXPECT_GE(stats->total_seconds, 0.0);
  EXPECT_LE(stats->min_seconds, stats->max_seconds);
}

TEST(Trace, NestedSpansBecomeChildren) {
  {
    Span outer("trace_test.parent");
    Span inner("trace_test.child");
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.parent");
  ASSERT_NE(parent, nullptr);
  const TraceStats* child = find_span(*parent, "trace_test.child");
  ASSERT_NE(child, nullptr);
  EXPECT_GE(child->count, 1u);
}

TEST(Trace, SameNameAggregatesUnderSameParent) {
  {
    Span outer("trace_test.agg_parent");
    for (int i = 0; i < 5; ++i) {
      Span inner("trace_test.agg_child");
    }
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.agg_parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 1u);  // one node, not five
  EXPECT_EQ(parent->children[0].count, 5u);
  EXPECT_GE(parent->children[0].total_seconds, parent->children[0].min_seconds);
}

TEST(Trace, StopIsIdempotentAndReturnsSeconds) {
  Span span("trace_test.stop");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  const double second = span.stop();
  EXPECT_DOUBLE_EQ(first, second);  // destructor will also be a no-op
}

TEST(Trace, SecondsReadsWithoutStopping) {
  Span span("trace_test.seconds");
  const double early = span.seconds();
  EXPECT_GE(early, 0.0);
  EXPECT_GE(span.seconds(), early);
}

TEST(Trace, SpansNestAcrossParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    Span outer("trace_test.fanout");
    pool.parallel_for(0, 64, [&](std::size_t) {
      Span inner("trace_test.fanout_task");
      ran.fetch_add(1);
    });
  }
  EXPECT_EQ(ran.load(), 64);
  const TraceStats tree = trace_snapshot();
  const TraceStats* outer = find_span(tree, "trace_test.fanout");
  ASSERT_NE(outer, nullptr);
  // Worker-side spans attached under the span that issued the fan-out,
  // not at the root: 64 closes aggregated into one child node.
  const TraceStats* inner = find_span(*outer, "trace_test.fanout_task");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 64u);
}

TEST(Trace, SpansNestAcrossSubmit) {
  ThreadPool pool(2);
  {
    Span outer("trace_test.submit");
    auto f = pool.submit([] { Span inner("trace_test.submit_task"); });
    f.get();
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* outer = find_span(tree, "trace_test.submit");
  ASSERT_NE(outer, nullptr);
  const TraceStats* inner = find_span(*outer, "trace_test.submit_task");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->count, 1u);
}

TEST(Trace, EnsurePathCreatesZeroCountNodes) {
  trace_ensure_path({"trace_test.skeleton", "trace_test.skeleton_leaf"});
  const TraceStats tree = trace_snapshot();
  const TraceStats* node = find_span(tree, "trace_test.skeleton");
  ASSERT_NE(node, nullptr);
  const TraceStats* leaf = find_span(*node, "trace_test.skeleton_leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 0u);
  EXPECT_DOUBLE_EQ(leaf->total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(leaf->min_seconds, 0.0);  // unrecorded min reads as 0
}

TEST(Trace, FormatTreeListsSpanNames) {
  { Span span("trace_test.format"); }
  const std::string text = format_trace_tree(trace_snapshot());
  EXPECT_NE(text.find("trace_test.format"), std::string::npos);
}

TEST(Trace, ResetZeroesStatsButKeepsStructure) {
  { Span span("trace_test.reset"); }
  trace_reset();
  const TraceStats tree = trace_snapshot();
  const TraceStats* stats = find_span(tree, "trace_test.reset");
  ASSERT_NE(stats, nullptr);  // node survives
  EXPECT_EQ(stats->count, 0u);
  EXPECT_DOUBLE_EQ(stats->total_seconds, 0.0);
  // Recording works again after the reset.
  { Span span("trace_test.reset"); }
  const TraceStats tree_after = trace_snapshot();
  const TraceStats* after = find_span(tree_after, "trace_test.reset");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->count, 1u);
}

TEST(Trace, ChildrenAreNameSorted) {
  {
    Span outer("trace_test.sorted");
    { Span b("trace_test.sorted_b"); }
    { Span a("trace_test.sorted_a"); }
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* parent = find_span(tree, "trace_test.sorted");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 2u);
  EXPECT_EQ(parent->children[0].name, "trace_test.sorted_a");
  EXPECT_EQ(parent->children[1].name, "trace_test.sorted_b");
}

}  // namespace
}  // namespace misuse

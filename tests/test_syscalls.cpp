#include "synth/syscalls.hpp"

#include <gtest/gtest.h>

#include <set>

namespace misuse::synth {
namespace {

SyscallWorkloadConfig small_config() {
  SyscallWorkloadConfig config;
  config.normal_traces = 400;
  config.hosts = 10;
  config.seed = 1;
  return config;
}

TEST(Syscalls, VocabularyContainsRealSyscallNames) {
  const SyscallWorkload workload(small_config());
  for (const char* name : {"read", "write", "execve", "setuid", "ptrace", "accept", "mmap"}) {
    EXPECT_TRUE(workload.vocab().find(name).has_value()) << name;
  }
  EXPECT_GT(workload.vocab().size(), 100u);
}

TEST(Syscalls, SixProgramArchetypes) {
  const SyscallWorkload workload(small_config());
  EXPECT_EQ(workload.programs().size(), 6u);
}

TEST(Syscalls, GenerateIsDeterministic) {
  const SyscallWorkload workload(small_config());
  const SessionStore a = workload.generate();
  const SessionStore b = workload.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).actions, b.at(i).actions);
  }
}

TEST(Syscalls, NormalTracesHaveProgramLabels) {
  const SyscallWorkload workload(small_config());
  const SessionStore store = workload.generate();
  EXPECT_EQ(store.size(), 400u);
  std::set<int> programs;
  for (const auto& s : store.all()) {
    EXPECT_FALSE(s.injected_misuse);
    ASSERT_GE(s.archetype, 0);
    ASSERT_LT(s.archetype, 6);
    programs.insert(s.archetype);
    EXPECT_GE(s.length(), 2u);
  }
  EXPECT_EQ(programs.size(), 6u);
}

TEST(Syscalls, TracesUseOnlyKnownSyscalls) {
  const SyscallWorkload workload(small_config());
  const SessionStore store = workload.generate();
  for (const auto& s : store.all()) {
    for (int a : s.actions) {
      ASSERT_GE(a, 0);
      ASSERT_LT(static_cast<std::size_t>(a), workload.vocab().size());
    }
  }
}

TEST(Syscalls, AttackTracesAreLabeled) {
  const SyscallWorkload workload(small_config());
  Rng rng(2);
  for (int k = 0; k < static_cast<int>(SyscallAttack::kCount); ++k) {
    const Session s = workload.make_attack(static_cast<SyscallAttack>(k), rng);
    EXPECT_TRUE(s.injected_misuse);
    EXPECT_EQ(s.archetype, -1);
    EXPECT_GE(s.length(), 2u);
  }
}

TEST(Syscalls, BruteForceAttackLoopsOverAuthSyscalls) {
  const SyscallWorkload workload(small_config());
  Rng rng(3);
  const Session s = workload.make_attack(SyscallAttack::kBruteForceLogin, rng);
  const auto setuid = workload.vocab().find("setuid");
  ASSERT_TRUE(setuid.has_value());
  std::size_t setuid_count = 0;
  for (int a : s.actions) {
    if (a == *setuid) ++setuid_count;
  }
  EXPECT_GE(setuid_count, 3u);  // far more setuid attempts than any normal flow
}

TEST(Syscalls, AttackSetCyclesAllKinds) {
  const SyscallWorkload workload(small_config());
  const auto attacks = workload.make_attack_set(12, 7);
  EXPECT_EQ(attacks.size(), 12u);
  for (const auto& s : attacks) EXPECT_TRUE(s.injected_misuse);
}

TEST(Syscalls, AttackFractionMixesIntoGenerate) {
  SyscallWorkloadConfig config = small_config();
  config.attack_fraction = 0.2;
  const SyscallWorkload workload(config);
  const SessionStore store = workload.generate();
  std::size_t attacks = 0;
  for (const auto& s : store.all()) attacks += s.injected_misuse ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(attacks) / static_cast<double>(store.size()), 0.2, 0.06);
}

TEST(Syscalls, AttackNames) {
  EXPECT_STREQ(syscall_attack_name(SyscallAttack::kBruteForceLogin), "brute-force-login");
  EXPECT_STREQ(syscall_attack_name(SyscallAttack::kWebShell), "web-shell");
  EXPECT_STREQ(syscall_attack_name(SyscallAttack::kPrivilegeEscalation), "privilege-escalation");
  EXPECT_STREQ(syscall_attack_name(SyscallAttack::kExfiltration), "exfiltration");
}

}  // namespace
}  // namespace misuse::synth

#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace misuse::nn {
namespace {

// Minimizes f(w) = 0.5 * ||w - target||^2 whose gradient is (w - target).
class Quadratic {
 public:
  explicit Quadratic(float target) : target_(target), param_("w", 2, 2) {
    param_.value.fill(10.0f);
  }

  void fill_grad() {
    for (std::size_t i = 0; i < param_.value.size(); ++i) {
      param_.grad.flat()[i] = param_.value.flat()[i] - target_;
    }
  }

  double loss() const {
    double sum = 0.0;
    for (float v : param_.value.flat()) sum += 0.5 * (v - target_) * (v - target_);
    return sum;
  }

  ParameterList params() { return {&param_}; }

 private:
  float target_;
  Parameter param_;
};

template <typename Opt>
double run_optimizer(Opt& opt, int steps, float target = 3.0f) {
  Quadratic q(target);
  for (int i = 0; i < steps; ++i) {
    q.fill_grad();
    opt.step(q.params());
  }
  return q.loss();
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  Sgd sgd(0.1f);
  EXPECT_LT(run_optimizer(sgd, 200), 1e-6);
}

TEST(Optimizer, SgdWithMomentumConverges) {
  Sgd sgd(0.05f, 0.9f);
  EXPECT_LT(run_optimizer(sgd, 300), 1e-4);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Adam adam(0.1f);
  EXPECT_LT(run_optimizer(adam, 500), 1e-4);
}

TEST(Optimizer, RmsPropConvergesOnQuadratic) {
  RmsProp rms(0.05f);
  EXPECT_LT(run_optimizer(rms, 500), 1e-3);
}

TEST(Optimizer, EachStepDecreasesQuadraticLoss) {
  Quadratic q(0.0f);
  Sgd sgd(0.1f);
  double prev = q.loss();
  for (int i = 0; i < 20; ++i) {
    q.fill_grad();
    sgd.step(q.params());
    const double cur = q.loss();
    ASSERT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Optimizer, LearningRateAccessors) {
  Adam adam(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
  adam.set_learning_rate(0.001f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.001f);
}

TEST(Optimizer, FactoryProducesWorkingOptimizers) {
  for (const auto kind : {OptimizerKind::kSgd, OptimizerKind::kAdam, OptimizerKind::kRmsProp}) {
    auto opt = make_optimizer(kind, 0.05f);
    ASSERT_NE(opt, nullptr);
    EXPECT_LT(run_optimizer(*opt, 800), 1e-2);
  }
}

TEST(Optimizer, ParseNames) {
  EXPECT_EQ(parse_optimizer("adam"), OptimizerKind::kAdam);
  EXPECT_EQ(parse_optimizer("Adam"), OptimizerKind::kAdam);
  EXPECT_EQ(parse_optimizer("SGD"), OptimizerKind::kSgd);
  EXPECT_EQ(parse_optimizer("rmsprop"), OptimizerKind::kRmsProp);
  EXPECT_THROW(parse_optimizer("adagrad"), std::invalid_argument);
}

TEST(Parameter, CountAndZero) {
  Parameter a("a", 2, 3), b("b", 1, 4);
  const ParameterList params = {&a, &b};
  EXPECT_EQ(parameter_count(params), 10u);
  a.grad.fill(1.0f);
  b.grad.fill(2.0f);
  zero_grads(params);
  for (float g : a.grad.flat()) EXPECT_EQ(g, 0.0f);
  for (float g : b.grad.flat()) EXPECT_EQ(g, 0.0f);
}

TEST(Parameter, ClipGradNormScalesDown) {
  Parameter p("p", 1, 4);
  p.grad = Matrix::from_rows(1, 4, {3, 4, 0, 0});  // norm 5
  const ParameterList params = {&p};
  const float pre = clip_grad_norm(params, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(std::sqrt(squared_norm(p.grad.flat())), 1.0f, 1e-5f);
  EXPECT_NEAR(p.grad(0, 0), 0.6f, 1e-5f);
}

TEST(Parameter, ClipGradNormLeavesSmallGradsAlone) {
  Parameter p("p", 1, 2);
  p.grad = Matrix::from_rows(1, 2, {0.3f, 0.4f});  // norm 0.5
  const float pre = clip_grad_norm({&p}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 0.5f);
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.3f);
}

}  // namespace
}  // namespace misuse::nn

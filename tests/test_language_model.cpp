#include "lm/language_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "synth/archetype.hpp"

namespace misuse::lm {
namespace {

// Sessions from a tight workflow grammar: learnable but not trivial.
std::vector<std::vector<int>> grammar_sessions(std::size_t count, std::uint64_t seed) {
  synth::ArchetypeConfig ac;
  ac.name = "grammar";
  ac.pool = {0, 1, 2, 3, 4, 5, 6, 7};
  ac.workflow_size = 6;
  ac.advance_prob = 0.7;
  ac.repeat_prob = 0.1;
  ac.restart_prob = 0.1;
  ac.common_prob = 0.1;
  ac.log_len_mu = 2.5;
  ac.log_len_sigma = 0.5;
  const synth::BehaviorArchetype arch(std::move(ac));
  Rng rng(seed);
  std::vector<std::vector<int>> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(arch.generate(rng));
  return out;
}

std::vector<std::span<const int>> views(const std::vector<std::vector<int>>& sessions) {
  return {sessions.begin(), sessions.end()};
}

LmConfig quick_config() {
  LmConfig config;
  config.vocab = 8;
  config.hidden = 16;
  config.dropout = 0.1f;
  config.learning_rate = 0.01f;
  config.epochs = 10;
  config.patience = 0;
  config.batching.window = 32;
  config.batching.batch_size = 8;
  config.seed = 3;
  return config;
}

TEST(LanguageModel, FitImprovesOverEpochs) {
  const auto train = grammar_sessions(150, 1);
  const auto valid = grammar_sessions(40, 2);
  ActionLanguageModel model(quick_config());
  const auto history = model.fit(views(train), views(valid));
  ASSERT_GE(history.size(), 2u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().valid_accuracy, 0.3);  // grammar is predictable
  EXPECT_LT(history.back().valid_loss, std::log(8.0));
}

TEST(LanguageModel, EvaluateCountsEveryPredictablePosition) {
  const auto sessions = grammar_sessions(30, 3);
  ActionLanguageModel model(quick_config());
  const auto stats = model.evaluate(views(sessions));
  std::size_t expected = 0;
  for (const auto& s : sessions) {
    expected += std::min(s.size(), std::size_t{32}) - 1;
  }
  EXPECT_EQ(stats.predictions, expected);
}

TEST(LanguageModel, EarlyStoppingHaltsTraining) {
  const auto train = grammar_sessions(60, 4);
  const auto valid = grammar_sessions(20, 5);
  LmConfig config = quick_config();
  config.epochs = 60;
  config.patience = 2;
  ActionLanguageModel model(config);
  const auto history = model.fit(views(train), views(valid));
  EXPECT_LT(history.size(), 50u);  // must stop before the epoch cap
}

TEST(LanguageModel, RestoreBestKeepsBestValidationLoss) {
  const auto train = grammar_sessions(60, 21);
  const auto valid = grammar_sessions(20, 22);
  LmConfig config = quick_config();
  config.epochs = 25;
  config.patience = 0;  // run to the end so overfitting can happen
  config.restore_best = true;
  ActionLanguageModel model(config);
  const auto history = model.fit(views(train), views(valid));
  double best = history.front().valid_loss;
  for (const auto& e : history) best = std::min(best, e.valid_loss);
  // Evaluation after fit must match the best epoch, not the last one.
  const auto final_eval = model.evaluate(views(valid));
  EXPECT_NEAR(final_eval.loss, best, 1e-6);
}

TEST(LanguageModel, StackedLayersTrainEndToEnd) {
  const auto train = grammar_sessions(100, 23);
  LmConfig config = quick_config();
  config.layers = 2;
  config.epochs = 8;
  ActionLanguageModel model(config);
  const double before = model.evaluate(views(train)).loss;
  model.fit(views(train), {});
  EXPECT_LT(model.evaluate(views(train)).loss, before);
}

TEST(LanguageModel, WindowedAndFullSequenceBothLearn) {
  const auto train = grammar_sessions(80, 6);
  for (const auto mode : {BatchingMode::kWindowed, BatchingMode::kFullSequence}) {
    LmConfig config = quick_config();
    config.batching.mode = mode;
    config.batching.window = 12;
    config.epochs = 4;
    ActionLanguageModel model(config);
    const auto before = model.evaluate(views(train)).loss;
    model.fit(views(train), {});
    const auto after = model.evaluate(views(train)).loss;
    EXPECT_LT(after, before) << "mode " << static_cast<int>(mode);
  }
}

TEST(LanguageModel, ScoreSessionMatchesEvaluateLoss) {
  const auto sessions = grammar_sessions(20, 7);
  ActionLanguageModel model(quick_config());
  // Average of per-session mean losses vs evaluate's per-position mean
  // won't match exactly (different weighting), but the per-position sums
  // must: compare on a single session.
  const auto& s = sessions[0];
  ASSERT_GE(s.size(), 2u);
  const auto score = model.score_session(s);
  std::vector<std::span<const int>> one = {std::span<const int>(s)};
  const auto stats = model.evaluate(one);
  const double score_total = score.avg_loss() * static_cast<double>(score.losses.size());
  const double eval_total = stats.loss * static_cast<double>(stats.predictions);
  if (s.size() <= 32) {
    EXPECT_EQ(score.losses.size(), stats.predictions);
    EXPECT_NEAR(score_total, eval_total, 1e-3 * eval_total + 1e-6);
  }
}

TEST(LanguageModel, SaveLoadRoundTripsScores) {
  const auto train = grammar_sessions(40, 8);
  ActionLanguageModel model(quick_config());
  model.fit(views(train), {});
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  ActionLanguageModel loaded = ActionLanguageModel::load(r);

  const std::vector<int> probe = {0, 1, 2, 3, 4, 5};
  const auto a = model.score_session(probe);
  const auto b = loaded.score_session(probe);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
  EXPECT_EQ(loaded.config().hidden, model.config().hidden);
  EXPECT_EQ(loaded.config().batching.window, model.config().batching.window);
}

TEST(LanguageModel, GrammarScoresAboveRandomSessions) {
  const auto train = grammar_sessions(200, 9);
  LmConfig config = quick_config();
  config.epochs = 20;
  ActionLanguageModel model(config);
  model.fit(views(train), {});

  Rng rng(10);
  double grammar_like = 0.0, random_like = 0.0;
  const auto probes = grammar_sessions(30, 11);
  for (const auto& s : probes) grammar_like += model.score_session(s).avg_likelihood();
  for (int i = 0; i < 30; ++i) {
    std::vector<int> random_session;
    for (int j = 0; j < 12; ++j) random_session.push_back(static_cast<int>(rng.uniform_index(8)));
    random_like += model.score_session(random_session).avg_likelihood();
  }
  EXPECT_GT(grammar_like / 30.0, random_like / 30.0 * 1.5);
}

TEST(LanguageModel, StreamingStepSumsToOne) {
  ActionLanguageModel model(quick_config());
  auto state = model.make_state();
  const auto probs = model.step(state, 3);
  double sum = 0.0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

}  // namespace
}  // namespace misuse::lm

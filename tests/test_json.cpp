#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace misuse {
namespace {

TEST(Json, EmptyObject) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_object();
    j.end_object();
  }
  EXPECT_EQ(out.str(), "{}");
}

TEST(Json, SimpleMembers) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_object();
    j.member("name", "topic-1");
    j.member("count", 42);
    j.member("weight", 0.5);
    j.member("active", true);
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"name":"topic-1","count":42,"weight":0.5,"active":true})");
}

TEST(Json, NestedArrays) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_array();
    j.begin_array();
    j.value(1);
    j.value(2);
    j.end_array();
    j.begin_array();
    j.end_array();
    j.end_array();
  }
  EXPECT_EQ(out.str(), "[[1,2],[]]");
}

TEST(Json, ObjectInsideArray) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_array();
    j.begin_object();
    j.member("x", 1);
    j.end_object();
    j.begin_object();
    j.member("x", 2);
    j.end_object();
    j.end_array();
  }
  EXPECT_EQ(out.str(), R"([{"x":1},{"x":2}])");
}

TEST(Json, StringEscaping) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.value("a\"b\\c\nd\te");
  }
  EXPECT_EQ(out.str(), R"("a\"b\\c\nd\te")");
}

TEST(Json, ControlCharacterEscaping) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.value(std::string_view("\x01", 1));
  }
  EXPECT_EQ(out.str(), "\"\\u0001\"");
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_array();
    j.value(std::nan(""));
    j.value(1.5);
    j.end_array();
  }
  EXPECT_EQ(out.str(), "[null,1.5]");
}

TEST(Json, NullValue) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_object();
    j.key("missing");
    j.null();
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"missing":null})");
}

TEST(Json, NumberArrayHelper) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_object();
    j.number_array("xs", {1.0, 2.5, 3.0});
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"xs":[1,2.5,3]})");
}

}  // namespace
}  // namespace misuse

#include "lm/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace misuse::lm {
namespace {

std::vector<std::span<const int>> views(const std::vector<std::vector<int>>& sessions) {
  return {sessions.begin(), sessions.end()};
}

TEST(Markov, UntrainedIsUniform) {
  MarkovChainModel model({.vocab = 4, .smoothing = 1.0});
  for (int cur = -1; cur < 4; ++cur) {
    for (int next = 0; next < 4; ++next) {
      EXPECT_NEAR(model.transition_probability(cur, next), 0.25, 1e-12);
    }
  }
}

TEST(Markov, LearnsDeterministicCycle) {
  std::vector<std::vector<int>> sessions(10, {0, 1, 2, 3, 0, 1, 2, 3});
  MarkovChainModel model({.vocab = 4, .smoothing = 0.01});
  model.fit(views(sessions));
  EXPECT_GT(model.transition_probability(0, 1), 0.99);
  EXPECT_GT(model.transition_probability(3, 0), 0.99);
  EXPECT_LT(model.transition_probability(0, 2), 0.01);
  EXPECT_EQ(model.most_likely_next(0), 1);
  EXPECT_EQ(model.most_likely_next(2), 3);
}

TEST(Markov, RowsSumToOne) {
  Rng rng(1);
  std::vector<std::vector<int>> sessions;
  for (int i = 0; i < 30; ++i) {
    std::vector<int> s;
    for (int j = 0; j < 10; ++j) s.push_back(static_cast<int>(rng.uniform_index(6)));
    sessions.push_back(std::move(s));
  }
  MarkovChainModel model({.vocab = 6, .smoothing = 0.1});
  model.fit(views(sessions));
  for (int cur = -1; cur < 6; ++cur) {
    double sum = 0.0;
    for (int next = 0; next < 6; ++next) sum += model.transition_probability(cur, next);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << cur;
  }
}

TEST(Markov, InitialDistributionLearned) {
  std::vector<std::vector<int>> sessions(8, {2, 0, 1});
  MarkovChainModel model({.vocab = 3, .smoothing = 0.01});
  model.fit(views(sessions));
  EXPECT_GT(model.transition_probability(-1, 2), 0.99);
  EXPECT_LT(model.transition_probability(-1, 0), 0.01);
}

TEST(Markov, ScoreSessionMatchesTransitions) {
  std::vector<std::vector<int>> sessions(5, {0, 1, 0, 1});
  MarkovChainModel model({.vocab = 2, .smoothing = 0.5});
  model.fit(views(sessions));
  const std::vector<int> probe = {0, 1, 0};
  const auto score = model.score_session(probe);
  ASSERT_EQ(score.likelihoods.size(), 2u);
  EXPECT_NEAR(score.likelihoods[0], model.transition_probability(0, 1), 1e-12);
  EXPECT_NEAR(score.likelihoods[1], model.transition_probability(1, 0), 1e-12);
  EXPECT_NEAR(score.losses[0], -std::log(score.likelihoods[0]), 1e-12);
  EXPECT_NEAR(score.accuracy, 1.0, 1e-12);
}

TEST(Markov, ShortSessionScoresEmpty) {
  MarkovChainModel model({.vocab = 3, .smoothing = 0.1});
  EXPECT_TRUE(model.score_session(std::vector<int>{1}).likelihoods.empty());
  EXPECT_TRUE(model.score_session(std::vector<int>{}).likelihoods.empty());
}

TEST(Markov, EvaluateAggregates) {
  std::vector<std::vector<int>> train(20, {0, 1, 2, 0, 1, 2});
  MarkovChainModel model({.vocab = 3, .smoothing = 0.01});
  model.fit(views(train));
  std::vector<std::vector<int>> test = {{0, 1, 2}, {1, 2, 0}};
  const auto stats = model.evaluate(views(test));
  EXPECT_EQ(stats.predictions, 4u);
  EXPECT_NEAR(stats.accuracy, 1.0, 1e-12);
  EXPECT_LT(stats.loss, 0.1);
}

TEST(Markov, GrammarBeatsRandomSessions) {
  Rng rng(2);
  std::vector<std::vector<int>> train;
  for (int i = 0; i < 100; ++i) {
    std::vector<int> s;
    int cur = 0;
    for (int j = 0; j < 12; ++j) {
      s.push_back(cur);
      cur = rng.bernoulli(0.8) ? (cur + 1) % 5 : static_cast<int>(rng.uniform_index(5));
    }
    train.push_back(std::move(s));
  }
  MarkovChainModel model({.vocab = 5, .smoothing = 0.1});
  model.fit(views(train));
  const std::vector<int> grammatical = {0, 1, 2, 3, 4, 0, 1};
  std::vector<int> random_session;
  for (int j = 0; j < 7; ++j) random_session.push_back(static_cast<int>(rng.uniform_index(5)));
  EXPECT_GT(model.score_session(grammatical).avg_likelihood(),
            model.score_session(random_session).avg_likelihood());
}

TEST(Markov, SaveLoadRoundTrip) {
  std::vector<std::vector<int>> train(10, {0, 2, 1, 0, 2});
  MarkovChainModel model({.vocab = 3, .smoothing = 0.2});
  model.fit(views(train));
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  const MarkovChainModel loaded = MarkovChainModel::load(r);
  for (int cur = -1; cur < 3; ++cur) {
    for (int next = 0; next < 3; ++next) {
      EXPECT_DOUBLE_EQ(model.transition_probability(cur, next),
                       loaded.transition_probability(cur, next));
    }
  }
}

}  // namespace
}  // namespace misuse::lm

// CRC-32 (IEEE 802.3): check vectors, incremental == one-shot, and the
// corruption-detection property the detector archive and serve WAL rely
// on (any single flipped bit changes the checksum).
#include <gtest/gtest.h>

#include <string>

#include "util/crc32.hpp"

namespace misuse {
namespace {

TEST(Crc32, KnownVectors) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xe8b7be43u);
  EXPECT_EQ(crc32("abc"), 0x352441c2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32 crc;
    crc.update(data.substr(0, split));
    crc.update(data.substr(split));
    EXPECT_EQ(crc.value(), crc32(data)) << "split=" << split;
  }
}

TEST(Crc32, ResetRestartsAccumulation) {
  Crc32 crc;
  crc.update("garbage");
  crc.reset();
  crc.update("123456789");
  EXPECT_EQ(crc.value(), 0xcbf43926u);
}

TEST(Crc32, SingleBitFlipsChangeValue) {
  std::string data(64, '\x42');
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(crc32(corrupt), clean) << "byte=" << byte << " bit=" << bit;
    }
  }
}

}  // namespace
}  // namespace misuse

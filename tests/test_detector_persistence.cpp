// Detector persistence round-trip as used by the serving path
// (misusedet_serve loads an archive saved after training): save -> load
// -> score equivalence, plus SerializeError coverage for truncated
// archives, wrong magic, and unsupported versions.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "nn/infer/dispatch.hpp"
#include "nn/infer/quant.hpp"
#include "synth/portal.hpp"
#include "util/failpoint.hpp"
#include "util/serialize.hpp"

namespace misuse::core {
namespace {

class PersistenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 200;
    pc.users = 40;
    pc.action_count = 50;
    pc.seed = 7;
    store_ = new SessionStore(synth::Portal(pc).generate());
    DetectorConfig dc;
    dc.ensemble.topic_counts = {8, 10};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 3;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    detector_ = new MisuseDetector(MisuseDetector::train(*store_, dc));
    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(out);
    detector_->save(writer);
    archive_ = new std::string(out.str());
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    delete archive_;
    detector_ = nullptr;
    store_ = nullptr;
    archive_ = nullptr;
  }

  static MisuseDetector load_from(const std::string& bytes) {
    std::istringstream in(bytes, std::ios::binary);
    BinaryReader reader(in);
    return MisuseDetector::load(reader);
  }

  static SessionStore* store_;
  static MisuseDetector* detector_;
  static std::string* archive_;
};

SessionStore* PersistenceFixture::store_ = nullptr;
MisuseDetector* PersistenceFixture::detector_ = nullptr;
std::string* PersistenceFixture::archive_ = nullptr;

TEST_F(PersistenceFixture, SaveLoadPredictEquivalence) {
  const MisuseDetector loaded = load_from(*archive_);
  ASSERT_EQ(loaded.cluster_count(), detector_->cluster_count());
  EXPECT_EQ(loaded.vocab().names(), detector_->vocab().names());
  std::size_t checked = 0;
  for (std::size_t i = 0; i < store_->size() && checked < 10; ++i) {
    if (store_->at(i).length() < 2) continue;
    ++checked;
    const auto a = detector_->predict(store_->at(i).view());
    const auto b = loaded.predict(store_->at(i).view());
    EXPECT_EQ(a.cluster, b.cluster);
    EXPECT_EQ(a.score.likelihoods, b.score.likelihoods);  // bit-exact
    EXPECT_EQ(a.score.losses, b.score.losses);
    EXPECT_EQ(a.score.accuracy, b.score.accuracy);
  }
  EXPECT_EQ(checked, 10u);
}

TEST_F(PersistenceFixture, SaveLoadOnlineMonitorEquivalence) {
  // The server-side regime: the loaded archive must drive OnlineMonitor
  // bit-identically to the in-memory detector.
  const MisuseDetector loaded = load_from(*archive_);
  const MonitorConfig config;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() < 4) continue;
    OnlineMonitor original(*detector_, config);
    OnlineMonitor reloaded(loaded, config);
    for (const int action : store_->at(i).view()) {
      const auto a = original.observe(action);
      const auto b = reloaded.observe(action);
      EXPECT_EQ(a.ocsvm_scores, b.ocsvm_scores);
      EXPECT_EQ(a.cluster_voted, b.cluster_voted);
      EXPECT_EQ(a.likelihood_voted, b.likelihood_voted);
      EXPECT_EQ(a.alarm, b.alarm);
    }
    break;  // one full session suffices; predict covers breadth
  }
}

TEST_F(PersistenceFixture, TruncatedArchiveThrows) {
  // Cutting the archive anywhere must throw SerializeError, never crash
  // or return a half-initialized detector.
  for (const double fraction : {0.0, 0.1, 0.5, 0.9}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(archive_->size()) * fraction);
    EXPECT_THROW((void)load_from(archive_->substr(0, cut)), SerializeError) << "cut=" << cut;
  }
  EXPECT_THROW((void)load_from(archive_->substr(0, archive_->size() - 1)), SerializeError);
}

TEST_F(PersistenceFixture, WrongMagicThrows) {
  std::string corrupt = *archive_;
  corrupt[0] = static_cast<char>(corrupt[0] ^ 0x5a);
  EXPECT_THROW((void)load_from(corrupt), SerializeError);
}

TEST_F(PersistenceFixture, WrongVersionThrows) {
  // Bytes 4..8 hold the archive version (little-endian, after the magic).
  std::string corrupt = *archive_;
  const std::uint32_t bogus = 9999;
  std::memcpy(corrupt.data() + 4, &bogus, sizeof(bogus));
  EXPECT_THROW((void)load_from(corrupt), SerializeError);
}

TEST_F(PersistenceFixture, GarbageArchiveThrows) {
  EXPECT_THROW((void)load_from(std::string(256, '\x7f')), SerializeError);
}

TEST_F(PersistenceFixture, LoadErrorsNameTheFailingSection) {
  // "unexpected end of stream" alone is useless at 3am; the error must
  // say *which* archive section broke.
  for (const double fraction : {0.0, 0.1, 0.5, 0.9}) {
    const auto cut = static_cast<std::size_t>(static_cast<double>(archive_->size()) * fraction);
    try {
      (void)load_from(archive_->substr(0, cut));
      FAIL() << "truncated archive loaded at cut=" << cut;
    } catch (const SerializeError& e) {
      EXPECT_NE(std::string(e.what()).find("section "), std::string::npos)
          << "cut=" << cut << ": " << e.what();
    }
  }
}

TEST_F(PersistenceFixture, LoadFileErrorsCarryThePath) {
  const std::string path = ::testing::TempDir() + "misusedet_persistence_truncated.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << archive_->substr(0, archive_->size() / 2);
  }
  try {
    (void)MisuseDetector::load_file(path);
    FAIL() << "truncated archive file loaded";
  } catch (const SerializeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("section "), std::string::npos) << what;
  }

  const std::string missing = ::testing::TempDir() + "misusedet_no_such_archive.bin";
  try {
    (void)MisuseDetector::load_file(missing);
    FAIL() << "missing archive file loaded";
  } catch (const SerializeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(missing), std::string::npos) << what;
    EXPECT_NE(what.find("cannot open file"), std::string::npos) << what;
  }
}

TEST_F(PersistenceFixture, HeaderCorruptionFailsTheFileCrc) {
  // A flip outside the per-cluster model sections (here: in the
  // vocabulary block right after magic+version) must be caught — by the
  // section parse if it lands on a length, else by the whole-file CRC
  // footer — never silently accepted.
  for (const std::size_t offset : {9u, 12u, 16u, 24u}) {
    std::string corrupt = *archive_;
    ASSERT_LT(offset, corrupt.size());
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    EXPECT_THROW((void)load_from(corrupt), SerializeError) << "offset=" << offset;
  }
}

TEST_F(PersistenceFixture, SingleByteCorruptionNeverCrashesAndNeverGoesUnnoticed) {
  // Sweep single-byte flips across the archive. Every flip must either
  // throw SerializeError or load a detector that still predicts; a flip
  // inside an LSTM section specifically must surface as a degraded
  // cluster, not silent model corruption.
  std::span<const int> probe;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() >= 4) {
      probe = store_->at(i).view();
      break;
    }
  }
  ASSERT_FALSE(probe.empty());
  std::size_t loaded_degraded = 0;
  std::size_t threw = 0;
  for (std::size_t step = 0; step < 24; ++step) {
    const std::size_t offset = archive_->size() / 24 * step + 7;
    if (offset >= archive_->size()) break;
    std::string corrupt = *archive_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    try {
      const MisuseDetector loaded = load_from(corrupt);
      // The flip landed inside a model section: the archive loads in
      // degraded form (or with a dead fallback) and must still score.
      if (loaded.degraded_cluster_count() > 0) ++loaded_degraded;
      (void)loaded.predict(probe);
    } catch (const SerializeError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0u) << "flips outside model sections must fail the file CRC";
  // The archive is dominated by LSTM weights, so the sweep is expected to
  // hit at least one LSTM section.
  EXPECT_GT(loaded_degraded, 0u) << "no flip produced a degraded load";
}

TEST_F(PersistenceFixture, InjectedLstmCorruptionDegradesToMarkovFallback) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // Force the first cluster's LSTM section to read as corrupt: the
  // detector must come up degraded and route that cluster's scoring
  // through the Markov fallback instead of aborting the load.
  failpoints::configure("detector.load.lstm=nth:1");
  const MisuseDetector degraded = load_from(*archive_);
  failpoints::clear();
  ASSERT_EQ(degraded.degraded_cluster_count(), 1u);
  EXPECT_TRUE(degraded.cluster_degraded(0));
  EXPECT_EQ(degraded.cluster_count(), detector_->cluster_count());

  const MonitorConfig config;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() < 4) continue;
    OnlineMonitor monitor(degraded, config);
    SessionAccumulator acc;
    bool saw_degraded_step = false;
    for (const int action : store_->at(i).view()) {
      const auto step = monitor.observe(action);
      // The per-step flag is exactly "the voted cluster runs on the
      // Markov fallback".
      EXPECT_EQ(step.degraded, degraded.cluster_degraded(step.cluster_voted));
      saw_degraded_step = saw_degraded_step || step.degraded;
      acc.add(step);
    }
    EXPECT_EQ(acc.report().degraded, saw_degraded_step);
    break;
  }
}

// --- archive v3: quantized weight sections -----------------------------

// The quantized payload begins with its "IMQT" magic; locating it in the
// raw archive gives a byte offset inside the (CRC-protected) quant
// section without hard-coding the layout of everything before it.
std::size_t first_quant_payload(const std::string& archive) {
  const std::size_t at = archive.find("IMQT");
  EXPECT_NE(at, std::string::npos) << "no quantized section in archive";
  return at;
}

std::string save_quantized(const MisuseDetector& detector, nn::infer::QuantKind kind) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  DetectorSaveOptions options;
  options.quant = kind;
  detector.save(writer, options);
  return out.str();
}

struct QuantEnabledGuard {
  bool saved = nn::infer::quant_enabled();
  ~QuantEnabledGuard() { nn::infer::set_quant_enabled(saved); }
};

TEST_F(PersistenceFixture, QuantizedArchiveRoundTripAttachesAllClusters) {
  QuantEnabledGuard guard;
  nn::infer::set_quant_enabled(true);
  const MisuseDetector loaded = load_from(save_quantized(*detector_, nn::infer::QuantKind::kInt8));
  EXPECT_EQ(loaded.quant_degraded_count(), 0u);
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    EXPECT_TRUE(loaded.cluster_quantized(c)) << "cluster " << c;
  }
  // kFloat precision ignores the quantized weights entirely, so a monitor
  // over the quantized archive must match the float archive bit for bit.
  const MisuseDetector float_loaded = load_from(*archive_);
  const MonitorConfig config;
  OnlineMonitor quant_monitor(loaded, config, MisuseDetector::ScoringPrecision::kFloat);
  OnlineMonitor float_monitor(float_loaded, config);
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() < 4) continue;
    for (const int action : store_->at(i).view()) {
      const auto a = quant_monitor.observe(action);
      const auto b = float_monitor.observe(action);
      EXPECT_EQ(a.likelihood_voted, b.likelihood_voted);
      EXPECT_EQ(a.alarm, b.alarm);
    }
    break;
  }
}

TEST_F(PersistenceFixture, CorruptQuantSectionFallsBackToFloatWithoutCrashing) {
  QuantEnabledGuard guard;
  nn::infer::set_quant_enabled(true);
  std::string archive = save_quantized(*detector_, nn::infer::QuantKind::kInt8);
  const std::size_t payload = first_quant_payload(archive);
  ASSERT_LT(payload + 20, archive.size());
  archive[payload + 20] ^= 0x40;  // bit-rot inside the quant payload

  const MisuseDetector loaded = load_from(archive);  // must not throw
  EXPECT_EQ(loaded.quant_degraded_count(), 1u);
  // Exactly one cluster lost its quantized weights; it must flag degraded
  // quant, serve floats, and score bit-identically to the float archive.
  const MisuseDetector float_loaded = load_from(*archive_);
  std::size_t degraded_cluster = loaded.cluster_count();
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    if (loaded.cluster_quant_degraded(c)) {
      degraded_cluster = c;
      EXPECT_FALSE(loaded.cluster_quantized(c));
    }
  }
  ASSERT_LT(degraded_cluster, loaded.cluster_count());
  std::span<const int> probe;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() >= 4) {
      probe = store_->at(i).view();
      break;
    }
  }
  ASSERT_FALSE(probe.empty());
  auto corrupt_state = loaded.make_cluster_state(degraded_cluster);
  auto float_state = float_loaded.make_cluster_state(degraded_cluster);
  std::vector<float> corrupt_probs, float_probs;
  for (const int action : probe) {
    loaded.step_cluster_into(degraded_cluster, corrupt_state, action, corrupt_probs);
    float_loaded.step_cluster_into(degraded_cluster, float_state, action, float_probs);
    EXPECT_EQ(corrupt_probs, float_probs);  // bit-exact float fallback
  }
}

TEST_F(PersistenceFixture, TruncationInsideQuantSectionThrows) {
  QuantEnabledGuard guard;
  nn::infer::set_quant_enabled(true);
  std::string archive = save_quantized(*detector_, nn::infer::QuantKind::kFp16);
  const std::size_t payload = first_quant_payload(archive);
  archive.resize(payload + 8);  // structural damage, not bit-rot
  EXPECT_THROW((void)load_from(archive), SerializeError);
}

TEST_F(PersistenceFixture, V3ArchiveLoadsWithQuantizationDisabled) {
  QuantEnabledGuard guard;
  nn::infer::set_quant_enabled(false);
  const MisuseDetector loaded = load_from(save_quantized(*detector_, nn::infer::QuantKind::kInt8));
  // Disabled != degraded: the section is intact, just unused.
  EXPECT_EQ(loaded.quant_degraded_count(), 0u);
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    EXPECT_FALSE(loaded.cluster_quantized(c));
  }
  // With the quantized weights ignored, scoring is the float path — bit-
  // identical to the unquantized archive.
  const MisuseDetector float_loaded = load_from(*archive_);
  const MonitorConfig config;
  OnlineMonitor a(loaded, config);
  OnlineMonitor b(float_loaded, config);
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() < 4) continue;
    for (const int action : store_->at(i).view()) {
      const auto ra = a.observe(action);
      const auto rb = b.observe(action);
      EXPECT_EQ(ra.likelihood_voted, rb.likelihood_voted);
      EXPECT_EQ(ra.alarm, rb.alarm);
    }
    break;
  }
}

TEST_F(PersistenceFixture, QuantLoadFailpointDegradesEveryCluster) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  QuantEnabledGuard guard;
  nn::infer::set_quant_enabled(true);
  const std::string archive = save_quantized(*detector_, nn::infer::QuantKind::kInt8);
  failpoints::configure("detector.load.quant=always");
  const MisuseDetector loaded = load_from(archive);
  failpoints::clear();
  EXPECT_EQ(loaded.quant_degraded_count(), loaded.cluster_count());
  for (std::size_t c = 0; c < loaded.cluster_count(); ++c) {
    EXPECT_FALSE(loaded.cluster_quantized(c));
  }
  // Still serves — from the float weights, not the fallback chain.
  EXPECT_EQ(loaded.degraded_cluster_count(), 0u);
}

TEST_F(PersistenceFixture, AllLstmSectionsCorruptStillServesFromMarkov) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  failpoints::configure("detector.load.lstm=always");
  const MisuseDetector degraded = load_from(*archive_);
  failpoints::clear();
  EXPECT_EQ(degraded.degraded_cluster_count(), degraded.cluster_count());
  std::span<const int> probe;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).length() >= 4) {
      probe = store_->at(i).view();
      break;
    }
  }
  ASSERT_FALSE(probe.empty());
  const auto verdict = degraded.predict(probe);
  EXPECT_LT(verdict.cluster, degraded.cluster_count());
  EXPECT_EQ(verdict.score.likelihoods.size(), probe.size() - 1);
}

}  // namespace
}  // namespace misuse::core

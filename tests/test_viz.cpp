#include "viz/interface.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace misuse::viz {
namespace {

struct VizFixture {
  topics::LdaEnsemble ensemble;
  ActionVocab vocab;

  static VizFixture make(std::uint64_t seed = 1) {
    Rng rng(seed);
    std::vector<std::vector<int>> docs;
    for (std::size_t g = 0; g < 3; ++g) {
      for (std::size_t d = 0; d < 25; ++d) {
        std::vector<int> doc;
        const std::size_t len = 6 + rng.uniform_index(6);
        for (std::size_t i = 0; i < len; ++i) {
          doc.push_back(static_cast<int>(g * 4 + rng.uniform_index(4)));
        }
        docs.push_back(std::move(doc));
      }
    }
    topics::EnsembleConfig ec;
    ec.topic_counts = {3, 4};
    ec.iterations = 40;
    ActionVocab vocab;
    for (int i = 0; i < 12; ++i) vocab.intern("Action" + std::to_string(i));
    return VizFixture{topics::LdaEnsemble::fit(docs, 12, ec), std::move(vocab)};
  }
};

tsne::TsneConfig quick_tsne() {
  tsne::TsneConfig config;
  config.iterations = 60;
  config.perplexity = 3.0;
  return config;
}

TEST(Viz, ProjectionHasOnePointPerTopic) {
  auto fixture = VizFixture::make();
  const auto view = build_projection_view(fixture.ensemble, quick_tsne());
  EXPECT_EQ(view.coordinates.rows(), fixture.ensemble.topic_count());
  EXPECT_EQ(view.coordinates.cols(), 2u);
  EXPECT_EQ(view.runs.size(), fixture.ensemble.topic_count());
  EXPECT_GE(view.final_kl, 0.0);
}

TEST(Viz, MatrixViewThresholdFiltersCells) {
  auto fixture = VizFixture::make();
  const auto all = build_matrix_view(fixture.ensemble, 0.0f);
  const auto sparse = build_matrix_view(fixture.ensemble, 0.2f);
  EXPECT_GT(all.cells.size(), sparse.cells.size());
  for (const auto& cell : sparse.cells) {
    EXPECT_GE(cell.probability, 0.2f);
    EXPECT_LT(cell.topic, fixture.ensemble.topic_count());
    EXPECT_LT(cell.action, fixture.ensemble.vocab());
  }
}

TEST(Viz, MatrixViewCoversEveryTopicAtZeroThreshold) {
  auto fixture = VizFixture::make();
  const auto view = build_matrix_view(fixture.ensemble, 0.0f);
  std::vector<bool> seen(fixture.ensemble.topic_count(), false);
  for (const auto& cell : view.cells) seen[cell.topic] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Viz, ChordViewLinksShareActions) {
  auto fixture = VizFixture::make();
  const std::vector<std::size_t> selection = {0, 1, 2, 3};
  const auto view = build_chord_view(fixture.ensemble, selection, 5);
  EXPECT_EQ(view.fan_sizes.size(), 4u);
  for (std::size_t fan : view.fan_sizes) EXPECT_LE(fan, 5u);
  for (const auto& link : view.links) {
    EXPECT_LT(link.a, selection.size());
    EXPECT_LT(link.b, selection.size());
    EXPECT_GT(link.shared_actions, 0u);
    EXPECT_LE(link.shared_actions, 5u);
  }
}

TEST(Viz, JsonExportIsWellFormedish) {
  auto fixture = VizFixture::make();
  const auto projection = build_projection_view(fixture.ensemble, quick_tsne());
  const auto matrix = build_matrix_view(fixture.ensemble, 0.1f);
  const auto chord = build_chord_view(fixture.ensemble, {0, 1, 2}, 5);
  std::ostringstream out;
  export_interface_json(projection, matrix, chord, fixture.vocab, out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"projection\""), std::string::npos);
  EXPECT_NE(json.find("\"topic_action_matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"chord\""), std::string::npos);
  EXPECT_NE(json.find("Action0"), std::string::npos);
  // Balanced braces (writer asserts structure, this is a belt check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Viz, SessionMapSamplesAndTagsSessions) {
  auto fixture = VizFixture::make();
  std::vector<std::size_t> clusters(fixture.ensemble.documents());
  for (std::size_t i = 0; i < clusters.size(); ++i) clusters[i] = i % 3;
  const auto map = build_session_map(fixture.ensemble, clusters, 30, quick_tsne(), 7);
  EXPECT_EQ(map.sessions.size(), 30u);
  EXPECT_EQ(map.coordinates.rows(), 30u);
  EXPECT_EQ(map.clusters.size(), 30u);
  for (std::size_t i = 0; i < map.sessions.size(); ++i) {
    EXPECT_EQ(map.clusters[i], map.sessions[i] % 3);
    EXPECT_TRUE(std::isfinite(map.coordinates(i, 0)));
    EXPECT_TRUE(std::isfinite(map.coordinates(i, 1)));
  }
}

TEST(Viz, SessionMapSampleCappedByPopulation) {
  auto fixture = VizFixture::make();
  std::vector<std::size_t> clusters(fixture.ensemble.documents(), 0);
  const auto map =
      build_session_map(fixture.ensemble, clusters, 10000, quick_tsne(), 7);
  EXPECT_EQ(map.sessions.size(), fixture.ensemble.documents());
}

TEST(Viz, SessionMapAsciiUsesClusterDigits) {
  auto fixture = VizFixture::make();
  std::vector<std::size_t> clusters(fixture.ensemble.documents());
  for (std::size_t i = 0; i < clusters.size(); ++i) clusters[i] = i % 3;
  const auto map = build_session_map(fixture.ensemble, clusters, 40, quick_tsne(), 8);
  const std::string art = render_session_map_ascii(map, 40, 14);
  EXPECT_NE(art.find('0'), std::string::npos);
  EXPECT_NE(art.find('1'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(Viz, AsciiProjectionHasFrameAndMarks) {
  auto fixture = VizFixture::make();
  const auto view = build_projection_view(fixture.ensemble, quick_tsne());
  const std::string art = render_projection_ascii(view, 40, 12);
  EXPECT_NE(art.find('+'), std::string::npos);
  // At least one topic mark (letters a/b for runs 0/1).
  EXPECT_TRUE(art.find('a') != std::string::npos || art.find('b') != std::string::npos);
}

TEST(Viz, AsciiMatrixNamesActions) {
  auto fixture = VizFixture::make();
  const auto view = build_matrix_view(fixture.ensemble, 0.05f);
  const std::string art =
      render_matrix_ascii(view, fixture.vocab, fixture.ensemble, 5, 3);
  EXPECT_NE(art.find("topic 0"), std::string::npos);
  EXPECT_NE(art.find("Action"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Viz, AsciiChordShowsLinks) {
  auto fixture = VizFixture::make();
  const auto view = build_chord_view(fixture.ensemble, {0, 1, 2, 3, 4}, 6);
  const std::string art = render_chord_ascii(view);
  EXPECT_NE(art.find("chord fans"), std::string::npos);
  EXPECT_NE(art.find("links"), std::string::npos);
}

}  // namespace
}  // namespace misuse::viz

#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include "synth/portal.hpp"

namespace misuse::core {
namespace {

class CalibrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 600;
    pc.users = 60;
    pc.action_count = 80;
    pc.seed = 77;
    portal_ = new synth::Portal(pc);
    store_ = new SessionStore(portal_->generate());
    DetectorConfig config;
    config.ensemble.topic_counts = {6};
    config.ensemble.iterations = 30;
    config.expert.target_clusters = 5;
    config.expert.min_cluster_sessions = 10;
    config.lm.hidden = 16;
    config.lm.learning_rate = 0.01f;
    config.lm.epochs = 20;
    config.lm.patience = 0;
    config.lm.batching.batch_size = 8;
    config.lm.batching.window = 32;
    config.seed = 5;
    detector_ = new MisuseDetector(MisuseDetector::train(*store_, config));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    delete portal_;
  }
  static synth::Portal* portal_;
  static SessionStore* store_;
  static MisuseDetector* detector_;
};
synth::Portal* CalibrationFixture::portal_ = nullptr;
SessionStore* CalibrationFixture::store_ = nullptr;
MisuseDetector* CalibrationFixture::detector_ = nullptr;

TEST_F(CalibrationFixture, RealizedRateWithinBudget) {
  for (const double budget : {0.0, 0.05, 0.2}) {
    const auto result = calibrate_on_validation_splits(*detector_, *store_, budget);
    EXPECT_GT(result.calibration_sessions, 0u);
    EXPECT_LE(result.session_false_alarm_rate, budget + 1e-9) << "budget " << budget;
    EXPECT_GE(result.alarm_likelihood, 0.0);
  }
}

TEST_F(CalibrationFixture, LargerBudgetGivesHigherThreshold) {
  const auto tight = calibrate_on_validation_splits(*detector_, *store_, 0.01);
  const auto loose = calibrate_on_validation_splits(*detector_, *store_, 0.3);
  EXPECT_LE(tight.alarm_likelihood, loose.alarm_likelihood);
  EXPECT_LE(tight.session_false_alarm_rate, loose.session_false_alarm_rate);
}

TEST_F(CalibrationFixture, ZeroBudgetMeansNoCalibrationAlarms) {
  const auto result = calibrate_on_validation_splits(*detector_, *store_, 0.0);
  // The threshold sits below every calibration session's minimum.
  EXPECT_DOUBLE_EQ(result.session_false_alarm_rate, 0.0);
}

TEST_F(CalibrationFixture, CalibratedThresholdStillCatchesRandomSessions) {
  const auto result = calibrate_on_validation_splits(*detector_, *store_, 0.05);
  const SessionStore random = portal_->generate_random_sessions(40, 99);
  std::size_t caught = 0;
  for (const auto& s : random.all()) {
    const auto prediction = detector_->predict(s.view());
    if (prediction.score.likelihoods.empty()) continue;
    const double min_like = *std::min_element(prediction.score.likelihoods.begin(),
                                              prediction.score.likelihoods.end());
    if (min_like < result.alarm_likelihood) ++caught;
  }
  EXPECT_GT(caught, random.size() * 8 / 10);
}

TEST(Calibration, EmptyInputIsGraceful) {
  // A detector is needed for predict(); use a store with no usable
  // sessions by passing an empty index list against the fixture-free
  // path: calibrate_alarm_threshold with no sessions.
  ActionVocab vocab;
  vocab.intern("A");
  SessionStore store(std::move(vocab));
  // No detector call happens when the index list is empty, so a null
  // detector reference cannot be constructed here; instead verify via the
  // fixture-free contract that zero sessions yield a zero result through
  // the public API with an empty span. (Constructing a detector is
  // expensive; reuse the smallest possible corpus.)
  synth::PortalConfig pc;
  pc.sessions = 120;
  pc.users = 10;
  pc.action_count = 60;
  pc.seed = 3;
  const synth::Portal portal(pc);
  const SessionStore corpus = portal.generate();
  DetectorConfig config;
  config.ensemble.topic_counts = {4};
  config.ensemble.iterations = 15;
  config.expert.target_clusters = 3;
  config.expert.min_cluster_sessions = 5;
  config.lm.hidden = 8;
  config.lm.epochs = 2;
  config.lm.patience = 0;
  const MisuseDetector detector = MisuseDetector::train(corpus, config);
  const auto result = calibrate_alarm_threshold(detector, corpus, {}, 0.1);
  EXPECT_EQ(result.calibration_sessions, 0u);
  EXPECT_DOUBLE_EQ(result.alarm_likelihood, 0.0);
}

}  // namespace
}  // namespace misuse::core

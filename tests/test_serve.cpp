// Streaming scoring server: wire-format parsing, shard determinism
// (bit-identical to the offline OnlineMonitor), eviction policies,
// backpressure, graceful shutdown, and the serve metrics panel.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/event.hpp"
#include "serve/metrics.hpp"
#include "synth/portal.hpp"
#include "util/failpoint.hpp"
#include "util/line_io.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"

namespace misuse::serve {
namespace {

TEST(ServeEvent, ParsesValidEvent) {
  Event event;
  std::string error;
  ASSERT_TRUE(parse_event(
      R"({"user_id": "u7", "session_id": "s1", "action": "ActionLogin", "timestamp": 12.5})",
      event, error))
      << error;
  EXPECT_EQ(event.user_id, "u7");
  EXPECT_EQ(event.session_id, "s1");
  EXPECT_EQ(event.action, "ActionLogin");
  EXPECT_TRUE(event.has_timestamp);
  EXPECT_EQ(event.timestamp, 12.5);
}

TEST(ServeEvent, NumericIdsAndMissingTimestamp) {
  Event event;
  std::string error;
  ASSERT_TRUE(parse_event(R"({"user_id": 17, "session_id": 3, "action": "5"})", event, error))
      << error;
  EXPECT_EQ(event.user_id, "17");
  EXPECT_EQ(event.session_id, "3");
  EXPECT_EQ(event.action, "5");
  EXPECT_FALSE(event.has_timestamp);
}

TEST(ServeEvent, RejectsMissingFields) {
  Event event;
  std::string error;
  EXPECT_FALSE(parse_event(R"({"session_id": "s", "action": "a"})", event, error));
  EXPECT_FALSE(parse_event(R"({"user_id": "u", "action": "a"})", event, error));
  EXPECT_FALSE(parse_event(R"({"user_id": "u", "session_id": "s"})", event, error));
  EXPECT_FALSE(parse_event("garbage", event, error));
}

TEST(ServeEvent, SessionKeySeparatesUserAndSession) {
  Event a;
  a.user_id = "a";
  a.session_id = "b:c";
  Event b;
  b.user_id = "a:b";
  b.session_id = "c";
  EXPECT_NE(session_key(a), session_key(b));
}

TEST(ServeEvent, ShardHashIsStableFnv1a) {
  // Pinned FNV-1a vectors: shard routing must not drift across platforms
  // or standard libraries (std::hash would).
  EXPECT_EQ(session_shard_hash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(session_shard_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(session_shard_hash("abc"), session_shard_hash("abc"));
  EXPECT_NE(session_shard_hash("abc"), session_shard_hash("abd"));
}

// ---------------------------------------------------------------------------
// Server tests against a small trained detector (trained once per suite).

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 220;
    pc.users = 40;
    pc.action_count = 60;
    pc.seed = 42;
    portal_ = new synth::Portal(pc);
    store_ = new SessionStore(portal_->generate());
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {10, 13};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 4;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    detector_ = new core::MisuseDetector(core::MisuseDetector::train(*store_, dc));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    delete portal_;
    detector_ = nullptr;
    store_ = nullptr;
    portal_ = nullptr;
  }

  /// The first `count` stored sessions with >= 2 actions.
  static std::vector<std::span<const int>> pick_sessions(std::size_t count) {
    std::vector<std::span<const int>> picked;
    for (std::size_t i = 0; i < store_->size() && picked.size() < count; ++i) {
      if (store_->at(i).length() >= 2 && store_->at(i).length() <= 40) {
        picked.push_back(store_->at(i).view());
      }
    }
    return picked;
  }

  /// Interleaves the sessions round-robin into a timestamped event trace
  /// (actions sent by name, one distinct session id per input session).
  /// `id_offset` shifts the generated user/session ids so two traces can
  /// coexist in one server without colliding.
  static std::vector<Event> interleave(const std::vector<std::span<const int>>& sessions,
                                       std::size_t id_offset = 0) {
    std::vector<Event> events;
    std::vector<std::size_t> cursor(sessions.size(), 0);
    double t = 0.0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (cursor[s] >= sessions[s].size()) continue;
        Event e;
        e.user_id = "u" + std::to_string((id_offset + s) % 5);
        e.session_id = "s" + std::to_string(id_offset + s);
        e.action = detector_->vocab().name(sessions[s][cursor[s]]);
        e.timestamp = t;
        e.has_timestamp = true;
        t += 1.0;
        ++cursor[s];
        events.push_back(std::move(e));
        progressed = true;
      }
    }
    return events;
  }

  /// A retrained detector over the *same* store (same vocabulary, same
  /// fingerprint, different weights): the compatible hot-swap candidate.
  /// Trained lazily — only lifecycle tests pay for it.
  static const core::MisuseDetector& detector_v2() {
    static const core::MisuseDetector v2 = [] {
      core::DetectorConfig dc;
      dc.ensemble.topic_counts = {10, 13};
      dc.ensemble.iterations = 8;
      dc.expert.target_clusters = 4;
      dc.expert.min_cluster_sessions = 5;
      dc.lm.hidden = 10;  // different capacity => different weights
      dc.lm.epochs = 1;
      dc.lm.patience = 0;
      return core::MisuseDetector::train(*store_, dc);
    }();
    return v2;
  }

  /// A detector over a different synthetic world (different action
  /// vocabulary => different fingerprint): the incompatible candidate.
  static const core::MisuseDetector& detector_alt() {
    static const core::MisuseDetector alt = [] {
      synth::PortalConfig pc;
      pc.sessions = 120;
      pc.users = 20;
      pc.action_count = 35;
      pc.seed = 9;
      SessionStore store(synth::Portal(pc).generate());
      core::DetectorConfig dc;
      dc.ensemble.topic_counts = {6};
      dc.ensemble.iterations = 6;
      dc.expert.target_clusters = 2;
      dc.expert.min_cluster_sessions = 5;
      dc.lm.hidden = 8;
      dc.lm.epochs = 1;
      dc.lm.patience = 0;
      return core::MisuseDetector::train(store, dc);
    }();
    return alt;
  }

  /// Non-owning versioned handle over a fixture-owned detector.
  static ModelHandle versioned(const core::MisuseDetector& detector, std::string version) {
    ModelHandle handle = ModelHandle::borrowed(detector);
    handle.version = std::move(version);
    return handle;
  }

  static synth::Portal* portal_;
  static SessionStore* store_;
  static core::MisuseDetector* detector_;
};

synth::Portal* ServeFixture::portal_ = nullptr;
SessionStore* ServeFixture::store_ = nullptr;
core::MisuseDetector* ServeFixture::detector_ = nullptr;

/// Collects StepResults per session id, thread-safely.
struct StepCollector {
  std::mutex mutex;
  std::map<std::string, std::vector<core::OnlineMonitor::StepResult>> by_session;

  StepObserver observer() {
    return [this](const Event& event, const core::OnlineMonitor::StepResult& step) {
      std::lock_guard<std::mutex> lock(mutex);
      by_session[event.session_id].push_back(step);
    };
  }
};

/// Collects session reports keyed by session id.
struct ReportCollector {
  std::mutex mutex;
  std::map<std::string, std::pair<ReportReason, core::SessionMonitorReport>> by_session;

  ReportObserver observer() {
    return [this](std::string_view, std::string_view session_id, ReportReason reason,
                  const core::SessionMonitorReport& report) {
      std::lock_guard<std::mutex> lock(mutex);
      by_session[std::string(session_id)] = {reason, report};
    };
  }
};

void expect_steps_bit_identical(const core::OnlineMonitor::StepResult& got,
                                const core::OnlineMonitor::StepResult& want) {
  EXPECT_EQ(got.step, want.step);
  EXPECT_EQ(got.ocsvm_scores, want.ocsvm_scores);
  EXPECT_EQ(got.cluster_argmax, want.cluster_argmax);
  EXPECT_EQ(got.cluster_voted, want.cluster_voted);
  EXPECT_EQ(got.likelihood_argmax, want.likelihood_argmax);  // bit-exact double compare
  EXPECT_EQ(got.likelihood_voted, want.likelihood_voted);
  EXPECT_EQ(got.alarm, want.alarm);
  EXPECT_EQ(got.trend_alarm, want.trend_alarm);
}

// The acceptance gate: an interleaved multi-session trace pushed through
// the sharded, queued, pool-driven server scores exactly like replaying
// each session through a standalone OnlineMonitor.
TEST_F(ServeFixture, ServerMatchesOfflineMonitorBitIdentically) {
  const auto sessions = pick_sessions(12);
  ASSERT_GE(sessions.size(), 8u);
  const auto events = interleave(sessions);

  const std::size_t previous_threads = global_thread_count();
  set_global_threads(4);

  ServeConfig config;
  config.shards = 3;
  config.queue_capacity = 16;  // small: forces mid-stream pumps
  config.backpressure = BackpressurePolicy::kBlock;
  config.idle_ttl_seconds = 1e9;
  ScoringServer server(*detector_, config);
  StepCollector steps;
  ReportCollector reports;
  server.set_step_observer(steps.observer());
  server.set_report_observer(reports.observer());

  std::vector<OutputRecord> out;
  for (const Event& event : events) {
    while (server.enqueue(event, out) == ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
    }
  }
  server.shutdown(out);
  set_global_threads(previous_threads);

  // Offline reference: sequential replay, one monitor per session.
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const std::string sid = "s" + std::to_string(s);
    ASSERT_TRUE(steps.by_session.count(sid)) << sid;
    const auto& got = steps.by_session[sid];
    ASSERT_EQ(got.size(), sessions[s].size());
    core::OnlineMonitor monitor(*detector_, config.monitor);
    core::SessionAccumulator acc;
    for (std::size_t i = 0; i < sessions[s].size(); ++i) {
      const auto want = monitor.observe(sessions[s][i]);
      acc.add(want);
      expect_steps_bit_identical(got[i], want);
    }
    // End-of-session report matches the offline accumulator exactly.
    ASSERT_TRUE(reports.by_session.count(sid)) << sid;
    const auto& [reason, report] = reports.by_session[sid];
    const auto want_report = acc.report();
    EXPECT_EQ(reason, ReportReason::kShutdown);
    EXPECT_EQ(report.steps, want_report.steps);
    EXPECT_EQ(report.alarms, want_report.alarms);
    EXPECT_EQ(report.trend_alarms, want_report.trend_alarms);
    EXPECT_EQ(report.disagree_steps, want_report.disagree_steps);
    EXPECT_EQ(report.first_alarm_step, want_report.first_alarm_step);
    EXPECT_EQ(report.voted_cluster, want_report.voted_cluster);
    EXPECT_EQ(report.avg_likelihood_voted, want_report.avg_likelihood_voted);
  }
  EXPECT_EQ(server.active_sessions(), 0u);
}

// submit_sync (the TCP path) goes through the same shard scoring.
TEST_F(ServeFixture, SubmitSyncMatchesOfflineMonitor) {
  const auto sessions = pick_sessions(1);
  ASSERT_EQ(sessions.size(), 1u);
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  StepCollector steps;
  server.set_step_observer(steps.observer());
  std::vector<OutputRecord> out;
  for (std::size_t i = 0; i < sessions[0].size(); ++i) {
    Event e;
    e.user_id = "u0";
    e.session_id = "sync";
    e.action = detector_->vocab().name(sessions[0][i]);
    ASSERT_TRUE(server.submit_sync(e, out));
  }
  core::OnlineMonitor monitor(*detector_, config.monitor);
  const auto& got = steps.by_session["sync"];
  ASSERT_EQ(got.size(), sessions[0].size());
  for (std::size_t i = 0; i < sessions[0].size(); ++i) {
    expect_steps_bit_identical(got[i], monitor.observe(sessions[0][i]));
  }
}

TEST_F(ServeFixture, OutputOrderFollowsArrivalOrder) {
  const auto sessions = pick_sessions(6);
  const auto events = interleave(sessions);
  ServeConfig config;
  config.shards = 4;
  config.queue_capacity = 1 << 12;
  ScoringServer server(*detector_, config);
  std::vector<OutputRecord> out;
  for (const Event& event : events) {
    ASSERT_EQ(server.enqueue(event, out), ScoringServer::Enqueue::kAccepted);
  }
  server.pump(out);
  ASSERT_EQ(out.size(), events.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Alarming steps carry a nested "expected" array, so check the
    // discriminant fields as substrings rather than flat-parsing.
    EXPECT_NE(out[i].line.find("\"type\":\"step\""), std::string::npos) << out[i].line;
    EXPECT_NE(out[i].line.find("\"session_id\":\"" + events[i].session_id + "\""),
              std::string::npos)
        << "record " << i;
    if (i > 0) EXPECT_GT(out[i].seq, out[i - 1].seq);
  }
}

// The full NDJSON stream — steps AND end-of-session reports — must be
// byte-identical at any shard/thread combination: shard partitioning is
// an implementation detail that must not leak into the output.
TEST_F(ServeFixture, RenderedOutputIdenticalAcrossShardCounts) {
  const auto sessions = pick_sessions(10);
  const auto events = interleave(sessions);
  const auto replay = [&](std::size_t shards, std::size_t threads) {
    set_global_threads(threads);
    ServeConfig config;
    config.shards = shards;
    config.queue_capacity = 1 << 12;
    ScoringServer server(*detector_, config);
    std::vector<OutputRecord> out;
    for (const Event& event : events) {
      EXPECT_EQ(server.enqueue(event, out), ScoringServer::Enqueue::kAccepted);
    }
    server.shutdown(out);
    std::vector<std::string> lines;
    lines.reserve(out.size());
    for (const auto& r : out) lines.push_back(r.line);
    return lines;
  };
  const auto baseline = replay(1, 1);
  ASSERT_EQ(baseline.size(), events.size() + sessions.size());  // steps + shutdown reports
  EXPECT_EQ(replay(3, 2), baseline);
  EXPECT_EQ(replay(8, 4), baseline);
  set_global_threads(1);
}

TEST_F(ServeFixture, IdleTtlSweepEvictsOnEventTime) {
  ServeConfig config;
  config.shards = 2;
  config.idle_ttl_seconds = 10.0;
  ScoringServer server(*detector_, config);
  ReportCollector reports;
  server.set_report_observer(reports.observer());
  std::vector<OutputRecord> out;

  const std::string action = detector_->vocab().name(0);
  auto event_at = [&](const std::string& sid, double t) {
    Event e;
    e.user_id = "u";
    e.session_id = sid;
    e.action = action;
    e.timestamp = t;
    e.has_timestamp = true;
    return e;
  };
  ASSERT_EQ(server.enqueue(event_at("old", 0.0), out), ScoringServer::Enqueue::kAccepted);
  ASSERT_EQ(server.enqueue(event_at("old", 1.0), out), ScoringServer::Enqueue::kAccepted);
  ASSERT_EQ(server.enqueue(event_at("fresh", 100.0), out), ScoringServer::Enqueue::kAccepted);
  server.pump(out);
  EXPECT_EQ(server.active_sessions(), 2u);

  server.sweep(out);  // event clock is 100; "old" idle for 99s > 10s TTL
  EXPECT_EQ(server.active_sessions(), 1u);
  ASSERT_TRUE(reports.by_session.count("old"));
  EXPECT_EQ(reports.by_session["old"].first, ReportReason::kIdleEviction);
  EXPECT_EQ(reports.by_session["old"].second.steps, 2u);
  EXPECT_FALSE(reports.by_session.count("fresh"));
}

TEST_F(ServeFixture, CapacityEvictionBoundsSessionTable) {
  ServeConfig config;
  config.shards = 1;  // single shard makes the cap exact
  config.max_sessions = 4;
  config.idle_ttl_seconds = 1e9;
  ScoringServer server(*detector_, config);
  ReportCollector reports;
  server.set_report_observer(reports.observer());
  std::vector<OutputRecord> out;

  const std::string action = detector_->vocab().name(0);
  for (int s = 0; s < 7; ++s) {
    Event e;
    e.user_id = "u";
    e.session_id = "cap" + std::to_string(s);
    e.action = action;
    e.timestamp = static_cast<double>(s);
    e.has_timestamp = true;
    ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
    server.pump(out);
    EXPECT_LE(server.active_sessions(), 4u);
  }
  EXPECT_EQ(server.active_sessions(), 4u);
  // The three oldest sessions were evicted, LRU first.
  for (const auto& sid : {"cap0", "cap1", "cap2"}) {
    ASSERT_TRUE(reports.by_session.count(sid)) << sid;
    EXPECT_EQ(reports.by_session[sid].first, ReportReason::kCapacityEviction);
  }
  EXPECT_FALSE(reports.by_session.count("cap6"));
}

TEST_F(ServeFixture, BackpressureBlockReportsQueueFull) {
  ServeConfig config;
  config.shards = 1;
  config.queue_capacity = 4;
  config.backpressure = BackpressurePolicy::kBlock;
  ScoringServer server(*detector_, config);
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u";
  e.session_id = "s";
  e.action = detector_->vocab().name(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  }
  EXPECT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kQueueFull);
  EXPECT_EQ(server.queued_events(), 4u);
  server.pump(out);
  EXPECT_EQ(server.queued_events(), 0u);
  EXPECT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
}

TEST_F(ServeFixture, BackpressureDropOldestKeepsFreshest) {
  ServeConfig config;
  config.shards = 1;
  config.queue_capacity = 4;
  config.backpressure = BackpressurePolicy::kDropOldest;
  ScoringServer server(*detector_, config);
  StepCollector steps;
  server.set_step_observer(steps.observer());
  const std::uint64_t dropped_before = serve_metrics().dropped_events.value();
  std::vector<OutputRecord> out;
  for (int i = 0; i < 6; ++i) {
    Event e;
    e.user_id = "u";
    e.session_id = "drop" + std::to_string(i);
    e.action = detector_->vocab().name(0);
    const auto result = server.enqueue(e, out);
    EXPECT_EQ(result, i < 4 ? ScoringServer::Enqueue::kAccepted
                            : ScoringServer::Enqueue::kDroppedOldest);
  }
  EXPECT_EQ(server.queued_events(), 4u);
  EXPECT_EQ(serve_metrics().dropped_events.value() - dropped_before, 2u);
  server.pump(out);
  // drop0/drop1 were discarded; the four freshest survive.
  EXPECT_FALSE(steps.by_session.count("drop0"));
  EXPECT_FALSE(steps.by_session.count("drop1"));
  for (int i = 2; i < 6; ++i) {
    EXPECT_TRUE(steps.by_session.count("drop" + std::to_string(i))) << i;
  }
}

TEST_F(ServeFixture, UnknownActionYieldsErrorRecord) {
  ServeConfig config;
  ScoringServer server(*detector_, config);
  const std::uint64_t errors_before = serve_metrics().parse_errors.value();
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u";
  e.session_id = "s";
  e.action = "NoSuchActionEver";
  EXPECT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kRejected);
  ASSERT_EQ(out.size(), 1u);
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(out[0].line, fields, error));
  EXPECT_EQ(get_string(fields, "type"), "error");
  EXPECT_EQ(serve_metrics().parse_errors.value() - errors_before, 1u);
  // Out-of-range numeric ids are rejected too.
  e.action = std::to_string(detector_->vocab().size());
  EXPECT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kRejected);
}

TEST_F(ServeFixture, NumericActionIdScoresLikeName) {
  ServeConfig config;
  ScoringServer server(*detector_, config);
  StepCollector steps;
  server.set_step_observer(steps.observer());
  std::vector<OutputRecord> out;
  Event by_name;
  by_name.user_id = "u";
  by_name.session_id = "name";
  by_name.action = detector_->vocab().name(3);
  Event by_id = by_name;
  by_id.session_id = "id";
  by_id.action = "3";
  ASSERT_TRUE(server.submit_sync(by_name, out));
  ASSERT_TRUE(server.submit_sync(by_id, out));
  ASSERT_EQ(steps.by_session["name"].size(), 1u);
  ASSERT_EQ(steps.by_session["id"].size(), 1u);
  EXPECT_EQ(steps.by_session["name"][0].ocsvm_scores, steps.by_session["id"][0].ocsvm_scores);
}

TEST_F(ServeFixture, ShutdownDrainsQueuedBacklog) {
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  ReportCollector reports;
  server.set_report_observer(reports.observer());
  std::vector<OutputRecord> out;
  const std::string action = detector_->vocab().name(1);
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < 3; ++i) {
      Event e;
      e.user_id = "u" + std::to_string(s);
      e.session_id = "open" + std::to_string(s);
      e.action = action;
      ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
    }
  }
  // No pump: everything still queued. Shutdown must score the backlog
  // and emit one report per open session.
  server.shutdown(out);
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_EQ(server.queued_events(), 0u);
  ASSERT_EQ(reports.by_session.size(), 5u);
  for (const auto& [sid, entry] : reports.by_session) {
    EXPECT_EQ(entry.first, ReportReason::kShutdown) << sid;
    EXPECT_EQ(entry.second.steps, 3u) << sid;
  }
  // 15 step records + 5 reports, in seq order.
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_GE(out[i].seq, out[i - 1].seq);
}

TEST_F(ServeFixture, ServeMetricsTrackSessions) {
  ServeMetrics& sm = serve_metrics();
  const std::uint64_t opened_before = sm.sessions_opened.value();
  const std::uint64_t finished_before = sm.sessions_finished.value();
  const std::uint64_t steps_before = sm.steps.value();
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  std::vector<OutputRecord> out;
  const std::string action = detector_->vocab().name(2);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 4; ++i) {
      Event e;
      e.user_id = "m";
      e.session_id = "metrics" + std::to_string(s);
      e.action = action;
      ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
    }
  }
  server.pump(out);
  server.shutdown(out);
  EXPECT_EQ(sm.sessions_opened.value() - opened_before, 3u);
  EXPECT_EQ(sm.sessions_finished.value() - finished_before, 3u);
  EXPECT_EQ(sm.steps.value() - steps_before, 12u);
  EXPECT_GE(sm.step_seconds.count(), 12u);
}

TEST_F(ServeFixture, HealthyVerdictsCarryNoDegradedFlag) {
  // Byte-identity guarantee: output of a healthy detector must not grow a
  // "degraded" field (it is emitted only when true).
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  EXPECT_EQ(serve_metrics().degraded_clusters.value(), 0);
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "h";
  e.session_id = "healthy";
  e.action = detector_->vocab().name(1);
  ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  server.pump(out);
  server.shutdown(out);
  ASSERT_FALSE(out.empty());
  for (const auto& r : out) {
    EXPECT_EQ(r.line.find("\"degraded\""), std::string::npos) << r.line;
  }
}

TEST_F(ServeFixture, DegradedDetectorServesFlaggedVerdicts) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  // Round-trip the trained detector through its archive with every LSTM
  // section forced corrupt: the server must come up on the Markov
  // fallbacks, publish the degraded-cluster gauge, and stamp
  // "degraded":true on the affected verdicts instead of refusing to
  // serve.
  std::stringstream archive(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(archive);
  detector_->save(writer);
  BinaryReader reader(archive);
  failpoints::configure("detector.load.lstm=always");
  const core::MisuseDetector degraded = core::MisuseDetector::load(reader);
  failpoints::clear();
  ASSERT_EQ(degraded.degraded_cluster_count(), degraded.cluster_count());

  ServeConfig config;
  config.shards = 2;
  ScoringServer server(degraded, config);
  EXPECT_EQ(serve_metrics().degraded_clusters.value(),
            static_cast<std::int64_t>(degraded.cluster_count()));

  const auto sessions = pick_sessions(4);
  ASSERT_GE(sessions.size(), 2u);
  std::vector<OutputRecord> out;
  for (const Event& event : interleave(sessions)) {
    while (server.enqueue(event, out) == ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
    }
  }
  server.pump(out);
  server.shutdown(out);

  std::size_t degraded_steps = 0;
  std::size_t degraded_reports = 0;
  for (const auto& r : out) {
    if (r.line.find("\"degraded\":true") == std::string::npos) continue;
    if (r.line.find("\"type\":\"step\"") != std::string::npos) ++degraded_steps;
    if (r.line.find("\"type\":\"session_report\"") != std::string::npos) ++degraded_reports;
  }
  EXPECT_GT(degraded_steps, 0u) << "all clusters are degraded; steps must say so";
  EXPECT_GT(degraded_reports, 0u);

  // Restore the healthy gauge for later tests in this process.
  ScoringServer healthy(*detector_, config);
  EXPECT_EQ(serve_metrics().degraded_clusters.value(), 0);
}

// ---------------------------------------------------------------------------
// Model lifecycle: hot-swap, version stamping, shadow/canary scoring.

// The swap acceptance gate: sessions scored before the swap match the
// old model's offline monitor bit-for-bit, sessions opened after match
// the new model's — and the whole rendered stream is identical at any
// shard/thread count. Compatible vocabularies: zero sessions rolled.
TEST_F(ServeFixture, HotSwapEquivalentToOfflinePerVersion) {
  const auto sessions = pick_sessions(10);
  ASSERT_GE(sessions.size(), 8u);
  const std::size_t half = sessions.size() / 2;
  const std::vector<std::span<const int>> first(sessions.begin(),
                                                sessions.begin() + static_cast<long>(half));
  const std::vector<std::span<const int>> second(sessions.begin() + static_cast<long>(half),
                                                 sessions.end());
  ASSERT_EQ(detector_->vocab().fingerprint(), detector_v2().vocab().fingerprint());

  const auto replay = [&](std::size_t shards, std::size_t threads) {
    set_global_threads(threads);
    ServeConfig config;
    config.shards = shards;
    config.queue_capacity = 1 << 12;
    config.idle_ttl_seconds = 1e9;
    ScoringServer server(versioned(*detector_, "v1"), config);
    StepCollector steps;
    std::vector<OutputRecord> out;
    server.set_step_observer(steps.observer());
    for (const Event& event : interleave(first)) {
      EXPECT_EQ(server.enqueue(event, out), ScoringServer::Enqueue::kAccepted);
    }
    // Swap with the first trace still queued: swap_model drains it to the
    // barrier under v1 first — nothing is lost, nothing scores under v2.
    const auto stats = server.swap_model(versioned(detector_v2(), "v2"), out);
    EXPECT_EQ(stats.rolled_sessions, 0u) << "compatible vocabularies must pin-and-continue";
    EXPECT_EQ(server.current_model().version, "v2");
    for (const Event& event : interleave(second, half)) {
      EXPECT_EQ(server.enqueue(event, out), ScoringServer::Enqueue::kAccepted);
    }
    server.shutdown(out);

    // Per-version offline equivalence.
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const bool before_swap = s < half;
      const std::string sid = "s" + std::to_string(s);
      const auto& got = steps.by_session[sid];
      EXPECT_EQ(got.size(), sessions[s].size()) << sid;
      if (got.size() != sessions[s].size()) continue;
      core::OnlineMonitor monitor(before_swap ? *detector_ : detector_v2(), config.monitor);
      for (std::size_t i = 0; i < sessions[s].size(); ++i) {
        expect_steps_bit_identical(got[i], monitor.observe(sessions[s][i]));
      }
    }
    std::vector<std::string> lines;
    lines.reserve(out.size());
    for (const auto& r : out) lines.push_back(r.line);
    return lines;
  };

  const auto baseline = replay(1, 1);
  // Reports are stamped with the version the session was *opened* under —
  // pre-swap sessions say v1 even though they report after the swap.
  std::size_t v1_reports = 0;
  std::size_t v2_reports = 0;
  for (const auto& line : baseline) {
    if (line.find("\"type\":\"session_report\"") == std::string::npos) continue;
    if (line.find("\"model_version\":\"v1\"") != std::string::npos) ++v1_reports;
    if (line.find("\"model_version\":\"v2\"") != std::string::npos) ++v2_reports;
  }
  EXPECT_EQ(v1_reports, half);
  EXPECT_EQ(v2_reports, sessions.size() - half);

  EXPECT_EQ(replay(3, 2), baseline);
  EXPECT_EQ(replay(8, 4), baseline);
  set_global_threads(1);
}

TEST_F(ServeFixture, IncompatibleSwapFinishesOpenSessionsWithModelSwapReports) {
  ASSERT_NE(detector_->vocab().fingerprint(), detector_alt().vocab().fingerprint());
  ServeConfig config;
  config.shards = 3;
  config.idle_ttl_seconds = 1e9;
  ScoringServer server(versioned(*detector_, "v1"), config);
  ReportCollector reports;
  server.set_report_observer(reports.observer());
  const std::uint64_t rolled_before = serve_metrics().swap_sessions_rolled.value();
  const std::uint64_t evicted_before = serve_metrics().sessions_evicted.value();

  std::vector<OutputRecord> out;
  const std::string action = detector_->vocab().name(0);
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < 3; ++i) {
      Event e;
      e.user_id = "u";
      e.session_id = "roll" + std::to_string(s);
      e.action = action;
      ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
    }
  }
  // Swap across a vocabulary change with the backlog still queued: every
  // queued event is scored under v1, then every open session is finished
  // at the barrier — reported, never dropped.
  const auto stats = server.swap_model(versioned(detector_alt(), "v2"), out);
  EXPECT_EQ(stats.rolled_sessions, 5u);
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_EQ(serve_metrics().swap_sessions_rolled.value() - rolled_before, 5u);
  EXPECT_EQ(serve_metrics().sessions_evicted.value(), evicted_before)
      << "a model swap is not an eviction";
  ASSERT_EQ(reports.by_session.size(), 5u);
  for (const auto& [sid, entry] : reports.by_session) {
    EXPECT_EQ(entry.first, ReportReason::kModelSwap) << sid;
    EXPECT_EQ(entry.second.steps, 3u) << sid << " lost events at the barrier";
  }
  std::size_t swap_report_lines = 0;
  for (const auto& r : out) {
    if (r.line.find("\"reason\":\"model_swap\"") != std::string::npos) ++swap_report_lines;
  }
  EXPECT_EQ(swap_report_lines, 5u);

  // Traffic reopens under the new model and its vocabulary.
  Event fresh;
  fresh.user_id = "u";
  fresh.session_id = "fresh";
  fresh.action = detector_alt().vocab().name(0);
  EXPECT_EQ(server.enqueue(fresh, out), ScoringServer::Enqueue::kAccepted);
  server.pump(out);
  EXPECT_EQ(server.active_sessions(), 1u);
  server.shutdown(out);
}

// Shadow scoring is metrics-only: the active output stream must be
// byte-identical with the shadow attached, detached, or absent.
TEST_F(ServeFixture, ShadowScoringDoesNotPerturbActiveOutput) {
  const auto sessions = pick_sessions(8);
  const auto events = interleave(sessions);
  const auto replay = [&](const ShadowPlan* plan) {
    ServeConfig config;
    config.shards = 3;
    config.queue_capacity = 1 << 12;
    config.idle_ttl_seconds = 1e9;
    ScoringServer server(versioned(*detector_, "v1"), config);
    if (plan != nullptr) server.set_shadow(*plan);
    std::vector<OutputRecord> out;
    for (const Event& event : events) {
      EXPECT_EQ(server.enqueue(event, out), ScoringServer::Enqueue::kAccepted);
    }
    server.pump(out);
    server.shutdown(out);
    std::vector<std::string> lines;
    lines.reserve(out.size());
    for (const auto& r : out) lines.push_back(r.line);
    return lines;
  };

  const auto baseline = replay(nullptr);

  ShadowPlan plan;
  plan.detector = std::shared_ptr<const core::MisuseDetector>(std::shared_ptr<void>(),
                                                              &detector_v2());
  plan.version = "v2";
  plan.fraction = 1.0;
  const std::uint64_t steps_before = serve_metrics().shadow_steps.value();
  const std::uint64_t sessions_before = serve_metrics().shadow_sessions.value();
  EXPECT_EQ(replay(&plan), baseline) << "full shadow mirror perturbed the active stream";
  EXPECT_EQ(serve_metrics().shadow_steps.value() - steps_before, events.size());
  EXPECT_EQ(serve_metrics().shadow_sessions.value() - sessions_before, sessions.size());

  // Fraction 0: attached but sampling nothing — still byte-identical,
  // and the mirror never fires.
  plan.fraction = 0.0;
  const std::uint64_t zero_before = serve_metrics().shadow_steps.value();
  EXPECT_EQ(replay(&plan), baseline);
  EXPECT_EQ(serve_metrics().shadow_steps.value() - zero_before, 0u);
}

TEST_F(ServeFixture, SwapMetricsAndVersionGauge) {
  ServeConfig config;
  config.shards = 2;
  const std::uint64_t swaps_before = serve_metrics().swaps.value();
  const std::uint64_t pauses_before = serve_metrics().swap_pause_seconds.count();
  ScoringServer server(versioned(*detector_, "v1"), config);
  EXPECT_EQ(serve_metrics().model_version.value(), 1);
  std::vector<OutputRecord> out;
  const auto stats = server.swap_model(versioned(detector_v2(), "v2"), out);
  EXPECT_GE(stats.pause_seconds, 0.0);
  EXPECT_EQ(serve_metrics().model_version.value(), 2);
  EXPECT_EQ(serve_metrics().swaps.value() - swaps_before, 1u);
  EXPECT_EQ(serve_metrics().swap_pause_seconds.count() - pauses_before, 1u);
}

// The legacy (unversioned) constructor must keep its wire format: no
// model_version field anywhere, ever — WAL replay compatibility.
TEST_F(ServeFixture, UnversionedServerEmitsNoVersionField) {
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u";
  e.session_id = "plain";
  e.action = detector_->vocab().name(0);
  ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  server.pump(out);
  server.shutdown(out);
  ASSERT_FALSE(out.empty());
  for (const auto& r : out) {
    EXPECT_EQ(r.line.find("\"model_version\""), std::string::npos) << r.line;
  }
}

}  // namespace
}  // namespace misuse::serve

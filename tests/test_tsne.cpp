#include "tsne/tsne.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace misuse::tsne {
namespace {

// Three well-separated Gaussian blobs in 10-D.
Matrix blob_data(std::size_t per_blob, std::uint64_t seed) {
  Rng rng(seed);
  Matrix points(3 * per_blob, 10);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      for (std::size_t c = 0; c < 10; ++c) {
        const double center = (c == b) ? 10.0 : 0.0;
        points(b * per_blob + i, c) = static_cast<float>(rng.normal(center, 0.3));
      }
    }
  }
  return points;
}

TEST(Tsne, PairwiseDistancesAreCorrect) {
  auto points = Matrix::from_rows(3, 2, {0, 0, 3, 4, 0, 1});
  const Matrix d = pairwise_squared_distances(points);
  EXPECT_FLOAT_EQ(d(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d(0, 1), 25.0f);
  EXPECT_FLOAT_EQ(d(1, 0), 25.0f);
  EXPECT_FLOAT_EQ(d(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(d(1, 2), 18.0f);
}

TEST(Tsne, AffinitiesFormJointDistribution) {
  const Matrix points = blob_data(5, 1);
  const Matrix p = calibrated_joint_affinities(pairwise_squared_distances(points), 5.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.rows(); ++i) {
    EXPECT_FLOAT_EQ(p(i, i), 0.0f);
    for (std::size_t j = 0; j < p.cols(); ++j) {
      EXPECT_GE(p(i, j), 0.0f);
      EXPECT_NEAR(p(i, j), p(j, i), 1e-7f);
      sum += p(i, j);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Tsne, PerplexityCalibrationHitsTarget) {
  const Matrix points = blob_data(10, 2);
  const Matrix sq = pairwise_squared_distances(points);
  const double target = 7.0;
  const Matrix p = calibrated_joint_affinities(sq, target);
  // Reconstruct conditional entropy per row from the joint (approximate
  // check: rows of the symmetrized joint should still have entropy near
  // log(perplexity) up to symmetrization effects).
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) row_sum += p(i, j);
    double entropy = 0.0;
    for (std::size_t j = 0; j < p.cols(); ++j) {
      if (p(i, j) > 0.0f) {
        const double q = p(i, j) / row_sum;
        entropy -= q * std::log(q);
      }
    }
    EXPECT_NEAR(std::exp(entropy), target, target * 0.5) << "row " << i;
  }
}

TEST(Tsne, EmbeddingIsFiniteAndCentered) {
  const Matrix points = blob_data(8, 3);
  TsneConfig config;
  config.iterations = 150;
  const TsneResult result = run_tsne(points, config);
  ASSERT_EQ(result.embedding.rows(), points.rows());
  ASSERT_EQ(result.embedding.cols(), 2u);
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < result.embedding.rows(); ++i) {
    ASSERT_TRUE(std::isfinite(result.embedding(i, 0)));
    ASSERT_TRUE(std::isfinite(result.embedding(i, 1)));
    mean_x += result.embedding(i, 0);
    mean_y += result.embedding(i, 1);
  }
  EXPECT_NEAR(mean_x / static_cast<double>(points.rows()), 0.0, 1e-3);
  EXPECT_NEAR(mean_y / static_cast<double>(points.rows()), 0.0, 1e-3);
}

TEST(Tsne, KlDecreasesAfterExaggerationPhase) {
  const Matrix points = blob_data(8, 4);
  TsneConfig config;
  config.iterations = 250;
  config.exaggeration_iterations = 50;
  const TsneResult result = run_tsne(points, config);
  ASSERT_EQ(result.kl_history.size(), 250u);
  // After the exaggeration phase the optimizer works on the true
  // objective; final KL must improve on the KL right after the switch.
  EXPECT_LT(result.kl_history.back(), result.kl_history[60]);
  EXPECT_GE(result.kl_history.back(), 0.0);
}

TEST(Tsne, SeparatedBlobsStaySeparatedInEmbedding) {
  const std::size_t per_blob = 8;
  const Matrix points = blob_data(per_blob, 5);
  TsneConfig config;
  config.iterations = 300;
  config.perplexity = 5.0;
  const TsneResult result = run_tsne(points, config);

  // Mean intra-blob distance must be well below mean inter-blob distance.
  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  const std::size_t n = points.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = result.embedding(i, 0) - result.embedding(j, 0);
      const double dy = result.embedding(i, 1) - result.embedding(j, 1);
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (i / per_blob == j / per_blob) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  intra /= static_cast<double>(n_intra);
  inter /= static_cast<double>(n_inter);
  EXPECT_GT(inter, intra * 2.0);
}

TEST(Tsne, IdenticalPointsDoNotProduceNan) {
  Matrix points(6, 4, 1.0f);  // all identical
  TsneConfig config;
  config.iterations = 50;
  const TsneResult result = run_tsne(points, config);
  for (float v : result.embedding.flat()) EXPECT_TRUE(std::isfinite(v));
  for (double kl : result.kl_history) EXPECT_TRUE(std::isfinite(kl));
}

TEST(Tsne, DeterministicUnderSeed) {
  const Matrix points = blob_data(5, 6);
  TsneConfig config;
  config.iterations = 80;
  config.seed = 123;
  const TsneResult a = run_tsne(points, config);
  const TsneResult b = run_tsne(points, config);
  EXPECT_TRUE(a.embedding == b.embedding);
}

TEST(Tsne, TwoPointsMinimalCase) {
  auto points = Matrix::from_rows(2, 3, {0, 0, 0, 1, 1, 1});
  TsneConfig config;
  config.iterations = 30;
  config.perplexity = 1.5;
  const TsneResult result = run_tsne(points, config);
  EXPECT_EQ(result.embedding.rows(), 2u);
  for (float v : result.embedding.flat()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace misuse::tsne

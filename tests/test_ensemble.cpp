#include "topics/ensemble.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace misuse::topics {
namespace {

std::vector<std::vector<int>> three_group_corpus(std::size_t per_group, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> docs;
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t d = 0; d < per_group; ++d) {
      std::vector<int> doc;
      const std::size_t len = 8 + rng.uniform_index(8);
      for (std::size_t i = 0; i < len; ++i) {
        doc.push_back(static_cast<int>(g * 4 + rng.uniform_index(4)));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

EnsembleConfig small_config() {
  EnsembleConfig config;
  config.topic_counts = {3, 5};
  config.runs_per_count = 2;
  config.iterations = 40;
  config.seed = 11;
  return config;
}

TEST(Ensemble, PoolsTopicsAcrossRuns) {
  const auto docs = three_group_corpus(20, 1);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  EXPECT_EQ(ensemble.runs().size(), 4u);           // 2 counts x 2 runs
  EXPECT_EQ(ensemble.topic_count(), 3u + 3 + 5 + 5);
  EXPECT_EQ(ensemble.vocab(), 12u);
  EXPECT_EQ(ensemble.documents(), docs.size());
}

TEST(Ensemble, RefsPointIntoOwningRuns) {
  const auto docs = three_group_corpus(15, 2);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  for (std::size_t t = 0; t < ensemble.topic_count(); ++t) {
    const TopicRef& ref = ensemble.ref(t);
    ASSERT_LT(ref.run, ensemble.runs().size());
    ASSERT_LT(ref.topic_in_run, ensemble.runs()[ref.run].topics);
    const auto dist = ensemble.topic_distribution(t);
    ASSERT_EQ(dist.size(), 12u);
    double sum = 0.0;
    for (float p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Ensemble, RunsDifferBySeed) {
  const auto docs = three_group_corpus(15, 3);
  EnsembleConfig config = small_config();
  config.topic_counts = {3};
  config.runs_per_count = 2;
  const auto ensemble = LdaEnsemble::fit(docs, 12, config);
  // Two runs with identical K but different seeds should not be
  // bit-identical.
  EXPECT_FALSE(ensemble.runs()[0].topic_action == ensemble.runs()[1].topic_action);
}

TEST(Ensemble, PairwiseSimilarityIsSymmetricWithUnitDiagonal) {
  const auto docs = three_group_corpus(15, 4);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  const Matrix sim = ensemble.pairwise_similarity();
  ASSERT_EQ(sim.rows(), ensemble.topic_count());
  for (std::size_t i = 0; i < sim.rows(); ++i) {
    EXPECT_FLOAT_EQ(sim(i, i), 1.0f);
    for (std::size_t j = 0; j < sim.cols(); ++j) {
      EXPECT_FLOAT_EQ(sim(i, j), sim(j, i));
      EXPECT_GE(sim(i, j), 0.0f);
      EXPECT_LE(sim(i, j), 1.0f + 1e-5f);
    }
  }
}

TEST(Ensemble, DocumentWeightsComeFromOwningRun) {
  const auto docs = three_group_corpus(10, 5);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  for (std::size_t t = 0; t < ensemble.topic_count(); ++t) {
    const TopicRef& ref = ensemble.ref(t);
    for (std::size_t d = 0; d < docs.size(); ++d) {
      EXPECT_FLOAT_EQ(ensemble.document_weight(t, d),
                      ensemble.runs()[ref.run].doc_topic(d, ref.topic_in_run));
    }
  }
}

TEST(Ensemble, AssignDocumentsCoversSelection) {
  const auto docs = three_group_corpus(20, 6);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  const std::vector<std::size_t> selection = {0, 3, 7};
  const auto assignment = ensemble.assign_documents(selection);
  ASSERT_EQ(assignment.size(), docs.size());
  for (std::size_t a : assignment) EXPECT_LT(a, selection.size());
}

TEST(Ensemble, AssignmentPicksMaxWeightTopic) {
  const auto docs = three_group_corpus(10, 7);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  const std::vector<std::size_t> selection = {1, 4, 9};
  const auto assignment = ensemble.assign_documents(selection);
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const float chosen = ensemble.document_weight(selection[assignment[d]], d);
    for (std::size_t s : selection) {
      EXPECT_LE(ensemble.document_weight(s, d), chosen + 1e-6f);
    }
  }
}

TEST(Ensemble, MedoidMatchesOwningRun) {
  const auto docs = three_group_corpus(12, 8);
  const auto ensemble = LdaEnsemble::fit(docs, 12, small_config());
  for (std::size_t t = 0; t < ensemble.topic_count(); t += 3) {
    const TopicRef& ref = ensemble.ref(t);
    EXPECT_EQ(ensemble.medoid_document(t),
              ensemble.runs()[ref.run].medoid_document(ref.topic_in_run));
  }
}

}  // namespace
}  // namespace misuse::topics

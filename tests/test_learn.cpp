// Continuous-learning subsystem (src/learn): collector labeling and
// buffering, fine-tune determinism, the promotion guardrails (each pinned
// by a test that fails if the guard is removed), the full loop's
// end-to-end determinism — two runs over the same registry seed and event
// stream produce byte-identical candidate archives and audit logs — and
// the post-promotion drift watch's auto-rollback.
#include "learn/loop.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "learn/audit.hpp"
#include "learn/collector.hpp"
#include "learn/policy.hpp"
#include "registry/registry.hpp"
#include "synth/portal.hpp"
#include "util/failpoint.hpp"
#include "util/fsio.hpp"
#include "util/serialize.hpp"

namespace misuse::learn {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Shared fixture: one small trained detector + its training traffic.

class LearnFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 160;
    pc.users = 30;
    pc.action_count = 60;
    pc.seed = 42;
    store_ = new SessionStore(synth::Portal(pc).generate());
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {8};
    dc.ensemble.iterations = 6;
    dc.expert.target_clusters = 3;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 1;
    dc.lm.patience = 0;
    detector_ = new core::MisuseDetector(core::MisuseDetector::train(*store_, dc));
    archive_path_ = new std::string(::testing::TempDir() + "misusedet_learn_seed.bin");
    std::ofstream out(*archive_path_, std::ios::binary | std::ios::trunc);
    BinaryWriter writer(out);
    detector_->save(writer);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete detector_;
    delete archive_path_;
    store_ = nullptr;
    detector_ = nullptr;
    archive_path_ = nullptr;
  }

  static const SessionStore& store() { return *store_; }
  static const core::MisuseDetector& detector() { return *detector_; }
  static const std::string& archive() { return *archive_path_; }

  static std::string fresh_root(const std::string& name) {
    const std::string root = ::testing::TempDir() + "misusedet_learn_" + name;
    fs::remove_all(root);
    return root;
  }

  /// A registry with the seed detector active as v1.
  static std::string seeded_registry(const std::string& name) {
    const std::string root = fresh_root(name);
    registry::ModelRegistry registry(root);
    const std::uint64_t v1 = registry.publish(archive(), "seed");
    registry.promote(v1);
    registry.promote(v1);
    return root;
  }

  /// The training corpus replayed as events: one session window per store
  /// session, each under its own session key, strictly increasing time.
  static std::vector<serve::Event> training_events() {
    std::vector<serve::Event> events;
    const ActionVocab& vocab = store().vocab();
    for (std::size_t s = 0; s < store().size(); ++s) {
      const Session& session = store().at(s);
      for (std::size_t i = 0; i < session.actions.size(); ++i) {
        serve::Event event;
        event.user_id = "u" + std::to_string(s);
        event.session_id = "s" + std::to_string(s);
        event.action = vocab.name(session.actions[i]);
        event.timestamp = 1000.0 * static_cast<double>(s) + static_cast<double>(i);
        event.has_timestamp = true;
        events.push_back(std::move(event));
      }
    }
    return events;
  }

  /// Heavily drifted traffic: every window hammers one single action.
  static std::vector<serve::Event> drifted_events(std::size_t windows, double start_time) {
    std::vector<serve::Event> events;
    const std::string action = store().vocab().name(0);
    for (std::size_t w = 0; w < windows; ++w) {
      for (std::size_t i = 0; i < 12; ++i) {
        serve::Event event;
        event.user_id = "drift" + std::to_string(w);
        event.session_id = "d" + std::to_string(w);
        event.action = action;
        event.timestamp = start_time + 1000.0 * static_cast<double>(w) + static_cast<double>(i);
        event.has_timestamp = true;
        events.push_back(std::move(event));
      }
    }
    return events;
  }

  /// Loop config sized for the fixture: tiny budgets, lenient guardrails
  /// (individual tests tighten the guard under test).
  static LearnLoopConfig lenient_config() {
    LearnLoopConfig config;
    config.collector.max_alarm_steps = 1000;  // admit everything
    config.collector.eval_every = 5;
    config.trainer.epochs = 1;
    config.trainer.lda_iterations = 4;
    config.min_train_windows = 8;
    config.watch_min_windows = 2;
    config.policy.eval_budget_steps = 10;
    config.policy.max_flip_rate = 1.0;
    config.policy.max_loss_delta = 1e9;
    config.policy.drift_margin = 1e9;
    config.policy.rollback_drift_margin = 1e9;
    return config;
  }

 private:
  static SessionStore* store_;
  static core::MisuseDetector* detector_;
  static std::string* archive_path_;
};

SessionStore* LearnFixture::store_ = nullptr;
core::MisuseDetector* LearnFixture::detector_ = nullptr;
std::string* LearnFixture::archive_path_ = nullptr;

std::shared_ptr<const core::MisuseDetector> shared_detector(const core::MisuseDetector& d) {
  // Non-owning alias: the fixture keeps the detector alive for the suite.
  return {std::shared_ptr<const core::MisuseDetector>{}, &d};
}

std::string serialize(const core::MisuseDetector& detector) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  detector.save(writer);
  return out.str();
}

// ---------------------------------------------------------------------------
// Collector.

TEST_F(LearnFixture, CollectorLabelsAndBuffersWindows) {
  CollectorConfig config;
  config.max_alarm_steps = 1000;
  config.eval_every = 0;  // everything to training
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  for (const auto& event : training_events()) collector.observe(event);
  collector.flush();
  EXPECT_EQ(collector.open_windows(), 0u);
  EXPECT_GT(collector.buffered_windows(), 100u);
  const auto buffers = collector.training_windows();
  ASSERT_EQ(buffers.size(), detector().cluster_count());
  std::size_t populated = 0;
  for (const auto& buffer : buffers) populated += buffer.empty() ? 0 : 1;
  EXPECT_GE(populated, 2u) << "labeling routed every window to one cluster";
}

TEST_F(LearnFixture, CollectorDiscardsShortAndUnknown) {
  CollectorConfig config;
  config.min_actions = 2;
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  serve::Event event;
  event.user_id = "u";
  event.session_id = "s";
  event.action = store().vocab().name(0);
  event.timestamp = 1.0;
  event.has_timestamp = true;
  collector.observe(event);
  serve::Event unknown = event;
  unknown.action = "NotAnActionAnyoneTrainedOn";
  unknown.timestamp = 2.0;
  collector.observe(unknown);
  collector.flush();
  EXPECT_EQ(collector.buffered_windows(), 0u);  // one known action < min_actions
  EXPECT_EQ(collector.discarded_windows(), 1u);
  EXPECT_EQ(collector.unknown_actions(), 1u);
}

TEST_F(LearnFixture, CollectorExcludesAlarmedWindows) {
  CollectorConfig config;
  config.max_alarm_steps = 0;
  core::MonitorConfig monitor;
  monitor.alarm_likelihood = 1.0;  // every scored step alarms
  SessionWindowCollector collector(shared_detector(detector()), monitor, config);
  for (const auto& event : training_events()) collector.observe(event);
  collector.flush();
  EXPECT_EQ(collector.buffered_windows(), 0u) << "alarmed windows entered the training buffer";
  // Long sessions split at max_actions, so windows >= sessions.
  EXPECT_GE(collector.discarded_windows(), store().size());
}

TEST_F(LearnFixture, CollectorSplitsEvalHoldoutAndBoundsBuffers) {
  CollectorConfig config;
  config.max_alarm_steps = 1000;
  config.eval_every = 4;
  config.buffer_windows = 5;
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  for (const auto& event : training_events()) collector.observe(event);
  collector.flush();
  const std::size_t admitted = store().size();
  EXPECT_EQ(collector.eval_windows().size(), admitted / 4);
  EXPECT_LE(collector.buffered_windows(), 5 * detector().cluster_count());
  // The eval mark partitions the stream.
  const std::size_t mark = collector.eval_windows_seen();
  EXPECT_EQ(collector.eval_windows_since(mark).size(), 0u);
  EXPECT_EQ(collector.eval_windows_since(0).size(), collector.eval_windows().size());
}

TEST_F(LearnFixture, CollectorSweepRecordsCloseIdleWindows) {
  CollectorConfig config;
  config.gap_seconds = 10.0;
  config.max_alarm_steps = 1000;
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  serve::WalRecord record;
  record.type = serve::WalRecord::kEvent;
  record.event.user_id = "u";
  record.event.session_id = "s";
  record.event.has_timestamp = true;
  for (int i = 0; i < 3; ++i) {
    record.event.action = store().vocab().name(i);
    record.event.timestamp = static_cast<double>(i);
    record.seq = static_cast<std::uint64_t>(i + 1);
    collector.observe(record);
  }
  EXPECT_EQ(collector.open_windows(), 1u);
  serve::WalRecord sweep;
  sweep.type = serve::WalRecord::kSweep;
  sweep.sweep_now = 100.0;  // past the gap
  collector.observe(sweep);
  EXPECT_EQ(collector.open_windows(), 0u);
  EXPECT_EQ(collector.buffered_windows() + collector.eval_windows().size(), 1u);
}

TEST_F(LearnFixture, CollectorIsDeterministic) {
  const auto run = [this] {
    CollectorConfig config;
    config.max_alarm_steps = 1000;
    SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
    for (const auto& event : training_events()) collector.observe(event);
    collector.flush();
    return collector.training_windows();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Incremental trainer.

TEST_F(LearnFixture, FineTuneIsByteDeterministic) {
  CollectorConfig config;
  config.max_alarm_steps = 1000;
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  for (const auto& event : training_events()) collector.observe(event);
  collector.flush();
  const auto windows = collector.training_windows();

  core::FineTuneConfig ft;
  ft.epochs = 1;
  ft.lda_iterations = 4;
  core::FineTuneReport report_a;
  core::FineTuneReport report_b;
  const std::string a = serialize(core::MisuseDetector::fine_tune(detector(), windows, ft, &report_a));
  const std::string b = serialize(core::MisuseDetector::fine_tune(detector(), windows, ft, &report_b));
  EXPECT_EQ(a, b) << "same parent + windows + config must give bit-identical candidates";
  EXPECT_NE(a, serialize(detector())) << "fine-tune was a no-op";
  ASSERT_EQ(report_a.clusters.size(), detector().cluster_count());
  EXPECT_EQ(report_a.windows, report_b.windows);
  std::size_t tuned = 0;
  for (const auto& stats : report_a.clusters) tuned += stats.tuned ? 1 : 0;
  EXPECT_GE(tuned, 1u) << "no cluster had enough windows to tune";
}

// ---------------------------------------------------------------------------
// Promotion policy: every guardrail pinned individually.

TEST(LearnPolicy, GuardrailOrderAndReasons) {
  PolicyConfig config;
  ShadowEvaluation good;
  good.steps = 1000;
  good.verdict_flips = 0;
  good.mean_loss_delta = 0.0;
  good.drift_active = 0.02;
  good.drift_candidate = 0.02;

  // Healthy evidence promotes.
  EXPECT_EQ(evaluate_candidate(config, false, false, good).decision, Decision::kPromote);
  EXPECT_EQ(evaluate_candidate(config, false, false, good).reason, "guardrails_passed");

  // Degraded clusters block promotion on either side, before anything else.
  EXPECT_EQ(evaluate_candidate(config, true, false, good).reason, "degraded_clusters");
  EXPECT_EQ(evaluate_candidate(config, false, true, good).reason, "degraded_clusters");

  // The evaluation budget must be met.
  ShadowEvaluation thin = good;
  thin.steps = config.eval_budget_steps - 1;
  EXPECT_EQ(evaluate_candidate(config, false, false, thin).reason, "insufficient_evidence");

  // Verdict-flip rate beyond threshold rejects.
  ShadowEvaluation flippy = good;
  flippy.verdict_flips = static_cast<std::size_t>(
      static_cast<double>(flippy.steps) * (config.max_flip_rate + 0.01));
  EXPECT_EQ(evaluate_candidate(config, false, false, flippy).reason, "verdict_flip_rate");

  // Loss-delta regression rejects.
  ShadowEvaluation lossy = good;
  lossy.mean_loss_delta = config.max_loss_delta + 0.01;
  EXPECT_EQ(evaluate_candidate(config, false, false, lossy).reason, "loss_delta");

  // Drift-gauge regression rejects.
  ShadowEvaluation drifty = good;
  drifty.drift_candidate = drifty.drift_active + config.drift_margin + 0.01;
  EXPECT_EQ(evaluate_candidate(config, false, false, drifty).reason, "drift_regression");
}

TEST(LearnPolicy, WatchRollsBackOnPostPromotionDrift) {
  PolicyConfig config;
  EXPECT_EQ(evaluate_watch(config, 0.02, 0.02).decision, Decision::kSkip);
  EXPECT_EQ(evaluate_watch(config, 0.02, 0.02 + config.rollback_drift_margin + 0.001).decision,
            Decision::kRollback);
  EXPECT_EQ(evaluate_watch(config, 0.02, 0.05).reason, "post_promotion_drift");
}

TEST(LearnAudit, RecordsAreFlatOneLineJson) {
  AuditRecord record;
  record.cycle = 3;
  record.decision = Decision::kPromote;
  record.reason = "guardrails_passed";
  record.candidate = 2;
  record.parent = 1;
  record.eval.steps = 100;
  record.eval.verdict_flips = 1;
  const std::string line = render_audit_record(record);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "audit record spans lines";
  EXPECT_NE(line.find("\"decision\":\"promote\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"flip_rate\":0.01"), std::string::npos) << line;
  // No wall-clock field anywhere: determinism depends on it.
  EXPECT_EQ(line.find("time"), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// The full loop.

TEST_F(LearnFixture, LoopPromotesOnHealthyEvidenceAndIsByteDeterministic) {
  const auto run = [this](const std::string& name) {
    const std::string root = seeded_registry(name);
    LearnLoop loop(root, lenient_config());
    for (const auto& event : training_events()) loop.observe(event);
    loop.flush();
    const AuditRecord record = loop.run_cycle();
    return std::tuple<std::string, AuditRecord, std::string, std::string>(
        root, record,
        read_file(root + "/learn_audit.ndjson").value_or(""),
        read_file(registry::ModelRegistry(root).archive_path(record.candidate)).value_or(""));
  };

  const auto [root_a, record_a, audit_a, archive_a] = run("loop_a");
  const auto [root_b, record_b, audit_b, archive_b] = run("loop_b");

  // Promotion happened and the registry shows it.
  EXPECT_EQ(record_a.decision, Decision::kPromote);
  EXPECT_EQ(record_a.reason, "guardrails_passed");
  EXPECT_EQ(record_a.parent, 1u);
  EXPECT_EQ(record_a.candidate, 2u);
  registry::ModelRegistry registry(root_a);
  EXPECT_EQ(registry.current(), 2u);
  EXPECT_EQ(registry.metadata(2)->parent, 1u) << "candidate published without a lineage stamp";
  EXPECT_GT(record_a.eval.steps, 0u);

  // Byte-identical across two independent runs: archives, audit, decision.
  EXPECT_FALSE(archive_a.empty());
  EXPECT_EQ(archive_a, archive_b) << "candidate archives differ across identical runs";
  EXPECT_EQ(audit_a, audit_b) << "audit logs differ across identical runs";
  EXPECT_EQ(record_a.decision, record_b.decision);
  EXPECT_EQ(record_a.eval.verdict_flips, record_b.eval.verdict_flips);
}

TEST_F(LearnFixture, LoopRejectsWhenFlipGuardTrips) {
  const std::string root = seeded_registry("reject_flip");
  LearnLoopConfig config = lenient_config();
  config.policy.max_flip_rate = -1.0;  // any flip rate (even 0) trips the guard
  LearnLoop loop(root, config);
  for (const auto& event : training_events()) loop.observe(event);
  loop.flush();
  const AuditRecord record = loop.run_cycle();
  EXPECT_EQ(record.decision, Decision::kReject);
  EXPECT_EQ(record.reason, "verdict_flip_rate");
  registry::ModelRegistry registry(root);
  EXPECT_EQ(registry.current(), 1u) << "rejected candidate reached active";
  ASSERT_TRUE(record.candidate != 0);
  EXPECT_EQ(registry.metadata(record.candidate)->state, registry::VersionState::kRetired);
  // The audit trail records the rejection.
  const std::string audit = read_file(root + "/learn_audit.ndjson").value_or("");
  EXPECT_NE(audit.find("\"reason\":\"verdict_flip_rate\""), std::string::npos) << audit;
}

TEST_F(LearnFixture, LoopSkipsWithoutEnoughWindows) {
  const std::string root = seeded_registry("skip");
  LearnLoop loop(root, lenient_config());
  const AuditRecord record = loop.run_cycle();
  EXPECT_EQ(record.decision, Decision::kSkip);
  EXPECT_EQ(record.reason, "insufficient_windows");
  EXPECT_EQ(registry::ModelRegistry(root).list().size(), 1u) << "skip published something";
}

TEST_F(LearnFixture, LoopRejectsDegradedActiveBeforeTraining) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  const std::string root = seeded_registry("degraded");
  failpoints::configure("detector.load.lstm=always");
  LearnLoop loop(root, lenient_config());  // active loads with every cluster degraded
  failpoints::clear();
  for (const auto& event : training_events()) loop.observe(event);
  loop.flush();
  const AuditRecord record = loop.run_cycle();
  EXPECT_EQ(record.decision, Decision::kReject);
  EXPECT_EQ(record.reason, "degraded_clusters");
  EXPECT_EQ(record.candidate, 0u) << "a candidate was trained from a degraded model";
  EXPECT_EQ(registry::ModelRegistry(root).list().size(), 1u);
}

TEST_F(LearnFixture, LoopRejectsCorruptCandidateAtPublish) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  const std::string root = seeded_registry("corrupt");
  LearnLoop loop(root, lenient_config());
  for (const auto& event : training_events()) loop.observe(event);
  loop.flush();
  failpoints::configure("learn.train.corrupt=always");
  const AuditRecord record = loop.run_cycle();
  failpoints::clear();
  EXPECT_EQ(record.decision, Decision::kReject);
  EXPECT_EQ(record.reason, "candidate_invalid");
  registry::ModelRegistry registry(root);
  EXPECT_EQ(registry.current(), 1u);
  EXPECT_EQ(registry.list().size(), 1u) << "corrupt candidate landed in the registry";
  EXPECT_FALSE(fs::exists(root + "/candidate.inflight.bin")) << "staging temp file leaked";
}

TEST_F(LearnFixture, WatchRollsBackOnDriftRegressionAndOnlyThen) {
  const auto scenario = [this](const std::string& name, double rollback_margin) {
    const std::string root = seeded_registry(name);
    LearnLoopConfig config = lenient_config();
    config.collector.eval_every = 3;
    config.min_train_windows = 8;
    config.watch_min_windows = 2;
    config.policy.rollback_drift_margin = rollback_margin;
    LearnLoop loop(root, config);
    for (const auto& event : training_events()) loop.observe(event);
    loop.flush();
    const AuditRecord decision = loop.run_cycle();
    EXPECT_EQ(decision.decision, Decision::kPromote) << decision.reason;
    EXPECT_TRUE(loop.watch_armed());
    // Phase 2: the stream turns pathological after the promotion.
    for (const auto& event : drifted_events(9, 1.0e6)) loop.observe(event);
    loop.flush();
    return std::make_pair(root, loop.watch());
  };

  // Guard armed with the default margin: the drift regression rolls back.
  const auto [root, rollback] = scenario("watch_rollback", 0.01);
  ASSERT_TRUE(rollback.has_value()) << "post-promotion drift did not roll back";
  EXPECT_EQ(rollback->decision, Decision::kRollback);
  EXPECT_EQ(rollback->reason, "post_promotion_drift");
  EXPECT_EQ(rollback->parent, 1u);
  registry::ModelRegistry registry(root);
  EXPECT_EQ(registry.current(), 1u) << "rollback did not re-activate the parent";

  // Remove the guard (infinite margin): the same drift is tolerated —
  // this leg fails if the rollback path triggers unconditionally.
  const auto [root_loose, no_rollback] = scenario("watch_tolerant", 1e9);
  EXPECT_FALSE(no_rollback.has_value());
  EXPECT_EQ(registry::ModelRegistry(root_loose).current(), 2u);
}

TEST_F(LearnFixture, ShadowEvaluateMatchesServeSemantics) {
  // Identical models: zero flips, zero loss delta, equal drift.
  CollectorConfig config;
  config.max_alarm_steps = 1000;
  config.eval_every = 1;
  SessionWindowCollector collector(shared_detector(detector()), core::MonitorConfig{}, config);
  for (const auto& event : training_events()) collector.observe(event);
  collector.flush();
  const auto windows = collector.eval_windows();
  ASSERT_GT(windows.size(), 10u);
  const ShadowEvaluation eval = shadow_evaluate(detector(), detector(), core::MonitorConfig{},
                                                core::DriftConfig{}, windows);
  EXPECT_GT(eval.steps, 0u);
  EXPECT_EQ(eval.verdict_flips, 0u);
  EXPECT_EQ(eval.mean_loss_delta, 0.0);
  EXPECT_EQ(eval.drift_active, eval.drift_candidate);
  EXPECT_EQ(eval.sessions, windows.size());
}

}  // namespace
}  // namespace misuse::learn

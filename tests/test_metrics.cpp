#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

// Every instrument in these tests gets a unique name so the tests stay
// independent of execution order (the registry is process-global).

class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : saved_(metrics_enabled()) {}
  ~MetricsEnabledGuard() { set_metrics_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Counter, IncrementAndReset) {
  Counter& c = metrics().counter("test.counter.basic");
  c.reset();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = metrics().counter("test.counter.identity");
  Counter& b = metrics().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = metrics().gauge("test.gauge.identity");
  Gauge& g2 = metrics().gauge("test.gauge.identity");
  EXPECT_EQ(&g1, &g2);
  HistogramMetric& h1 = metrics().histogram("test.histogram.identity");
  HistogramMetric& h2 = metrics().histogram("test.histogram.identity");
  EXPECT_EQ(&h1, &h2);
}

TEST(Counter, ConcurrentIncrementsFromThreadPoolAreExact) {
  Counter& c = metrics().counter("test.counter.concurrent");
  c.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 1000;
  pool.parallel_for(0, kTasks, [&](std::size_t i) { c.inc(i % 3 + 1); });
  // sum over i of (i % 3 + 1): 334 ones, 333 twos, 333 threes.
  EXPECT_EQ(c.value(), 334u * 1 + 333u * 2 + 333u * 3);
}

TEST(Counter, DisabledRecordingIsDropped) {
  MetricsEnabledGuard guard;
  Counter& c = metrics().counter("test.counter.disabled");
  c.reset();
  set_metrics_enabled(false);
  c.inc(5);
  EXPECT_EQ(c.value(), 0u);
  set_metrics_enabled(true);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, SetTracksValueAndHighWater) {
  Gauge& g = metrics().gauge("test.gauge.basic");
  g.reset();
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 7);
  g.add(10);
  EXPECT_EQ(g.value(), 13);
  EXPECT_EQ(g.high_water(), 13);
  g.add(-5);
  EXPECT_EQ(g.value(), 8);
  EXPECT_EQ(g.high_water(), 13);
}

TEST(Gauge, ConcurrentAddsBalanceOut) {
  Gauge& g = metrics().gauge("test.gauge.concurrent");
  g.reset();
  ThreadPool pool(4);
  pool.parallel_for(0, 500, [&](std::size_t) {
    g.add(1);
    g.add(-1);
  });
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.high_water(), 1);
}

TEST(HistogramMetric, ExponentialBuckets) {
  const auto bounds = exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(HistogramMetric, RecordsIntoCorrectBuckets) {
  HistogramMetric& h = metrics().histogram("test.histogram.buckets", {1.0, 2.0, 4.0});
  h.reset();
  h.record(0.5);   // <= 1.0
  h.record(1.0);   // <= 1.0 (bound is inclusive)
  h.record(3.0);   // <= 4.0
  h.record(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(HistogramMetric, EmptyQuantileIsZero) {
  HistogramMetric& h = metrics().histogram("test.histogram.empty", {1.0, 2.0});
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramMetric, SingleBucketQuantileInterpolates) {
  HistogramMetric& h = metrics().histogram("test.histogram.single", {10.0});
  h.reset();
  h.record(5.0);
  h.record(5.0);
  // Both samples are in [0, 10]; the median interpolates to the middle.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramMetric, OverflowQuantileReportsLastBound) {
  HistogramMetric& h = metrics().histogram("test.histogram.overflow", {1.0, 2.0});
  h.reset();
  h.record(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramMetric, QuantileWalksCumulativeCounts) {
  HistogramMetric& h = metrics().histogram("test.histogram.cumulative", {1.0, 2.0, 3.0, 4.0});
  h.reset();
  for (int i = 0; i < 10; ++i) h.record(0.5);  // bucket (0, 1]
  for (int i = 0; i < 10; ++i) h.record(3.5);  // bucket (3, 4]
  // p25 sits inside the first bucket, p75 inside the fourth.
  EXPECT_GT(h.quantile(0.25), 0.0);
  EXPECT_LE(h.quantile(0.25), 1.0);
  EXPECT_GT(h.quantile(0.75), 3.0);
  EXPECT_LE(h.quantile(0.75), 4.0);
}

TEST(HistogramMetric, ConcurrentRecordsCountExactly) {
  HistogramMetric& h = metrics().histogram("test.histogram.concurrent", {0.25, 0.5, 1.0});
  h.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 800;
  // 0.125 has an exact double representation, so the sum is exact even
  // under the CAS-add and the equality below is safe.
  pool.parallel_for(0, kTasks, [&](std::size_t) { h.record(0.125); });
  EXPECT_EQ(h.count(), kTasks);
  EXPECT_DOUBLE_EQ(h.sum(), 0.125 * static_cast<double>(kTasks));
  EXPECT_EQ(h.bucket_count(0), kTasks);
}

TEST(HistogramMetric, DisabledRecordingIsDropped) {
  MetricsEnabledGuard guard;
  HistogramMetric& h = metrics().histogram("test.histogram.disabled", {1.0});
  h.reset();
  set_metrics_enabled(false);
  h.record(0.5);
  EXPECT_EQ(h.count(), 0u);
  set_metrics_enabled(true);
  h.record(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramMetric, LatencyBucketsAreAscending) {
  const auto& bounds = latency_buckets();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(MetricsRegistry, WriteJsonProducesBalancedDocument) {
  metrics().counter("test.json.counter").inc(3);
  metrics().gauge("test.json.gauge").set(4);
  metrics().histogram("test.json.histogram", {1.0}).record(0.5);
  std::ostringstream out;
  {
    JsonWriter json(out);
    metrics().write_json(json);
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.counter\""), std::string::npos);
  // Structural sanity: braces and brackets balance (no string in the
  // document contains them, so plain counting is enough here).
  int braces = 0;
  int brackets = 0;
  for (const char ch : doc) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferencesValid) {
  Counter& c = metrics().counter("test.registry.reset");
  c.inc(9);
  metrics().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &metrics().counter("test.registry.reset"));
}

// --- Prometheus exposition ----------------------------------------------

/// One exposition sample line, labels kept verbatim.
struct PromSample {
  std::string name;
  std::string labels;  // "" or the "{...}" block
  double value = 0.0;
};

std::vector<PromSample> parse_prometheus_text(const std::string& text) {
  std::vector<PromSample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "malformed sample line: " << line;
    if (space == std::string::npos) continue;
    PromSample s;
    const std::string value = line.substr(space + 1);
    if (value == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else if (value == "-Inf") {
      s.value = -std::numeric_limits<double>::infinity();
    } else if (value == "NaN") {
      s.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      char* end = nullptr;
      s.value = std::strtod(value.c_str(), &end);
      EXPECT_TRUE(end != nullptr && *end == '\0') << "bad value in: " << line;
    }
    s.name = line.substr(0, space);
    const std::size_t brace = s.name.find('{');
    if (brace != std::string::npos) {
      s.labels = s.name.substr(brace);
      s.name.resize(brace);
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

double find_sample(const std::vector<PromSample>& samples, const std::string& name,
                   const std::string& labels = "") {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "sample not found: " << name << labels;
  return 0.0;
}

double bucket_bound(const std::string& labels) {
  const std::size_t start = labels.find("le=\"");
  EXPECT_NE(start, std::string::npos) << labels;
  if (start == std::string::npos) return 0.0;
  const std::string raw = labels.substr(start + 4, labels.find('"', start + 4) - start - 4);
  if (raw == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(raw.c_str(), nullptr);
}

/// Asserts the Prometheus histogram contract for one family within an
/// exposition document: bucket counts monotone nondecreasing in le, the
/// last bucket is +Inf, and its count equals the family's _count sample.
void expect_bucket_invariants(const std::vector<PromSample>& samples, const std::string& family) {
  double previous_count = 0.0;
  double previous_bound = -std::numeric_limits<double>::infinity();
  double last_count = 0.0;
  double last_bound = 0.0;
  std::size_t buckets = 0;
  for (const auto& s : samples) {
    if (s.name != family + "_bucket") continue;
    const double bound = bucket_bound(s.labels);
    EXPECT_GT(bound, previous_bound) << family << " bounds not ascending";
    EXPECT_GE(s.value, previous_count) << family << " cumulative counts not monotone";
    previous_bound = bound;
    previous_count = s.value;
    last_count = s.value;
    last_bound = bound;
    ++buckets;
  }
  ASSERT_GT(buckets, 0u) << "no buckets for " << family;
  EXPECT_TRUE(std::isinf(last_bound)) << family << " missing the +Inf bucket";
  EXPECT_DOUBLE_EQ(last_count, find_sample(samples, family + "_count"))
      << family << " +Inf bucket != _count";
}

TEST(Prometheus, NameManglingAndPrefix) {
  EXPECT_EQ(prometheus_name("serve.step_seconds"), "misusedet_serve_step_seconds");
  EXPECT_EQ(prometheus_name("serve.shard.queue_depth.0"), "misusedet_serve_shard_queue_depth_0");
  EXPECT_EQ(prometheus_name("weird-name with spaces"), "misusedet_weird_name_with_spaces");
}

TEST(Prometheus, CountersAndGaugesRenderWithTypes) {
  metrics().counter("test.prom.counter").reset();
  metrics().counter("test.prom.counter").inc(3);
  Gauge& g = metrics().gauge("test.prom.gauge");
  g.reset();
  g.set(9);
  g.set(4);
  std::ostringstream out;
  metrics().write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE misusedet_test_prom_counter_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE misusedet_test_prom_gauge gauge\n"), std::string::npos);
  const auto samples = parse_prometheus_text(text);
  EXPECT_DOUBLE_EQ(find_sample(samples, "misusedet_test_prom_counter_total"), 3.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, "misusedet_test_prom_gauge"), 4.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, "misusedet_test_prom_gauge_high_water"), 9.0);
}

TEST(Prometheus, HistogramKnownDistributionQuantilesAndBuckets) {
  HistogramMetric& h = metrics().histogram("test.prom.known", {1.0, 2.0, 4.0});
  h.reset();
  for (int i = 0; i < 50; ++i) h.record(0.5);  // (0, 1]
  for (int i = 0; i < 49; ++i) h.record(3.0);  // (2, 4]
  h.record(100.0);                             // overflow
  // p50: rank 50 lands exactly at the top of the first bucket; p99: rank
  // 99 at the top of the (2, 4] bucket (both from linear interpolation).
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);

  std::ostringstream out;
  metrics().write_prometheus(out);
  const auto samples = parse_prometheus_text(out.str());
  const std::string family = "misusedet_test_prom_known";
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_bucket", "{le=\"1\"}"), 50.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_bucket", "{le=\"2\"}"), 50.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_bucket", "{le=\"4\"}"), 99.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_bucket", "{le=\"+Inf\"}"), 100.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_count"), 100.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_sum"), 50 * 0.5 + 49 * 3.0 + 100.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_summary", "{quantile=\"0.5\"}"), 1.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, family + "_summary", "{quantile=\"0.99\"}"), 4.0);
  expect_bucket_invariants(samples, family);
}

TEST(Prometheus, EveryHistogramFamilyKeepsBucketInvariants) {
  metrics().histogram("test.prom.sweep_a", {0.1, 0.2}).record(0.15);
  HistogramMetric& b = metrics().histogram("test.prom.sweep_b", {1.0, 8.0, 64.0});
  b.record(0.5);
  b.record(9.0);
  b.record(1e9);
  std::ostringstream out;
  metrics().write_prometheus(out);
  const auto samples = parse_prometheus_text(out.str());
  // Collect family names from the _count samples and check each one.
  std::size_t families = 0;
  for (const auto& s : samples) {
    const std::string suffix = "_count";
    if (s.name.size() <= suffix.size() ||
        s.name.compare(s.name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string family = s.name.substr(0, s.name.size() - suffix.size());
    const std::string summary = "_summary";
    if (family.size() > summary.size() &&
        family.compare(family.size() - summary.size(), summary.size(), summary) == 0) {
      continue;  // the summary companion has no buckets
    }
    expect_bucket_invariants(samples, family);
    ++families;
  }
  EXPECT_GE(families, 2u);
}

TEST(Prometheus, ScrapeUnderConcurrentWritersStaysConsistent) {
  HistogramMetric& h = metrics().histogram("test.prom.torn", {0.001, 0.01, 0.1, 1.0});
  h.reset();
  Counter& c = metrics().counter("test.prom.torn_counter");
  c.reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&h, &c, &stop, w] {
      double v = 0.0001 * (w + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        c.inc();
        v = v < 1.0 ? v * 1.7 : 0.0001 * (w + 1);
      }
    });
  }
  // Every scrape taken mid-flight must satisfy the histogram contract:
  // the exposition renders from one copy of the bucket counts, so torn
  // reads can never surface as non-monotone buckets or +Inf != _count.
  for (int scrape = 0; scrape < 25; ++scrape) {
    std::ostringstream out;
    metrics().write_prometheus(out);
    const auto samples = parse_prometheus_text(out.str());
    expect_bucket_invariants(samples, "misusedet_test_prom_torn");
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

// --- Snapshot / delta ----------------------------------------------------

TEST(MetricsSnapshotTest, CapturesInstrumentsWithInfBucket) {
  metrics().counter("test.snap.counter").reset();
  metrics().counter("test.snap.counter").inc(7);
  metrics().gauge("test.snap.gauge").set(-3);
  HistogramMetric& h = metrics().histogram("test.snap.hist", {1.0, 2.0});
  h.reset();
  h.record(0.5);
  h.record(5.0);
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_GT(snap.at_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.counters.at("test.snap.counter"), 7.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap.gauge"), -3.0);
  const auto& hist = snap.histograms.at("test.snap.hist");
  EXPECT_DOUBLE_EQ(hist.count, 2.0);
  ASSERT_EQ(hist.cumulative.size(), 3u);
  EXPECT_TRUE(std::isinf(hist.cumulative.back().first));
  EXPECT_DOUBLE_EQ(hist.cumulative.back().second, hist.count);
}

TEST(MetricsDeltaTest, RatesAndResetClamping) {
  MetricsSnapshot earlier;
  MetricsSnapshot later;
  earlier.at_seconds = 10.0;
  later.at_seconds = 12.0;
  earlier.counters["steps_total"] = 100.0;
  later.counters["steps_total"] = 300.0;
  earlier.counters["restarted_total"] = 50.0;
  later.counters["restarted_total"] = 5.0;  // scrape target restarted
  later.gauges["depth"] = 7.0;
  const MetricsDelta delta(earlier, later);
  EXPECT_DOUBLE_EQ(delta.seconds(), 2.0);
  EXPECT_DOUBLE_EQ(delta.counter_delta("steps_total"), 200.0);
  EXPECT_DOUBLE_EQ(delta.rate("steps_total"), 100.0);
  EXPECT_DOUBLE_EQ(delta.counter_delta("restarted_total"), 0.0);  // clamped, not negative
  EXPECT_DOUBLE_EQ(delta.gauge("depth"), 7.0);
  EXPECT_DOUBLE_EQ(delta.counter_delta("never_seen_total"), 0.0);
}

TEST(MetricsDeltaTest, IntervalQuantileUsesBucketDeltasNotLifetime) {
  const double inf = std::numeric_limits<double>::infinity();
  MetricsSnapshot earlier;
  MetricsSnapshot later;
  earlier.at_seconds = 0.0;
  later.at_seconds = 1.0;
  // Lifetime history: 10 samples in (0, 1]. Interval: 20 samples, all in
  // (1, 2] — the interval quantile must come from the new bucket only.
  earlier.histograms["lat"].count = 10.0;
  earlier.histograms["lat"].cumulative = {{1.0, 10.0}, {2.0, 10.0}, {inf, 10.0}};
  later.histograms["lat"].count = 30.0;
  later.histograms["lat"].cumulative = {{1.0, 10.0}, {2.0, 30.0}, {inf, 30.0}};
  const MetricsDelta delta(earlier, later);
  EXPECT_DOUBLE_EQ(delta.histogram_count_delta("lat"), 20.0);
  EXPECT_DOUBLE_EQ(delta.histogram_quantile("lat", 0.5), 1.5);
  EXPECT_NEAR(delta.histogram_quantile("lat", 0.99), 1.99, 1e-9);
  // A lifetime quantile over `later` alone would sit near 1.0/2.0 split;
  // the interval p50 of 1.5 proves the earlier curve was subtracted.
}

TEST(MetricsDeltaTest, OverflowGrowthReportsLastFiniteBound) {
  const double inf = std::numeric_limits<double>::infinity();
  MetricsSnapshot earlier;
  MetricsSnapshot later;
  earlier.at_seconds = 0.0;
  later.at_seconds = 1.0;
  earlier.histograms["lat"].count = 0.0;
  earlier.histograms["lat"].cumulative = {{1.0, 0.0}, {inf, 0.0}};
  later.histograms["lat"].count = 4.0;
  later.histograms["lat"].cumulative = {{1.0, 0.0}, {inf, 4.0}};
  const MetricsDelta delta(earlier, later);
  EXPECT_DOUBLE_EQ(delta.histogram_quantile("lat", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(delta.histogram_quantile("lat", 0.99), 1.0);
}

TEST(MetricsDeltaTest, EmptyIntervalQuantileIsZero) {
  const MetricsSnapshot snap = metrics().snapshot();
  const MetricsDelta delta(snap, snap);
  EXPECT_DOUBLE_EQ(delta.histogram_quantile("test.snap.hist", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(delta.rate("test.snap.counter"), 0.0);
}

}  // namespace
}  // namespace misuse

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

// Every instrument in these tests gets a unique name so the tests stay
// independent of execution order (the registry is process-global).

class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : saved_(metrics_enabled()) {}
  ~MetricsEnabledGuard() { set_metrics_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Counter, IncrementAndReset) {
  Counter& c = metrics().counter("test.counter.basic");
  c.reset();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = metrics().counter("test.counter.identity");
  Counter& b = metrics().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = metrics().gauge("test.gauge.identity");
  Gauge& g2 = metrics().gauge("test.gauge.identity");
  EXPECT_EQ(&g1, &g2);
  HistogramMetric& h1 = metrics().histogram("test.histogram.identity");
  HistogramMetric& h2 = metrics().histogram("test.histogram.identity");
  EXPECT_EQ(&h1, &h2);
}

TEST(Counter, ConcurrentIncrementsFromThreadPoolAreExact) {
  Counter& c = metrics().counter("test.counter.concurrent");
  c.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 1000;
  pool.parallel_for(0, kTasks, [&](std::size_t i) { c.inc(i % 3 + 1); });
  // sum over i of (i % 3 + 1): 334 ones, 333 twos, 333 threes.
  EXPECT_EQ(c.value(), 334u * 1 + 333u * 2 + 333u * 3);
}

TEST(Counter, DisabledRecordingIsDropped) {
  MetricsEnabledGuard guard;
  Counter& c = metrics().counter("test.counter.disabled");
  c.reset();
  set_metrics_enabled(false);
  c.inc(5);
  EXPECT_EQ(c.value(), 0u);
  set_metrics_enabled(true);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, SetTracksValueAndHighWater) {
  Gauge& g = metrics().gauge("test.gauge.basic");
  g.reset();
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 7);
  g.add(10);
  EXPECT_EQ(g.value(), 13);
  EXPECT_EQ(g.high_water(), 13);
  g.add(-5);
  EXPECT_EQ(g.value(), 8);
  EXPECT_EQ(g.high_water(), 13);
}

TEST(Gauge, ConcurrentAddsBalanceOut) {
  Gauge& g = metrics().gauge("test.gauge.concurrent");
  g.reset();
  ThreadPool pool(4);
  pool.parallel_for(0, 500, [&](std::size_t) {
    g.add(1);
    g.add(-1);
  });
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.high_water(), 1);
}

TEST(HistogramMetric, ExponentialBuckets) {
  const auto bounds = exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(HistogramMetric, RecordsIntoCorrectBuckets) {
  HistogramMetric& h = metrics().histogram("test.histogram.buckets", {1.0, 2.0, 4.0});
  h.reset();
  h.record(0.5);   // <= 1.0
  h.record(1.0);   // <= 1.0 (bound is inclusive)
  h.record(3.0);   // <= 4.0
  h.record(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
}

TEST(HistogramMetric, EmptyQuantileIsZero) {
  HistogramMetric& h = metrics().histogram("test.histogram.empty", {1.0, 2.0});
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramMetric, SingleBucketQuantileInterpolates) {
  HistogramMetric& h = metrics().histogram("test.histogram.single", {10.0});
  h.reset();
  h.record(5.0);
  h.record(5.0);
  // Both samples are in [0, 10]; the median interpolates to the middle.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramMetric, OverflowQuantileReportsLastBound) {
  HistogramMetric& h = metrics().histogram("test.histogram.overflow", {1.0, 2.0});
  h.reset();
  h.record(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramMetric, QuantileWalksCumulativeCounts) {
  HistogramMetric& h = metrics().histogram("test.histogram.cumulative", {1.0, 2.0, 3.0, 4.0});
  h.reset();
  for (int i = 0; i < 10; ++i) h.record(0.5);  // bucket (0, 1]
  for (int i = 0; i < 10; ++i) h.record(3.5);  // bucket (3, 4]
  // p25 sits inside the first bucket, p75 inside the fourth.
  EXPECT_GT(h.quantile(0.25), 0.0);
  EXPECT_LE(h.quantile(0.25), 1.0);
  EXPECT_GT(h.quantile(0.75), 3.0);
  EXPECT_LE(h.quantile(0.75), 4.0);
}

TEST(HistogramMetric, ConcurrentRecordsCountExactly) {
  HistogramMetric& h = metrics().histogram("test.histogram.concurrent", {0.25, 0.5, 1.0});
  h.reset();
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 800;
  // 0.125 has an exact double representation, so the sum is exact even
  // under the CAS-add and the equality below is safe.
  pool.parallel_for(0, kTasks, [&](std::size_t) { h.record(0.125); });
  EXPECT_EQ(h.count(), kTasks);
  EXPECT_DOUBLE_EQ(h.sum(), 0.125 * static_cast<double>(kTasks));
  EXPECT_EQ(h.bucket_count(0), kTasks);
}

TEST(HistogramMetric, DisabledRecordingIsDropped) {
  MetricsEnabledGuard guard;
  HistogramMetric& h = metrics().histogram("test.histogram.disabled", {1.0});
  h.reset();
  set_metrics_enabled(false);
  h.record(0.5);
  EXPECT_EQ(h.count(), 0u);
  set_metrics_enabled(true);
  h.record(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramMetric, LatencyBucketsAreAscending) {
  const auto& bounds = latency_buckets();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(MetricsRegistry, WriteJsonProducesBalancedDocument) {
  metrics().counter("test.json.counter").inc(3);
  metrics().gauge("test.json.gauge").set(4);
  metrics().histogram("test.json.histogram", {1.0}).record(0.5);
  std::ostringstream out;
  {
    JsonWriter json(out);
    metrics().write_json(json);
  }
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"test.json.counter\""), std::string::npos);
  // Structural sanity: braces and brackets balance (no string in the
  // document contains them, so plain counting is enough here).
  int braces = 0;
  int brackets = 0;
  for (const char ch : doc) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferencesValid) {
  Counter& c = metrics().counter("test.registry.reset");
  c.inc(9);
  metrics().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &metrics().counter("test.registry.reset"));
}

}  // namespace
}  // namespace misuse

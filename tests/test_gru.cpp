#include "nn/gru.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/grad_check.hpp"
#include "nn/next_action_model.hpp"

namespace misuse::nn {
namespace {

std::vector<std::vector<int>> make_tokens(std::initializer_list<std::initializer_list<int>> rows) {
  std::vector<std::vector<int>> out;
  for (const auto& r : rows) out.emplace_back(r);
  return out;
}

TEST(Gru, ForwardShapes) {
  Rng rng(1);
  Gru gru(5, 3, rng);
  gru.forward(make_tokens({{0, 1}, {2, 3}, {4, 0}}));
  EXPECT_EQ(gru.steps(), 3u);
  EXPECT_EQ(gru.batch(), 2u);
  EXPECT_EQ(gru.hidden_at(0).rows(), 2u);
  EXPECT_EQ(gru.hidden_at(0).cols(), 3u);
}

TEST(Gru, HiddenOutputsBoundedByTanh) {
  Rng rng(2);
  Gru gru(8, 16, rng);
  std::vector<std::vector<int>> tokens(60, std::vector<int>{3});
  gru.forward(tokens);
  // h is a convex combination of tanh candidates => |h| <= 1.
  for (std::size_t t = 0; t < gru.steps(); ++t) {
    for (float v : gru.hidden_at(t).flat()) {
      ASSERT_LE(std::abs(v), 1.0f + 1e-6f);
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(Gru, StreamingStepMatchesBatchedForward) {
  Rng rng(3);
  Gru gru(7, 9, rng);
  const std::vector<int> sequence = {1, 4, 2, 6, 0, 3};
  std::vector<std::vector<int>> tokens;
  for (int a : sequence) tokens.push_back({a});
  gru.forward(tokens);
  LstmState state(1, 9);
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    gru.step({sequence[t]}, state);
    for (std::size_t j = 0; j < 9; ++j) {
      ASSERT_NEAR(state.h(0, j), gru.hidden_at(t)(0, j), 1e-6f) << "t=" << t;
    }
  }
}

TEST(Gru, DenseForwardMatchesTokenForwardOnOneHot) {
  // Feeding explicit one-hot rows through the dense path must equal the
  // token path.
  Rng rng(4);
  Gru gru(4, 5, rng);
  const std::vector<int> sequence = {2, 0, 3, 1};
  std::vector<std::vector<int>> tokens;
  std::vector<Matrix> onehot;
  for (int a : sequence) {
    tokens.push_back({a});
    Matrix x(1, 4);
    x(0, static_cast<std::size_t>(a)) = 1.0f;
    onehot.push_back(std::move(x));
  }
  gru.forward(tokens);
  std::vector<Matrix> h_token;
  for (std::size_t t = 0; t < 4; ++t) h_token.push_back(gru.hidden_at(t));
  gru.forward_dense(onehot);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(h_token[t](0, j), gru.hidden_at(t)(0, j), 1e-6f);
    }
  }
}

TEST(Gru, BackwardProducesFiniteNonzeroGrads) {
  Rng rng(5);
  Gru gru(6, 5, rng);
  gru.forward(make_tokens({{0, 1}, {2, 3}, {4, 5}}));
  std::vector<Matrix> d_hidden(3, Matrix(2, 5, 0.1f));
  zero_grads(gru.params());
  gru.backward(d_hidden);
  for (auto* p : gru.params()) {
    float abs_sum = 0.0f;
    for (float g : p->grad.flat()) {
      ASSERT_TRUE(std::isfinite(g));
      abs_sum += std::abs(g);
    }
    EXPECT_GT(abs_sum, 0.0f) << p->name;
  }
}

TEST(Gru, SaveLoadPreservesBehavior) {
  Rng rng(6);
  Gru gru(6, 7, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  gru.save(w);
  BinaryReader r(buf);
  Gru loaded = Gru::load(r);
  const auto tokens = make_tokens({{2}, {5}, {1}});
  gru.forward(tokens);
  loaded.forward(tokens);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_TRUE(gru.hidden_at(t) == loaded.hidden_at(t));
  }
}

// Full-model gradient checks with the GRU cell.
GradCheckReport check_gru_model(std::size_t vocab, std::size_t hidden, std::size_t t_steps,
                                std::size_t batch, std::size_t layers, std::uint64_t seed) {
  Rng rng(seed);
  ModelConfig config{.vocab = vocab,
                     .hidden = hidden,
                     .layers = layers,
                     .cell = CellKind::kGru,
                     .dropout = 0.0f};
  NextActionModel model(config, rng);
  SequenceBatch data;
  data.tokens.resize(t_steps);
  data.targets.resize(t_steps);
  for (std::size_t t = 0; t < t_steps; ++t) {
    data.tokens[t].resize(batch);
    data.targets[t].resize(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      data.tokens[t][b] = static_cast<int>(rng.uniform_index(vocab));
      data.targets[t][b] = static_cast<int>(rng.uniform_index(vocab));
    }
  }
  Sgd noop(1e-12f);
  Rng dropout_rng(1);
  model.train_batch(data, noop, dropout_rng, 0.0f);
  const auto loss = [&]() { return model.evaluate(data).mean_loss(); };
  Rng check_rng(seed + 1);
  GradCheckOptions options;
  options.samples_per_param = 16;
  return check_gradients(model.params(), loss, check_rng, options);
}

TEST(Gru, GradientCheckSingleLayer) {
  const auto report = check_gru_model(5, 4, 6, 3, 1, 900);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(Gru, GradientCheckStacked) {
  const auto report = check_gru_model(4, 3, 5, 2, 2, 901);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(Gru, ModelLearnsDeterministicCycle) {
  Rng rng(7);
  ModelConfig config{.vocab = 5, .hidden = 16, .cell = CellKind::kGru, .dropout = 0.0f};
  NextActionModel model(config, rng);
  Adam adam(0.01f);
  SequenceBatch batch;
  const std::size_t t_steps = 10, bsz = 5;
  batch.tokens.resize(t_steps);
  batch.targets.resize(t_steps);
  for (std::size_t t = 0; t < t_steps; ++t) {
    for (std::size_t i = 0; i < bsz; ++i) {
      const int cur = static_cast<int>((t + i) % 5);
      batch.tokens[t].push_back(cur);
      batch.targets[t].push_back((cur + 1) % 5);
    }
  }
  for (int epoch = 0; epoch < 200; ++epoch) model.train_batch(batch, adam, rng);
  EXPECT_GT(model.evaluate(batch).accuracy(), 0.95);
}

TEST(Gru, ModelSaveLoadRoundTrip) {
  Rng rng(8);
  ModelConfig config{.vocab = 8, .hidden = 6, .cell = CellKind::kGru, .dropout = 0.2f};
  NextActionModel model(config, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  model.save(w);
  BinaryReader r(buf);
  NextActionModel loaded = NextActionModel::load(r);
  EXPECT_EQ(loaded.config().cell, CellKind::kGru);
  const std::vector<int> session = {1, 7, 3, 0, 5};
  const auto a = model.score_session(session);
  const auto b = loaded.score_session(session);
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size());
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_EQ(a.likelihoods[i], b.likelihoods[i]);
  }
}

TEST(Gru, CellKindNames) {
  EXPECT_STREQ(cell_kind_name(CellKind::kLstm), "lstm");
  EXPECT_STREQ(cell_kind_name(CellKind::kGru), "gru");
}

}  // namespace
}  // namespace misuse::nn

// TCP helpers (util/socket.hpp): loopback stream round-trips, EINTR and
// partial-write hardening (forced via failpoints), half-close semantics,
// and the retry-with-backoff connect path the replay client uses.
#include "util/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/failpoint.hpp"
#include "util/line_io.hpp"

namespace misuse {
namespace {

/// Echo server on an ephemeral loopback port: reads lines until EOF,
/// echoes each back prefixed with "ack:".
class EchoServer {
 public:
  EchoServer() : listener_(TcpListener::bind(0, "127.0.0.1")) {
    thread_ = std::thread([this] {
      while (auto stream = listener_.accept()) {
        LineReader reader(stream->io());
        std::string line;
        while (reader.next(line)) {
          // Flush per line (like the real TCP handler): reading EOF puts
          // the shared iostream into fail state, after which a deferred
          // flush would be silently swallowed.
          stream->io() << "ack:" << line << "\n";
          stream->io().flush();
        }
      }
    });
  }
  ~EchoServer() {
    listener_.close();
    thread_.join();
  }

  std::uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread thread_;
};

TEST(Socket, LoopbackRoundtrip) {
  EchoServer server;
  TcpStream client = tcp_connect("127.0.0.1", server.port());
  client.io() << "hello\nworld\n";
  client.shutdown_write();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:hello");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:world");
  EXPECT_FALSE(reader.next(line));
}

TEST(Socket, LargePayloadSurvivesBuffering) {
  // Push well past FdStreamBuf's internal buffer so the flush path's
  // write loop actually iterates.
  EchoServer server;
  TcpStream client = tcp_connect("127.0.0.1", server.port());
  const std::string payload(1 << 16, 'x');
  client.io() << payload << "\n";
  client.shutdown_write();
  LineReader reader(client.io(), (1 << 16) + 8);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:" + payload);
}

/// An ephemeral port with nothing listening on it anymore.
std::uint16_t dead_port() {
  TcpListener listener = TcpListener::bind(0, "127.0.0.1");
  return listener.port();  // released when the listener destructs
}

TEST(Socket, ConnectToClosedPortThrows) {
  EXPECT_THROW(tcp_connect("127.0.0.1", dead_port()), std::runtime_error);
}

TEST(Socket, RetryGivesUpAfterBudget) {
  RetryConfig retry;
  retry.attempts = 3;
  retry.base_delay_seconds = 0.001;
  retry.max_delay_seconds = 0.002;
  EXPECT_THROW(tcp_connect_retry("127.0.0.1", dead_port(), retry), std::runtime_error);
}

TEST(Socket, RetrySucceedsAfterTransientFailure) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  EchoServer server;
  // First connect attempt fails (injected ECONNREFUSED); the retry path
  // must back off and succeed on the second.
  failpoints::configure("socket.connect=nth:1");
  RetryConfig retry;
  retry.attempts = 3;
  retry.base_delay_seconds = 0.001;
  retry.seed = 7;
  TcpStream client = tcp_connect_retry("127.0.0.1", server.port(), retry);
  failpoints::clear();
  client.io() << "after-retry\n";
  client.shutdown_write();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:after-retry");
}

TEST(Socket, ShortWritesDeliverIntactData) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  EchoServer server;
  TcpStream client = tcp_connect("127.0.0.1", server.port());
  // Every flush degrades to 1-byte writes; the write loop must still
  // deliver the full payload.
  failpoints::configure("socket.write.short=always");
  const std::string payload(513, 'y');
  client.io() << payload << "\n";
  client.io().flush();
  failpoints::clear();
  client.shutdown_write();
  LineReader reader(client.io(), 2048);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:" + payload);
}

TEST(Socket, InjectedEintrOnReadIsRetried) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  EchoServer server;
  TcpStream client = tcp_connect("127.0.0.1", server.port());
  client.io() << "interrupted\n";
  client.shutdown_write();
  // The first read attempt takes an injected EINTR; underflow must
  // retry, not surface EOF.
  failpoints::configure("socket.read=nth:1");
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  failpoints::clear();
  EXPECT_EQ(line, "ack:interrupted");
}

TEST(Socket, InjectedWriteFailureSetsStreamError) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  EchoServer server;
  TcpStream client = tcp_connect("127.0.0.1", server.port());
  failpoints::configure("socket.write.fail=always");
  client.io() << std::string(1 << 15, 'z');  // force a flush mid-insert
  client.io().flush();
  failpoints::clear();
  // A dead peer must surface as a stream error, never a crash (SIGPIPE
  // is suppressed by MSG_NOSIGNAL / send flags in flush_out).
  EXPECT_FALSE(client.io().good());
}

TEST(Socket, ListenerCloseUnblocksAccept) {
  TcpListener listener = TcpListener::bind(0, "127.0.0.1");
  std::thread closer([&listener] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.close();
  });
  EXPECT_FALSE(listener.accept().has_value());
  closer.join();
}

}  // namespace
}  // namespace misuse

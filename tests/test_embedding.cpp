#include "nn/embedding.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace misuse::nn {
namespace {

TEST(Embedding, LookupSelectsRows) {
  Rng rng(1);
  Embedding e(5, 3, rng);
  Matrix out;
  e.lookup({2, 0, 2}, out);
  ASSERT_EQ(out.rows(), 3u);
  ASSERT_EQ(out.cols(), 3u);
  // Row 0 and row 2 are the same token's embedding.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out(0, j), out(2, j));
  }
  // Different tokens give (almost surely) different rows.
  bool differs = false;
  for (std::size_t j = 0; j < 3; ++j) differs |= (out(0, j) != out(1, j));
  EXPECT_TRUE(differs);
}

TEST(Embedding, PaddingMapsToZero) {
  Rng rng(2);
  Embedding e(4, 3, rng);
  Matrix out;
  e.lookup({-1, 1}, out);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(out(0, j), 0.0f);
}

TEST(Embedding, LookupRowMatchesBatchLookup) {
  Rng rng(3);
  Embedding e(6, 4, rng);
  Matrix batch, single;
  e.lookup({3}, batch);
  e.lookup_row(3, single);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(batch(0, j), single(0, j));
}

TEST(Embedding, BackwardAccumulatesIntoTokenRows) {
  Rng rng(4);
  Embedding e(4, 2, rng);
  zero_grads(e.params());
  Matrix d_out(3, 2);
  d_out(0, 0) = 1.0f;
  d_out(1, 0) = 10.0f;  // padding row: must be dropped
  d_out(2, 1) = 2.0f;
  e.backward({1, -1, 1}, d_out);
  const Matrix& grad = e.params()[0]->grad;
  EXPECT_EQ(grad(1, 0), 1.0f);
  EXPECT_EQ(grad(1, 1), 2.0f);
  for (std::size_t r = 0; r < 4; ++r) {
    if (r == 1) continue;
    EXPECT_EQ(grad(r, 0), 0.0f);
    EXPECT_EQ(grad(r, 1), 0.0f);
  }
}

TEST(Embedding, SaveLoadRoundTrip) {
  Rng rng(5);
  Embedding e(7, 3, rng);
  std::stringstream buf;
  BinaryWriter w(buf);
  e.save(w);
  BinaryReader r(buf);
  const Embedding loaded = Embedding::load(r);
  EXPECT_EQ(loaded.vocab(), 7u);
  EXPECT_EQ(loaded.dim(), 3u);
  Matrix a, b;
  e.lookup({4}, a);
  loaded.lookup({4}, b);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace misuse::nn

#include "core/evaluation.hpp"

#include <gtest/gtest.h>

namespace misuse::core {
namespace {

TEST(PositionCurve, MeansPerPosition) {
  PositionCurve curve(5);
  curve.add(0, 1.0);
  curve.add(0, 3.0);
  curve.add(1, 10.0);
  EXPECT_DOUBLE_EQ(curve.mean(0), 2.0);
  EXPECT_DOUBLE_EQ(curve.mean(1), 10.0);
  EXPECT_DOUBLE_EQ(curve.mean(2), 0.0);
  EXPECT_EQ(curve.count(0), 2u);
}

TEST(PositionCurve, IgnoresOutOfRangePositions) {
  PositionCurve curve(3);
  curve.add(7, 100.0);  // silently dropped
  EXPECT_EQ(curve.count(2), 0u);
}

TEST(PositionCurve, StddevMatchesSample) {
  PositionCurve curve(2);
  curve.add(0, 2.0);
  curve.add(0, 4.0);
  curve.add(0, 6.0);
  EXPECT_NEAR(curve.stddev(0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve.stddev(1), 0.0);
}

TEST(PositionCurve, UsableLengthRespectsMinCount) {
  PositionCurve curve(10);
  for (int i = 0; i < 5; ++i) curve.add(0, 1.0);
  for (int i = 0; i < 5; ++i) curve.add(1, 1.0);
  curve.add(2, 1.0);
  EXPECT_EQ(curve.usable_length(5), 2u);
  EXPECT_EQ(curve.usable_length(1), 3u);
  EXPECT_EQ(curve.usable_length(100), 0u);
}

TEST(AllIndices, EnumeratesRange) {
  const auto idx = all_indices(4);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(all_indices(0).empty());
}

TEST(SummarizeNormality, AggregatesScores) {
  ActionVocab vocab;
  vocab.intern("A");
  vocab.intern("B");
  SessionStore store(std::move(vocab));
  for (int i = 0; i < 3; ++i) {
    Session s;
    s.id = static_cast<std::uint64_t>(i);
    s.actions = {0, 1, 0};
    store.add(std::move(s));
  }
  const auto indices = all_indices(store.size());
  const auto summary = summarize_normality(store, indices, [](std::span<const int>) {
    nn::NextActionModel::SessionScore score;
    score.likelihoods = {0.5, 0.5};
    score.losses = {0.7, 0.7};
    return score;
  });
  EXPECT_EQ(summary.sessions, 3u);
  EXPECT_NEAR(summary.avg_likelihood, 0.5, 1e-12);
  EXPECT_NEAR(summary.avg_loss, 0.7, 1e-12);
  EXPECT_NEAR(summary.likelihood_stddev, 0.0, 1e-12);
}

TEST(SummarizeNormality, SkipsUnscorableSessions) {
  ActionVocab vocab;
  vocab.intern("A");
  SessionStore store(std::move(vocab));
  Session s;
  s.actions = {0};
  store.add(std::move(s));
  const auto indices = all_indices(1);
  const auto summary = summarize_normality(store, indices, [](std::span<const int>) {
    return nn::NextActionModel::SessionScore{};  // empty = unscorable
  });
  EXPECT_EQ(summary.sessions, 0u);
}

TEST(BaselineTraining, TrainsOnGivenIndices) {
  ActionVocab vocab;
  for (int i = 0; i < 4; ++i) vocab.intern("A" + std::to_string(i));
  SessionStore store(std::move(vocab));
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    Session s;
    s.id = static_cast<std::uint64_t>(i);
    for (int j = 0; j < 8; ++j) s.actions.push_back(j % 4);
    store.add(std::move(s));
  }
  lm::LmConfig config;
  config.hidden = 8;
  config.learning_rate = 0.01f;
  config.epochs = 25;
  config.patience = 0;
  config.batching.window = 16;
  config.batching.batch_size = 8;
  auto model = train_baseline_model(store, all_indices(store.size()), config,
                                    store.vocab().size(), 7);
  const auto stats = evaluate_model_on(model, store, all_indices(store.size()));
  EXPECT_GT(stats.predictions, 0u);
  EXPECT_GT(stats.accuracy, 0.8);  // deterministic cycle is learnable
}

}  // namespace
}  // namespace misuse::core

#include "topics/lda.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace misuse::topics {
namespace {

// Planted two-topic corpus: documents draw either from actions [0, 5) or
// from [5, 10) — LDA must separate them.
std::vector<std::vector<int>> planted_corpus(std::size_t docs_per_topic, std::size_t doc_len,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> docs;
  for (std::size_t group = 0; group < 2; ++group) {
    for (std::size_t d = 0; d < docs_per_topic; ++d) {
      std::vector<int> doc;
      for (std::size_t i = 0; i < doc_len; ++i) {
        doc.push_back(static_cast<int>(group * 5 + rng.uniform_index(5)));
      }
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

TEST(Lda, OutputShapes) {
  const auto docs = planted_corpus(20, 10, 1);
  LdaConfig config;
  config.topics = 3;
  config.iterations = 20;
  const LdaModel model = fit_lda(docs, 10, config);
  EXPECT_EQ(model.topics, 3u);
  EXPECT_EQ(model.vocab, 10u);
  EXPECT_EQ(model.topic_action.rows(), 3u);
  EXPECT_EQ(model.topic_action.cols(), 10u);
  EXPECT_EQ(model.doc_topic.rows(), docs.size());
  EXPECT_EQ(model.doc_topic.cols(), 3u);
}

TEST(Lda, RowsAreDistributions) {
  const auto docs = planted_corpus(15, 12, 2);
  LdaConfig config;
  config.topics = 4;
  config.iterations = 30;
  const LdaModel model = fit_lda(docs, 10, config);
  for (std::size_t t = 0; t < model.topics; ++t) {
    double sum = 0.0;
    for (float p : model.topic_action.row(t)) {
      EXPECT_GT(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  for (std::size_t d = 0; d < docs.size(); ++d) {
    double sum = 0.0;
    for (float p : model.doc_topic.row(d)) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(Lda, DeterministicUnderFixedSeed) {
  const auto docs = planted_corpus(10, 8, 3);
  LdaConfig config;
  config.topics = 2;
  config.iterations = 25;
  config.seed = 99;
  const LdaModel a = fit_lda(docs, 10, config);
  const LdaModel b = fit_lda(docs, 10, config);
  EXPECT_TRUE(a.topic_action == b.topic_action);
  EXPECT_TRUE(a.doc_topic == b.doc_topic);
}

TEST(Lda, RecoversPlantedTopics) {
  const auto docs = planted_corpus(40, 20, 4);
  LdaConfig config;
  config.topics = 2;
  config.iterations = 100;
  const LdaModel model = fit_lda(docs, 10, config);

  // Every document's dominant topic must agree with its planted group.
  std::size_t agree = 0;
  const std::size_t t0 = model.dominant_topic(0);
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const bool first_group = d < 40;
    const bool assigned_t0 = model.dominant_topic(d) == t0;
    if (first_group == assigned_t0) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(docs.size()), 0.95);

  // And the topics' probability mass must concentrate on their group's
  // actions.
  for (std::size_t t = 0; t < 2; ++t) {
    double first_half = 0.0;
    for (std::size_t w = 0; w < 5; ++w) first_half += model.topic_action(t, w);
    EXPECT_TRUE(first_half > 0.9 || first_half < 0.1);
  }
}

TEST(Lda, GibbsImprovesLikelihoodOverRandomInit) {
  const auto docs = planted_corpus(30, 15, 5);
  LdaConfig short_run;
  short_run.topics = 2;
  short_run.iterations = 1;
  LdaConfig long_run = short_run;
  long_run.iterations = 80;
  const double ll_short = corpus_log_likelihood(fit_lda(docs, 10, short_run), docs);
  const double ll_long = corpus_log_likelihood(fit_lda(docs, 10, long_run), docs);
  EXPECT_GT(ll_long, ll_short);
}

TEST(Lda, EmptyDocumentsGetUniformTheta) {
  std::vector<std::vector<int>> docs = {{0, 1, 2}, {}};
  LdaConfig config;
  config.topics = 2;
  config.iterations = 10;
  const LdaModel model = fit_lda(docs, 5, config);
  EXPECT_NEAR(model.doc_topic(1, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(model.doc_topic(1, 1), 0.5f, 1e-5f);
}

TEST(Lda, TopActionsSortedByProbability) {
  const auto docs = planted_corpus(30, 20, 6);
  LdaConfig config;
  config.topics = 2;
  config.iterations = 60;
  const LdaModel model = fit_lda(docs, 10, config);
  const auto tops = model.top_actions(0, 5);
  ASSERT_EQ(tops.size(), 5u);
  for (std::size_t i = 1; i < tops.size(); ++i) {
    EXPECT_GE(model.topic_action(0, tops[i - 1]), model.topic_action(0, tops[i]));
  }
}

TEST(Lda, MedoidDocumentHasMaximalWeight) {
  const auto docs = planted_corpus(10, 10, 7);
  LdaConfig config;
  config.topics = 2;
  config.iterations = 40;
  const LdaModel model = fit_lda(docs, 10, config);
  for (std::size_t t = 0; t < 2; ++t) {
    const std::size_t medoid = model.medoid_document(t);
    for (std::size_t d = 0; d < docs.size(); ++d) {
      EXPECT_LE(model.doc_topic(d, t), model.doc_topic(medoid, t));
    }
  }
}

TEST(Lda, TopicCosineProperties) {
  const std::vector<float> a = {1.0f, 0.0f, 0.0f};
  const std::vector<float> b = {0.0f, 1.0f, 0.0f};
  EXPECT_NEAR(topic_cosine(a, a), 1.0, 1e-9);
  EXPECT_NEAR(topic_cosine(a, b), 0.0, 1e-9);
  const std::vector<float> zero = {0.0f, 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(topic_cosine(a, zero), 0.0);
}

TEST(Lda, SharedTopActionsSymmetricAndBounded) {
  const auto docs = planted_corpus(30, 15, 8);
  LdaConfig config;
  config.topics = 3;
  config.iterations = 50;
  const LdaModel model = fit_lda(docs, 10, config);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const std::size_t s = shared_top_actions(model, i, j, 4);
      EXPECT_LE(s, 4u);
      EXPECT_EQ(s, shared_top_actions(model, j, i, 4));
      if (i == j) {
        EXPECT_EQ(s, 4u);
      }
    }
  }
}

class LdaTopicCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LdaTopicCountSweep, TokenCountsConserved) {
  // The sampler must preserve total token counts: sum_k n_kw over topics
  // equals corpus counts; verified indirectly: phi-weighted token mass
  // reconstructs corpus size within rounding of the priors.
  const auto docs = planted_corpus(20, 10, GetParam());
  LdaConfig config;
  config.topics = GetParam();
  config.iterations = 15;
  const LdaModel model = fit_lda(docs, 10, config);
  EXPECT_EQ(model.topics, GetParam());
  for (std::size_t t = 0; t < model.topics; ++t) {
    for (float p : model.topic_action.row(t)) ASSERT_TRUE(std::isfinite(p));
  }
}

INSTANTIATE_TEST_SUITE_P(TopicCounts, LdaTopicCountSweep, ::testing::Values(1u, 2u, 5u, 13u, 20u));

}  // namespace
}  // namespace misuse::topics

#include "ocsvm/ocsvm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ocsvm/features.hpp"
#include "util/rng.hpp"

namespace misuse::ocsvm {
namespace {

// Gaussian blob around a center in d dimensions.
std::vector<std::vector<float>> blob(std::size_t n, std::size_t dim, double center, double spread,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out(n, std::vector<float>(dim));
  for (auto& x : out) {
    for (auto& v : x) v = static_cast<float>(rng.normal(center, spread));
  }
  return out;
}

TEST(Kernel, LinearIsDotProduct) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_NEAR(kernel_value(KernelKind::kLinear, 0.0, a, b), 32.0, 1e-9);
}

TEST(Kernel, RbfIsOneAtZeroDistance) {
  const std::vector<float> a = {1, 2};
  EXPECT_NEAR(kernel_value(KernelKind::kRbf, 0.5, a, a), 1.0, 1e-12);
}

TEST(Kernel, RbfDecaysWithDistance) {
  const std::vector<float> a = {0, 0};
  const std::vector<float> near = {0.1f, 0.0f};
  const std::vector<float> far = {3.0f, 3.0f};
  const double k_near = kernel_value(KernelKind::kRbf, 1.0, a, near);
  const double k_far = kernel_value(KernelKind::kRbf, 1.0, a, far);
  EXPECT_GT(k_near, k_far);
  EXPECT_GT(k_far, 0.0);
}

OcSvmConfig quick_config(double nu = 0.1) {
  OcSvmConfig config;
  config.nu = nu;
  config.gamma = 1.0;
  return config;
}

TEST(OcSvm, InliersScoreHigherThanOutliers) {
  const auto train = blob(120, 4, 0.0, 0.3, 1);
  const auto svm = OneClassSvm::train(train, quick_config());

  const auto inliers = blob(40, 4, 0.0, 0.3, 2);
  const auto outliers = blob(40, 4, 4.0, 0.3, 3);
  double inlier_mean = 0.0, outlier_mean = 0.0;
  for (const auto& x : inliers) inlier_mean += svm.score(x);
  for (const auto& x : outliers) outlier_mean += svm.score(x);
  inlier_mean /= 40.0;
  outlier_mean /= 40.0;
  EXPECT_GT(inlier_mean, outlier_mean);
  EXPECT_GT(inlier_mean, 0.0);
  EXPECT_LT(outlier_mean, 0.0);
}

TEST(OcSvm, NuPropertyBoundsTrainingOutliers) {
  for (const double nu : {0.05, 0.1, 0.25, 0.5}) {
    const auto train = blob(200, 3, 0.0, 0.5, 7);
    const auto svm = OneClassSvm::train(train, quick_config(nu));
    // The nu-property: the fraction of training outliers is at most ~nu
    // (allow slack for finite samples and solver tolerance).
    EXPECT_LE(svm.training_outlier_fraction(), nu + 0.08) << "nu=" << nu;
  }
}

TEST(OcSvm, HigherNuMeansMoreTrainingOutliers) {
  const auto train = blob(200, 3, 0.0, 0.5, 8);
  const auto tight = OneClassSvm::train(train, quick_config(0.02));
  const auto loose = OneClassSvm::train(train, quick_config(0.5));
  EXPECT_LE(tight.training_outlier_fraction(), loose.training_outlier_fraction() + 1e-9);
}

TEST(OcSvm, SupportVectorCountBounded) {
  const auto train = blob(150, 3, 0.0, 0.4, 9);
  const auto svm = OneClassSvm::train(train, quick_config(0.2));
  EXPECT_GT(svm.support_vector_count(), 0u);
  EXPECT_LE(svm.support_vector_count(), 150u);
}

TEST(OcSvm, AutoGammaDefaultsToInverseDim) {
  const auto train = blob(50, 8, 0.0, 0.5, 10);
  OcSvmConfig config;
  config.nu = 0.1;
  config.gamma = 0.0;  // auto
  const auto svm = OneClassSvm::train(train, config);
  EXPECT_EQ(svm.dim(), 8u);
  // No direct accessor for gamma; behaviorally: scoring must be finite.
  EXPECT_TRUE(std::isfinite(svm.score(train[0])));
}

TEST(OcSvm, SubsamplingKeepsTrainingTractable) {
  const auto train = blob(500, 3, 0.0, 0.4, 11);
  OcSvmConfig config = quick_config();
  config.max_training_points = 100;
  const auto svm = OneClassSvm::train(train, config);
  EXPECT_LE(svm.support_vector_count(), 100u);
  // Still a sane decision function.
  const auto far = blob(10, 3, 5.0, 0.1, 12);
  for (const auto& x : far) EXPECT_LT(svm.score(x), 0.0);
}

TEST(OcSvm, DeterministicForFixedSeed) {
  const auto train = blob(300, 3, 0.0, 0.4, 13);
  OcSvmConfig config = quick_config();
  config.max_training_points = 150;
  config.seed = 77;
  const auto a = OneClassSvm::train(train, config);
  const auto b = OneClassSvm::train(train, config);
  const auto probe = blob(5, 3, 1.0, 0.5, 14);
  for (const auto& x : probe) EXPECT_DOUBLE_EQ(a.score(x), b.score(x));
}

TEST(OcSvm, LinearKernelWorks) {
  auto train = blob(100, 2, 1.0, 0.2, 15);
  OcSvmConfig config;
  config.nu = 0.1;
  config.kernel = KernelKind::kLinear;
  const auto svm = OneClassSvm::train(train, config);
  // In-distribution point scores above a far-away one.
  const std::vector<float> in = {1.0f, 1.0f};
  const std::vector<float> out = {-3.0f, -3.0f};
  EXPECT_GT(svm.score(in), svm.score(out));
}

TEST(OcSvm, SaveLoadRoundTripsScores) {
  const auto train = blob(80, 4, 0.0, 0.4, 16);
  const auto svm = OneClassSvm::train(train, quick_config());
  std::stringstream buf;
  BinaryWriter w(buf);
  svm.save(w);
  BinaryReader r(buf);
  const auto loaded = OneClassSvm::load(r);
  const auto probe = blob(10, 4, 0.5, 0.5, 17);
  for (const auto& x : probe) EXPECT_DOUBLE_EQ(svm.score(x), loaded.score(x));
}

TEST(Featurizer, HistogramIsL2Normalized) {
  SessionFeaturizer f({.vocab = 5, .normalize = true, .length_feature_weight = 0.0});
  const std::vector<int> actions = {0, 0, 1, 2};
  const auto x = f.featurize(actions);
  ASSERT_EQ(x.size(), 5u);
  double norm = 0.0;
  for (float v : x) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(norm, 1.0, 1e-6);
  EXPECT_GT(x[0], x[1]);  // action 0 appears twice
  EXPECT_FLOAT_EQ(x[3], 0.0f);
}

TEST(Featurizer, RawCountsByDefault) {
  SessionFeaturizer f({.vocab = 4});
  const std::vector<int> actions = {0, 0, 2, 0};
  const auto x = f.featurize(actions);
  ASSERT_EQ(x.size(), 4u);
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
}

TEST(Featurizer, RawCountsGrowWithPrefixLength) {
  // The property behind the paper's Fig. 6: long prefixes drift away from
  // typical (short) training sessions in raw-count space.
  SessionFeaturizer f({.vocab = 3});
  std::vector<int> prefix;
  double prev_norm = 0.0;
  for (int i = 0; i < 50; ++i) {
    prefix.push_back(i % 3);
    const auto x = f.featurize(prefix);
    double norm = 0.0;
    for (float v : x) norm += static_cast<double>(v) * v;
    EXPECT_GT(norm, prev_norm);
    prev_norm = norm;
  }
}

TEST(Featurizer, PermutationInvariant) {
  SessionFeaturizer f({.vocab = 6, .length_feature_weight = 0.1});
  const std::vector<int> a = {1, 2, 3, 1};
  const std::vector<int> b = {1, 1, 3, 2};
  EXPECT_EQ(f.featurize(a), f.featurize(b));
}

TEST(Featurizer, LengthFeatureAppendsDimension) {
  SessionFeaturizer with({.vocab = 4, .length_feature_weight = 0.1});
  SessionFeaturizer without({.vocab = 4, .length_feature_weight = 0.0});
  EXPECT_EQ(with.dim(), 5u);
  EXPECT_EQ(without.dim(), 4u);
  const std::vector<int> actions = {0, 1};
  EXPECT_NEAR(with.featurize(actions)[4], 0.1 * std::log1p(2.0), 1e-6);
}

TEST(Featurizer, EmptySessionIsZeroHistogram) {
  SessionFeaturizer f({.vocab = 3, .length_feature_weight = 0.0});
  const auto x = f.featurize(std::vector<int>{});
  for (float v : x) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Featurizer, IncrementalMatchesBatch) {
  SessionFeaturizer f({.vocab = 6, .length_feature_weight = 0.1});
  const std::vector<int> actions = {2, 4, 2, 0, 5, 1, 1};
  auto inc = SessionFeaturizer::Incremental(f);
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const auto streamed = inc.push(actions[i]);
    const auto batch = f.featurize(std::span<const int>(actions.data(), i + 1));
    ASSERT_EQ(streamed.size(), batch.size());
    for (std::size_t j = 0; j < batch.size(); ++j) {
      EXPECT_NEAR(streamed[j], batch[j], 1e-6f) << "prefix " << i + 1 << " dim " << j;
    }
  }
}

TEST(Featurizer, IncrementalResetStartsOver) {
  SessionFeaturizer f({.vocab = 3, .length_feature_weight = 0.0});
  auto inc = SessionFeaturizer::Incremental(f);
  inc.push(0);
  inc.push(1);
  inc.reset();
  EXPECT_EQ(inc.length(), 0u);
  const auto x = inc.push(2);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
}

}  // namespace
}  // namespace misuse::ocsvm

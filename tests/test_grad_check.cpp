// Finite-difference certification of the hand-derived backward passes —
// the most important tests in the repository: every experimental result
// depends on these gradients being right.
#include "nn/grad_check.hpp"

#include <gtest/gtest.h>

#include "nn/next_action_model.hpp"

namespace misuse::nn {
namespace {

// Builds a small batch with mixed padding and ignored targets.
SequenceBatch make_batch(std::size_t vocab, std::size_t t_steps, std::size_t batch, Rng& rng,
                         bool with_padding) {
  SequenceBatch b;
  b.tokens.resize(t_steps);
  b.targets.resize(t_steps);
  for (std::size_t t = 0; t < t_steps; ++t) {
    b.tokens[t].resize(batch);
    b.targets[t].resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const bool pad = with_padding && t < i;  // staggered left padding
      b.tokens[t][i] = pad ? kPadToken : static_cast<int>(rng.uniform_index(vocab));
      b.targets[t][i] = pad ? kIgnoreTarget : static_cast<int>(rng.uniform_index(vocab));
    }
  }
  return b;
}

// Gradient check harness: analytic grads via a single backward pass (no
// optimizer step, no dropout), numeric grads via evaluate().
GradCheckReport check_model(std::size_t vocab, std::size_t hidden, std::size_t t_steps,
                            std::size_t batch, bool with_padding, std::uint64_t seed,
                            std::size_t layers = 1, std::size_t embedding_dim = 0) {
  Rng rng(seed);
  ModelConfig config{.vocab = vocab,
                     .hidden = hidden,
                     .layers = layers,
                     .embedding_dim = embedding_dim,
                     .dropout = 0.0f};
  NextActionModel model(config, rng);
  const SequenceBatch data = make_batch(vocab, t_steps, batch, rng, with_padding);

  // Populate analytic gradients with a throwaway optimizer whose lr is
  // zero-effect: use SGD with lr tiny then undo? Cleaner: run train_batch
  // with lr so small the parameter change is negligible relative to the
  // finite-difference epsilon.
  Sgd noop(1e-12f);
  Rng dropout_rng(1);
  model.train_batch(data, noop, dropout_rng, /*clip_norm=*/0.0f);

  const auto loss = [&]() { return model.evaluate(data).mean_loss(); };
  Rng check_rng(seed + 1);
  GradCheckOptions options;
  options.samples_per_param = 20;
  return check_gradients(model.params(), loss, check_rng, options);
}

TEST(GradCheck, TinyModelNoPadding) {
  const auto report = check_model(3, 2, 4, 2, false, 100);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
  EXPECT_GT(report.checked, 0u);
}

TEST(GradCheck, SmallModelNoPadding) {
  const auto report = check_model(6, 5, 6, 3, false, 200);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, WithLeftPaddingAndIgnoredTargets) {
  const auto report = check_model(5, 4, 6, 4, true, 300);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, LongerSequenceBptt) {
  const auto report = check_model(4, 3, 12, 2, false, 400);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, StackedTwoLayerModel) {
  const auto report = check_model(5, 4, 6, 3, false, 500, /*layers=*/2);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, StackedThreeLayerModelWithPadding) {
  const auto report = check_model(4, 3, 5, 2, true, 600, /*layers=*/3);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, EmbeddingModel) {
  const auto report = check_model(6, 4, 5, 3, false, 700, /*layers=*/1, /*embedding_dim=*/3);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

TEST(GradCheck, EmbeddingPlusStackedLayersWithPadding) {
  const auto report = check_model(5, 3, 6, 2, true, 800, /*layers=*/2, /*embedding_dim=*/4);
  EXPECT_TRUE(report.ok()) << report.worst_coordinate;
}

class GradCheckSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GradCheckSweep, RandomConfigurations) {
  Rng rng(GetParam());
  const std::size_t vocab = 2 + rng.uniform_index(6);
  const std::size_t hidden = 1 + rng.uniform_index(6);
  const std::size_t t_steps = 2 + rng.uniform_index(8);
  const std::size_t batch = 1 + rng.uniform_index(4);
  const bool padding = rng.bernoulli(0.5);
  const auto report = check_model(vocab, hidden, t_steps, batch, padding, GetParam() * 7 + 1);
  EXPECT_TRUE(report.ok()) << "vocab=" << vocab << " hidden=" << hidden << " T=" << t_steps
                           << " B=" << batch << " pad=" << padding << " worst "
                           << report.worst_coordinate;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace misuse::nn

// EpollLoop hardening tests: the nonblocking NDJSON front end must
// survive adversarial producers (slow-loris drips, oversized lines,
// half-closes, consumers that stop reading) and high connection churn
// without leaking a connection or stalling the loop thread. Scoring
// byte-identity between --io=epoll and --io=threads is pinned
// separately in test_serve_process.cpp; these tests exercise the loop
// in isolation with an echo handler.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/epoll_loop.hpp"
#include "util/line_io.hpp"
#include "util/socket.hpp"

namespace misuse::serve {
namespace {

using namespace std::chrono_literals;

/// Runs an EpollLoop on its own thread; the default handler echoes
/// every line back as "ack:<line>\n".
class EpollFixture : public ::testing::Test {
 protected:
  void SetUp() override { std::signal(SIGPIPE, SIG_IGN); }

  void start(EpollConfig config = {}, EpollHandlers handlers = {}) {
    config.host = "127.0.0.1";
    if (!handlers.on_line) {
      handlers.on_line = [this](std::uint64_t conn, std::string_view line, std::string& replies) {
        last_conn_.store(conn, std::memory_order_relaxed);
        lines_seen_.fetch_add(1, std::memory_order_relaxed);
        replies.append("ack:");
        replies.append(line);
        replies.push_back('\n');
      };
    }
    if (!handlers.on_close) {
      handlers.on_close = [this](std::uint64_t) {
        closes_seen_.fetch_add(1, std::memory_order_relaxed);
      };
    }
    loop_ = std::make_unique<EpollLoop>(config, std::move(handlers));
    thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_) loop_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  TcpStream connect() { return tcp_connect("127.0.0.1", loop_->port()); }

  /// Polls `pred` until true or the deadline passes.
  static bool eventually(const std::function<bool()>& pred, std::chrono::milliseconds limit = 5s) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(2ms);
    }
    return pred();
  }

  std::unique_ptr<EpollLoop> loop_;
  std::thread thread_;
  std::atomic<std::uint64_t> last_conn_{0};
  std::atomic<std::uint64_t> lines_seen_{0};
  std::atomic<std::uint64_t> closes_seen_{0};
};

TEST_F(EpollFixture, EchoesLinesAndFoldsCrlf) {
  start();
  TcpStream client = connect();
  client.io() << "alpha\r\n" << "beta\n";
  client.io().flush();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:alpha");  // CRLF folded: no '\r' in the frame
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:beta");
}

TEST_F(EpollFixture, SlowLorisPartialFramesAssembleOneLine) {
  start();
  TcpStream client = connect();
  const std::string payload = "slow-loris-frame-0123456789";
  for (char ch : payload) {
    ASSERT_EQ(::write(client.fd(), &ch, 1), 1);
    std::this_thread::sleep_for(1ms);  // every byte is its own read(2) on the loop
  }
  ASSERT_EQ(::write(client.fd(), "\n", 1), 1);
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:" + payload);
  EXPECT_EQ(lines_seen_.load(), 1u);  // one frame, not one per byte
}

TEST_F(EpollFixture, HalfCloseDeliversFinalUnterminatedLine) {
  start();
  TcpStream client = connect();
  client.io() << "first\n" << "tail-no-newline";
  client.io().flush();
  client.shutdown_write();  // peer EOF with a partial frame pending
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:first");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:tail-no-newline");
  EXPECT_FALSE(reader.next(line));  // server closed after the flush
  EXPECT_TRUE(eventually([this] { return closes_seen_.load() == 1; }));
}

TEST_F(EpollFixture, OversizedLinePoisonsConnection) {
  EpollConfig config;
  config.max_line_bytes = 64;
  start(config);
  TcpStream client = connect();
  const std::string oversized(256, 'x');  // no newline: an unbounded frame
  client.io() << oversized;
  client.io().flush();
  LineReader reader(client.io());
  std::string line;
  EXPECT_FALSE(reader.next(line));  // connection dropped, nothing echoed
  EXPECT_EQ(lines_seen_.load(), 0u);
  EXPECT_TRUE(eventually([this] { return closes_seen_.load() == 1; }));
}

TEST_F(EpollFixture, SlowConsumerPastOutputCapIsDisconnected) {
  EpollConfig config;
  config.max_output_bytes = 32 << 10;
  EpollHandlers handlers;
  const std::string big_reply(64 << 10, 'y');
  // By value: the loop thread outlives this scope (TearDown joins it),
  // so a by-reference capture would race the local's destruction.
  handlers.on_line = [big_reply](std::uint64_t, std::string_view, std::string& replies) {
    replies.append(big_reply);
    replies.push_back('\n');
  };
  start(config, std::move(handlers));
  TcpStream client = connect();
  // Never read; each request provokes a 64KB reply, so the backlog blows
  // the 32KB cap as soon as the kernel buffers fill.
  for (int i = 0; i < 256; ++i) {
    const char* req = "hit\n";
    if (::write(client.fd(), req, 4) < 0) break;  // server already hung up
    std::this_thread::sleep_for(1ms);
    if (loop_->overflowed_total() > 0) break;
  }
  EXPECT_TRUE(eventually([this] { return loop_->overflowed_total() >= 1; }));
  EXPECT_TRUE(eventually([this] { return closes_seen_.load() >= 1; }));
}

TEST_F(EpollFixture, PostedBacklogPastOutputCapIsDisconnected) {
  // Same slow-consumer contract as on_line replies, but through post():
  // in the router every verdict reaches the client via post, so a
  // client that stops reading must still hit the cap.
  EpollConfig config;
  config.max_output_bytes = 32 << 10;
  start(config);
  TcpStream client = connect();
  client.io() << "hello\n";
  client.io().flush();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));  // learns the connection id
  const std::uint64_t conn = last_conn_.load();
  ASSERT_NE(conn, 0u);
  // Stop reading and inject 64KB chunks from off-loop; once the kernel
  // socket buffer is full the backlog crosses the 32KB cap.
  const std::string chunk(64 << 10, 'z');
  for (int i = 0; i < 256; ++i) {
    if (!loop_->post(conn, chunk + "\n")) break;  // already retired
    std::this_thread::sleep_for(1ms);
    if (loop_->overflowed_total() > 0) break;
  }
  EXPECT_TRUE(eventually([this] { return loop_->overflowed_total() >= 1; }));
  EXPECT_TRUE(eventually([this] { return closes_seen_.load() >= 1; }));
  EXPECT_FALSE(loop_->post(conn, "after-retire\n"));
}

TEST_F(EpollFixture, PostInjectsOutputFromAnotherThread) {
  start();
  TcpStream client = connect();
  client.io() << "hello\n";
  client.io().flush();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "ack:hello");
  const std::uint64_t conn = last_conn_.load();
  ASSERT_NE(conn, 0u);
  EXPECT_TRUE(loop_->post(conn, "injected-1\ninjected-2\n"));
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "injected-1");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "injected-2");
  EXPECT_FALSE(loop_->post(conn + 999, "nobody\n"));  // unknown connection
}

TEST_F(EpollFixture, PostToRetiredConnectionIsRejected) {
  start();
  {
    TcpStream client = connect();
    client.io() << "hello\n";
    client.io().flush();
    LineReader reader(client.io());
    std::string line;
    ASSERT_TRUE(reader.next(line));
  }  // client gone
  const std::uint64_t conn = last_conn_.load();
  ASSERT_TRUE(eventually([this] { return closes_seen_.load() == 1; }));
  EXPECT_FALSE(loop_->post(conn, "too-late\n"));
}

TEST_F(EpollFixture, ConnectionChurnLeaksNothing) {
  start();
  constexpr int kSequential = 1000;
  for (int i = 0; i < kSequential; ++i) {
    TcpStream client = connect();
    client.io() << "churn-" << i << "\n";
    client.io().flush();
    LineReader reader(client.io());
    std::string line;
    ASSERT_TRUE(reader.next(line)) << "connection " << i;
    ASSERT_EQ(line, "ack:churn-" + std::to_string(i));
  }
  // A burst of concurrent connections on top of the sequential churn.
  constexpr int kConcurrent = 50;
  std::vector<std::thread> workers;
  std::atomic<int> ok{0};
  workers.reserve(kConcurrent);
  for (int i = 0; i < kConcurrent; ++i) {
    workers.emplace_back([this, i, &ok] {
      TcpStream client = connect();
      client.io() << "burst-" << i << "\n";
      client.io().flush();
      LineReader reader(client.io());
      std::string line;
      if (reader.next(line) && line == "ack:burst-" + std::to_string(i)) ok.fetch_add(1);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(ok.load(), kConcurrent);
  EXPECT_EQ(loop_->accepted_total(), static_cast<std::uint64_t>(kSequential + kConcurrent));
  EXPECT_TRUE(eventually([this] {
    return closes_seen_.load() == static_cast<std::uint64_t>(kSequential + kConcurrent);
  }));
  EXPECT_EQ(lines_seen_.load(), static_cast<std::uint64_t>(kSequential + kConcurrent));
}

TEST_F(EpollFixture, TwoConnectionsInterleaveIndependently) {
  start();
  TcpStream a = connect();
  TcpStream b = connect();
  LineReader reader_a(a.io());
  LineReader reader_b(b.io());
  std::string line;
  for (int round = 0; round < 20; ++round) {
    a.io() << "a-" << round << "\n";
    a.io().flush();
    b.io() << "b-" << round << "\n";
    b.io().flush();
    ASSERT_TRUE(reader_b.next(line));  // read b first: replies are per-connection
    EXPECT_EQ(line, "ack:b-" + std::to_string(round));
    ASSERT_TRUE(reader_a.next(line));
    EXPECT_EQ(line, "ack:a-" + std::to_string(round));
  }
}

TEST_F(EpollFixture, StopFlushesAndClosesEverything) {
  start();
  TcpStream client = connect();
  client.io() << "pre-stop\n";
  client.io().flush();
  LineReader reader(client.io());
  std::string line;
  ASSERT_TRUE(reader.next(line));
  loop_->request_stop();
  thread_.join();
  EXPECT_FALSE(reader.next(line));  // server side closed
  EXPECT_EQ(closes_seen_.load(), 1u);
  EXPECT_EQ(loop_->open_connections(), 0u);  // loop retired everything
}

}  // namespace
}  // namespace misuse::serve

// Crash safety of the streaming server (serve/wal.hpp): WAL record
// framing, torn-tail handling, snapshot round-trips, and the recovery
// invariant — a server restarted after a crash produces end-of-session
// reports identical to an uninterrupted run, at any shard count.
#include "serve/wal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "synth/portal.hpp"
#include "util/failpoint.hpp"

namespace misuse::serve {
namespace {

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "misusedet_wal_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Event make_event(const std::string& user, const std::string& session, const std::string& action,
                 double t) {
  Event e;
  e.user_id = user;
  e.session_id = session;
  e.action = action;
  e.timestamp = t;
  e.has_timestamp = true;
  return e;
}

TEST(WalFormat, EventRecordRoundtrip) {
  const std::string dir = scratch_dir("roundtrip");
  const std::string path = wal_path(dir, 0);
  {
    WalWriter writer(path, 1);
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.append(encode_event_record(make_event("u1", "s1", "ActionLogin", 1.5), 7)));
    EXPECT_TRUE(writer.append(encode_sweep_record(99.0, 8)));
    Event no_ts = make_event("u2", "s2", "3", 0.0);
    no_ts.has_timestamp = false;
    EXPECT_TRUE(writer.append(encode_event_record(no_ts, 9)));
  }
  const auto records = read_wal(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecord::kEvent);
  EXPECT_EQ(records[0].seq, 7u);
  EXPECT_EQ(records[0].event.user_id, "u1");
  EXPECT_EQ(records[0].event.session_id, "s1");
  EXPECT_EQ(records[0].event.action, "ActionLogin");
  EXPECT_TRUE(records[0].event.has_timestamp);
  EXPECT_EQ(records[0].event.timestamp, 1.5);
  EXPECT_EQ(records[1].type, WalRecord::kSweep);
  EXPECT_EQ(records[1].seq, 8u);
  EXPECT_EQ(records[1].sweep_now, 99.0);
  EXPECT_FALSE(records[2].event.has_timestamp);
}

TEST(WalFormat, TornTailIsDroppedCleanly) {
  const std::string dir = scratch_dir("torn");
  const std::string path = wal_path(dir, 0);
  {
    WalWriter writer(path, 1);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.append(encode_event_record(make_event("u", "s", "a", i), i + 1)));
    }
  }
  // Tear the last record: a crash mid-append leaves a short tail.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);
  const std::uint64_t torn_before = serve_metrics().wal_torn_records.value();
  const auto records = read_wal(path);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(serve_metrics().wal_torn_records.value() - torn_before, 1u);
}

TEST(WalFormat, CorruptPayloadStopsScan) {
  const std::string dir = scratch_dir("corrupt");
  const std::string path = wal_path(dir, 0);
  {
    WalWriter writer(path, 1);
    ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 0.0), 1)));
    ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "b", 1.0), 2)));
  }
  // Flip one payload byte of the second record: its CRC must reject it.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(-6, std::ios::end);
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(-6, std::ios::end);
  byte = static_cast<char>(byte ^ 0x40);
  file.write(&byte, 1);
  file.close();
  EXPECT_EQ(read_wal(path).size(), 1u);
}

TEST(WalFormat, MissingFileReadsEmpty) {
  EXPECT_TRUE(read_wal(scratch_dir("missing") + "/shard-0.wal").empty());
}

TEST(WalFormat, ResetTruncates) {
  const std::string dir = scratch_dir("reset");
  const std::string path = wal_path(dir, 0);
  WalWriter writer(path, 1);
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 0.0), 1)));
  writer.reset();
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "b", 1.0), 2)));
  const auto records = read_wal(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event.action, "b");
}

TEST(WalSnapshot, RoundtripAndAtomicity) {
  const std::string dir = scratch_dir("snap");
  ShardSnapshot snapshot;
  snapshot.watermark = 41;
  snapshot.clock = 123.5;
  snapshot.sessions.push_back({"u1", "s1", {1, 2, 3}, 10.0});
  snapshot.sessions.push_back({"u2", "s2", {}, 11.0});
  const std::string path = snapshot_path(dir, 0);
  ASSERT_TRUE(write_snapshot(path, snapshot));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // tmp+rename, no residue
  const auto loaded = read_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->watermark, 41u);
  EXPECT_EQ(loaded->clock, 123.5);
  ASSERT_EQ(loaded->sessions.size(), 2u);
  EXPECT_EQ(loaded->sessions[0].user_id, "u1");
  EXPECT_EQ(loaded->sessions[0].actions, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loaded->sessions[1].last_seen, 11.0);
}

TEST(WalSnapshot, CorruptSnapshotIsIgnored) {
  const std::string dir = scratch_dir("snapbad");
  ShardSnapshot snapshot;
  snapshot.watermark = 1;
  snapshot.sessions.push_back({"u", "s", {5}, 1.0});
  const std::string path = snapshot_path(dir, 0);
  ASSERT_TRUE(write_snapshot(path, snapshot));
  // Flip a byte in the middle: the CRC footer must reject the file.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) / 2));
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) / 2));
  byte = static_cast<char>(byte ^ 0x01);
  file.write(&byte, 1);
  file.close();
  EXPECT_FALSE(read_snapshot(path).has_value());
  EXPECT_FALSE(read_snapshot(dir + "/absent.snap").has_value());
}

TEST(WalManifest, Roundtrip) {
  const std::string dir = scratch_dir("manifest");
  EXPECT_FALSE(read_manifest(dir).has_value());
  ASSERT_TRUE(write_manifest(dir, 7));
  EXPECT_EQ(read_manifest(dir), 7u);
}

TEST(WalManifest, StaleShardFilesAreRemoved) {
  const std::string dir = scratch_dir("stale");
  for (std::size_t k = 0; k < 6; ++k) {
    std::ofstream(wal_path(dir, k)) << "x";
    std::ofstream(snapshot_path(dir, k)) << "x";
  }
  remove_stale_shard_files(dir, 2);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_EQ(std::filesystem::exists(wal_path(dir, k)), k < 2) << k;
    EXPECT_EQ(std::filesystem::exists(snapshot_path(dir, k)), k < 2) << k;
  }
}

// ---------------------------------------------------------------------------
// Recovery invariant tests against a small trained detector.

class WalRecoveryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 220;
    pc.users = 40;
    pc.action_count = 60;
    pc.seed = 42;
    synth::Portal portal(pc);
    store_ = new SessionStore(portal.generate());
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {10, 13};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 4;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    detector_ = new core::MisuseDetector(core::MisuseDetector::train(*store_, dc));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    detector_ = nullptr;
    store_ = nullptr;
  }

  /// A round-robin interleaved trace over the first sessions with
  /// 2..40 actions.
  static std::vector<Event> make_trace(std::size_t session_count) {
    std::vector<std::span<const int>> sessions;
    for (std::size_t i = 0; i < store_->size() && sessions.size() < session_count; ++i) {
      if (store_->at(i).length() >= 2 && store_->at(i).length() <= 40) {
        sessions.push_back(store_->at(i).view());
      }
    }
    std::vector<Event> events;
    std::vector<std::size_t> cursor(sessions.size(), 0);
    double t = 0.0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (cursor[s] >= sessions[s].size()) continue;
        events.push_back(make_event("u" + std::to_string(s % 5), "s" + std::to_string(s),
                                    detector_->vocab().name(sessions[s][cursor[s]]), t));
        t += 1.0;
        ++cursor[s];
        progressed = true;
      }
    }
    return events;
  }

  /// Feeds `events` into `server` (pumping as needed) and appends output.
  static void feed(ScoringServer& server, const std::vector<Event>& events,
                   std::vector<OutputRecord>& out) {
    for (const Event& event : events) {
      while (server.enqueue(event, out) == ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
      }
    }
    server.pump(out);
  }

  /// The sorted multiset of session_report lines in `out` — the payload
  /// of the recovery invariant (report lines carry no seq numbers).
  static std::vector<std::string> report_lines(const std::vector<OutputRecord>& out) {
    std::vector<std::string> lines;
    for (const auto& r : out) {
      if (r.line.find("\"type\":\"session_report\"") != std::string::npos) {
        lines.push_back(r.line);
      }
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  }

  /// Uninterrupted reference run (no WAL).
  static std::vector<std::string> baseline_reports(const std::vector<Event>& events,
                                                   std::size_t shards) {
    ServeConfig config;
    config.shards = shards;
    config.idle_ttl_seconds = 1e9;
    ScoringServer server(*detector_, config);
    std::vector<OutputRecord> out;
    feed(server, events, out);
    server.shutdown(out);
    return report_lines(out);
  }

  static SessionStore* store_;
  static core::MisuseDetector* detector_;
};

SessionStore* WalRecoveryFixture::store_ = nullptr;
core::MisuseDetector* WalRecoveryFixture::detector_ = nullptr;

// The tentpole invariant: crash after an arbitrary prefix, restart,
// continue the stream — the end-of-session reports equal an
// uninterrupted run's, even when the shard count changes across the
// restart.
TEST_F(WalRecoveryFixture, CrashRecoveryReportsMatchUninterruptedRun) {
  const auto events = make_trace(10);
  ASSERT_GT(events.size(), 40u);
  const auto baseline = baseline_reports(events, 3);

  for (const auto& [shards_before, shards_after] : std::vector<std::pair<std::size_t,
                                                                         std::size_t>>{
           {3, 3}, {3, 5}, {4, 1}}) {
    const std::string dir = scratch_dir("recover_" + std::to_string(shards_before) + "_" +
                                        std::to_string(shards_after));
    const std::size_t cut = events.size() / 2;
    {
      ServeConfig config;
      config.shards = shards_before;
      config.idle_ttl_seconds = 1e9;
      config.wal_dir = dir;
      config.wal_sync_every = 1;
      ScoringServer crashed(*detector_, config);
      std::vector<OutputRecord> out;
      feed(crashed, std::vector<Event>(events.begin(),
                                       events.begin() + static_cast<std::ptrdiff_t>(cut)),
           out);
      // No shutdown(): the server "crashes" here with its WAL on disk.
    }
    ServeConfig config;
    config.shards = shards_after;
    config.idle_ttl_seconds = 1e9;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer restarted(*detector_, config);
    std::vector<OutputRecord> out;
    const std::size_t replayed = restarted.recover(out);
    EXPECT_EQ(replayed, cut) << "every applied event must replay";
    feed(restarted,
         std::vector<Event>(events.begin() + static_cast<std::ptrdiff_t>(cut), events.end()),
         out);
    restarted.shutdown(out);
    EXPECT_EQ(report_lines(out), baseline)
        << shards_before << " -> " << shards_after << " shards";
  }
}

// A checkpoint sets the watermark: recovery replays only WAL records past
// it, on top of the snapshotted sessions.
TEST_F(WalRecoveryFixture, CheckpointBoundsReplayToTheWatermark) {
  const auto events = make_trace(8);
  const auto baseline = baseline_reports(events, 2);
  const std::string dir = scratch_dir("watermark");
  const std::size_t checkpoint_at = events.size() / 3;
  const std::size_t crash_at = 2 * events.size() / 3;
  {
    ServeConfig config;
    config.shards = 2;
    config.idle_ttl_seconds = 1e9;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer crashed(*detector_, config);
    std::vector<OutputRecord> out;
    feed(crashed,
         std::vector<Event>(events.begin(),
                            events.begin() + static_cast<std::ptrdiff_t>(checkpoint_at)),
         out);
    crashed.checkpoint(out);
    feed(crashed,
         std::vector<Event>(events.begin() + static_cast<std::ptrdiff_t>(checkpoint_at),
                            events.begin() + static_cast<std::ptrdiff_t>(crash_at)),
         out);
  }
  ServeConfig config;
  config.shards = 2;
  config.idle_ttl_seconds = 1e9;
  config.wal_dir = dir;
  ScoringServer restarted(*detector_, config);
  std::vector<OutputRecord> out;
  const std::size_t replayed = restarted.recover(out);
  EXPECT_EQ(replayed, crash_at - checkpoint_at)
      << "snapshotted events must not replay a second time";
  EXPECT_GT(restarted.active_sessions(), 0u);
  feed(restarted,
       std::vector<Event>(events.begin() + static_cast<std::ptrdiff_t>(crash_at), events.end()),
       out);
  restarted.shutdown(out);
  EXPECT_EQ(report_lines(out), baseline);
}

// Resume-replay: the producer resends the whole stream from origin after
// the crash; already-applied events are consumed silently and the final
// reports still match the uninterrupted run.
TEST_F(WalRecoveryFixture, ResumeReplayDedupsResentPrefix) {
  const auto events = make_trace(9);
  const auto baseline = baseline_reports(events, 3);
  const std::string dir = scratch_dir("resume");
  const std::size_t cut = events.size() / 2;
  {
    ServeConfig config;
    config.shards = 3;
    config.idle_ttl_seconds = 1e9;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer crashed(*detector_, config);
    std::vector<OutputRecord> out;
    feed(crashed,
         std::vector<Event>(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(cut)),
         out);
  }
  ServeConfig config;
  config.shards = 3;
  config.idle_ttl_seconds = 1e9;
  config.wal_dir = dir;
  config.resume_replay = true;
  ScoringServer restarted(*detector_, config);
  std::vector<OutputRecord> out;
  restarted.recover(out);
  const std::uint64_t skipped_before = serve_metrics().replay_skipped.value();
  feed(restarted, events, out);  // the full stream again, from origin
  restarted.shutdown(out);
  EXPECT_EQ(serve_metrics().replay_skipped.value() - skipped_before, cut)
      << "every already-applied event must be skipped exactly once";
  EXPECT_EQ(report_lines(out), baseline);
}

// Graceful shutdown leaves an empty checkpoint behind: a restart recovers
// nothing and reports nothing twice.
TEST_F(WalRecoveryFixture, GracefulShutdownLeavesNothingToRecover) {
  const auto events = make_trace(5);
  const std::string dir = scratch_dir("graceful");
  {
    ServeConfig config;
    config.shards = 2;
    config.wal_dir = dir;
    ScoringServer server(*detector_, config);
    std::vector<OutputRecord> out;
    feed(server, events, out);
    server.shutdown(out);
  }
  ServeConfig config;
  config.shards = 2;
  config.wal_dir = dir;
  ScoringServer restarted(*detector_, config);
  std::vector<OutputRecord> out;
  EXPECT_EQ(restarted.recover(out), 0u);
  EXPECT_EQ(restarted.active_sessions(), 0u);
  EXPECT_TRUE(report_lines(out).empty());
}

// TTL evictions are durable: a sweep logged before the crash re-runs at
// the same position during replay, so an evicted session stays evicted.
TEST_F(WalRecoveryFixture, SweepRecordsReplayEvictions) {
  const std::string dir = scratch_dir("sweep");
  const std::string action = detector_->vocab().name(0);
  {
    ServeConfig config;
    config.shards = 2;
    config.idle_ttl_seconds = 10.0;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer crashed(*detector_, config);
    std::vector<OutputRecord> out;
    feed(crashed, {make_event("u", "old", action, 0.0), make_event("u", "old", action, 1.0),
                   make_event("u", "fresh", action, 100.0)},
         out);
    crashed.sweep(out);  // evicts "old" (idle 99s > 10s TTL), logs kSweep
    EXPECT_EQ(crashed.active_sessions(), 1u);
  }
  ServeConfig config;
  config.shards = 2;
  config.idle_ttl_seconds = 10.0;
  config.wal_dir = dir;
  ScoringServer restarted(*detector_, config);
  std::vector<OutputRecord> out;
  restarted.recover(out);
  EXPECT_EQ(restarted.active_sessions(), 1u) << "the evicted session must not resurrect";
}

// Injected WAL failures degrade durability, never availability: scoring
// continues when appends or fsyncs fail.
TEST_F(WalRecoveryFixture, InjectedWalFailuresDoNotStopScoring) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  const std::string dir = scratch_dir("walfail");
  failpoints::configure("wal.append=every:2;wal.fsync=always");
  {
    ServeConfig config;
    config.shards = 1;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer server(*detector_, config);
    std::vector<OutputRecord> out;
    const auto events = make_trace(4);
    feed(server, events, out);
    EXPECT_GT(server.active_sessions(), 0u);
    std::size_t steps = 0;
    for (const auto& r : out) {
      if (r.line.find("\"type\":\"step\"") != std::string::npos) ++steps;
    }
    EXPECT_EQ(steps, events.size()) << "every event must still score";
  }
  failpoints::clear();
}

// Injected snapshot failure: the WAL is NOT truncated, so recovery still
// has the full log to replay from.
TEST_F(WalRecoveryFixture, SnapshotFailureKeepsWalForReplay) {
  if (!failpoints::compiled_in()) GTEST_SKIP() << "failpoints compiled out";
  const auto events = make_trace(6);
  const auto baseline = baseline_reports(events, 2);
  const std::string dir = scratch_dir("snapfail");
  const std::size_t cut = events.size() / 2;
  {
    ServeConfig config;
    config.shards = 2;
    config.idle_ttl_seconds = 1e9;
    config.wal_dir = dir;
    config.wal_sync_every = 1;
    ScoringServer crashed(*detector_, config);
    std::vector<OutputRecord> out;
    feed(crashed,
         std::vector<Event>(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(cut)),
         out);
    failpoints::configure("wal.snapshot=always");
    crashed.checkpoint(out);  // snapshots fail; WALs must survive
    failpoints::clear();
  }
  ServeConfig config;
  config.shards = 2;
  config.idle_ttl_seconds = 1e9;
  config.wal_dir = dir;
  ScoringServer restarted(*detector_, config);
  std::vector<OutputRecord> out;
  EXPECT_EQ(restarted.recover(out), cut);
  feed(restarted,
       std::vector<Event>(events.begin() + static_cast<std::ptrdiff_t>(cut), events.end()),
       out);
  restarted.shutdown(out);
  EXPECT_EQ(report_lines(out), baseline);
}

// ---------------------------------------------------------------------------
// WalTailer: the continuous-learning collector's incremental reader over a
// live WAL directory.

TEST(WalTailer, IncrementalPollsDeliverEachRecordExactlyOnce) {
  const std::string dir = scratch_dir("tail_inc");
  ASSERT_TRUE(write_manifest(dir, 2));
  WalWriter w0(wal_path(dir, 0), 1);
  WalWriter w1(wal_path(dir, 1), 1);
  ASSERT_TRUE(w0.append(encode_event_record(make_event("u1", "s1", "a", 1.0), 1)));
  ASSERT_TRUE(w1.append(encode_event_record(make_event("u2", "s2", "b", 2.0), 2)));
  ASSERT_TRUE(w0.flush());
  ASSERT_TRUE(w1.flush());

  WalTailer tailer(dir);
  std::vector<WalRecord> out;
  EXPECT_EQ(tailer.poll(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);  // merged ascending across shards
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(tailer.poll(out), 0u) << "already-delivered records re-polled";

  ASSERT_TRUE(w0.append(encode_sweep_record(50.0, 3)));
  ASSERT_TRUE(w0.flush());
  EXPECT_EQ(tailer.poll(out), 1u);
  EXPECT_EQ(out.back().seq, 3u);
  EXPECT_EQ(out.back().type, WalRecord::kSweep);
  EXPECT_EQ(tailer.last_seq(), 3u);
}

TEST(WalTailer, StartsBeforeTheServerWritesAnything) {
  const std::string dir = scratch_dir("tail_early");
  WalTailer tailer(dir);  // no MANIFEST yet
  std::vector<WalRecord> out;
  EXPECT_EQ(tailer.poll(out), 0u);

  ASSERT_TRUE(write_manifest(dir, 1));
  WalWriter writer(wal_path(dir, 0), 1);
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 1.0), 1)));
  ASSERT_TRUE(writer.flush());
  EXPECT_EQ(tailer.poll(out), 1u);
}

TEST(WalTailer, TornTailIsRetriedWholeNotSkipped) {
  const std::string dir = scratch_dir("tail_torn");
  ASSERT_TRUE(write_manifest(dir, 1));
  const std::string path = wal_path(dir, 0);
  WalWriter writer(path, 1);
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 1.0), 1)));
  ASSERT_TRUE(writer.flush());

  // The writer mid-append: only half of the next frame is on disk.
  const std::string frame = encode_event_record(make_event("u", "s", "b", 2.0), 2);
  {
    std::ofstream tail(path, std::ios::binary | std::ios::app);
    tail.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }
  WalTailer tailer(dir);
  std::vector<WalRecord> out;
  EXPECT_EQ(tailer.poll(out), 1u);  // the complete frame only
  EXPECT_EQ(out[0].seq, 1u);

  // The append completes: the whole frame must arrive on the next poll.
  {
    std::ofstream tail(path, std::ios::binary | std::ios::app);
    tail.write(frame.data() + frame.size() / 2,
               static_cast<std::streamsize>(frame.size() - frame.size() / 2));
  }
  EXPECT_EQ(tailer.poll(out), 1u);
  EXPECT_EQ(out.back().seq, 2u);
}

TEST(WalTailer, CheckpointTruncationDoesNotRedeliver) {
  const std::string dir = scratch_dir("tail_trunc");
  ASSERT_TRUE(write_manifest(dir, 1));
  WalWriter writer(wal_path(dir, 0), 1);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 1.0), seq)));
  }
  ASSERT_TRUE(writer.flush());
  WalTailer tailer(dir);
  std::vector<WalRecord> out;
  EXPECT_EQ(tailer.poll(out), 5u);

  // Checkpoint: the server truncates the log, then recovery-style
  // re-logging repeats seq 5 before new records land. The shrunk file
  // resets the byte cursor; the seq watermark drops the replay.
  writer.reset();
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "a", 1.0), 5)));
  ASSERT_TRUE(writer.append(encode_event_record(make_event("u", "s", "b", 2.0), 6)));
  ASSERT_TRUE(writer.flush());
  EXPECT_EQ(tailer.poll(out), 1u) << "the replayed record leaked through";
  EXPECT_EQ(out.back().seq, 6u);
  EXPECT_EQ(tailer.last_seq(), 6u);
}

}  // namespace
}  // namespace misuse::serve

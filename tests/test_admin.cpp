// Operations plane (serve/admin.hpp): endpoint rendering over real HTTP,
// /statusz flat-JSON introspection, /healthz state transitions, the
// saturation-before-drop observability contract for the per-shard queue
// gauges, scrape/no-scrape byte-identity of scored output, and head
// sampling into /tracez.
#include "serve/admin.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/event.hpp"
#include "serve/metrics.hpp"
#include "serve/trace_sampler.hpp"
#include "synth/portal.hpp"
#include "util/line_io.hpp"
#include "util/socket.hpp"
#include "util/trace.hpp"

namespace misuse::serve {
namespace {

// ---------------------------------------------------------------------------
// Plain-socket HTTP client, deliberately independent of the server's own
// response writer so framing bugs cannot cancel out.

struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};

HttpResponse http_request(std::uint16_t port, const std::string& request_line) {
  HttpResponse response;
  TcpStream stream = tcp_connect("127.0.0.1", port);
  stream.set_read_timeout(10.0);
  stream.io() << request_line << "\r\n\r\n" << std::flush;
  stream.shutdown_write();
  std::ostringstream sink;
  sink << stream.io().rdbuf();  // drain to EOF (the server closes)
  const std::string raw = sink.str();
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return response;
  const std::string head = raw.substr(0, header_end);
  response.body = raw.substr(header_end + 4);
  std::istringstream lines(head);
  std::string line;
  if (std::getline(lines, line)) {
    // "HTTP/1.0 200 OK"
    const std::size_t space = line.find(' ');
    if (space != std::string::npos) response.status = std::atoi(line.c_str() + space + 1);
  }
  while (std::getline(lines, line)) {
    if (line.rfind("Content-Type:", 0) == 0) {
      std::string value = line.substr(13);
      while (!value.empty() && (value.front() == ' ')) value.erase(value.begin());
      while (!value.empty() && (value.back() == '\r' || value.back() == '\n')) value.pop_back();
      response.content_type = value;
    }
  }
  return response;
}

HttpResponse http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0");
}

// ---------------------------------------------------------------------------
// Suite fixture: one small trained detector shared by every test (same
// configuration as test_serve.cpp's ServeFixture).

class AdminFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PortalConfig pc;
    pc.sessions = 220;
    pc.users = 40;
    pc.action_count = 60;
    pc.seed = 42;
    store_ = new SessionStore(synth::Portal(pc).generate());
    core::DetectorConfig dc;
    dc.ensemble.topic_counts = {10, 13};
    dc.ensemble.iterations = 8;
    dc.expert.target_clusters = 4;
    dc.expert.min_cluster_sessions = 5;
    dc.lm.hidden = 8;
    dc.lm.epochs = 2;
    dc.lm.patience = 0;
    detector_ = new core::MisuseDetector(core::MisuseDetector::train(*store_, dc));
  }
  static void TearDownTestSuite() {
    delete detector_;
    delete store_;
    detector_ = nullptr;
    store_ = nullptr;
  }

  static std::vector<std::span<const int>> pick_sessions(std::size_t count) {
    std::vector<std::span<const int>> picked;
    for (std::size_t i = 0; i < store_->size() && picked.size() < count; ++i) {
      if (store_->at(i).length() >= 2 && store_->at(i).length() <= 40) {
        picked.push_back(store_->at(i).view());
      }
    }
    return picked;
  }

  static std::vector<Event> interleave(const std::vector<std::span<const int>>& sessions,
                                       std::size_t id_offset = 0) {
    std::vector<Event> events;
    std::vector<std::size_t> cursor(sessions.size(), 0);
    double t = 0.0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        if (cursor[s] >= sessions[s].size()) continue;
        Event e;
        e.user_id = "u" + std::to_string((id_offset + s) % 5);
        e.session_id = "s" + std::to_string(id_offset + s);
        e.action = detector_->vocab().name(sessions[s][cursor[s]]);
        e.timestamp = t;
        e.has_timestamp = true;
        t += 1.0;
        ++cursor[s];
        events.push_back(std::move(e));
        progressed = true;
      }
    }
    return events;
  }

  /// Scores `events` against `server` the way the batch path does,
  /// returning the emitted lines in order.
  static std::vector<std::string> score(ScoringServer& server, const std::vector<Event>& events) {
    std::vector<OutputRecord> out;
    for (const Event& e : events) {
      while (server.enqueue(e, out) == ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
      }
    }
    server.shutdown(out);
    std::vector<std::string> lines;
    lines.reserve(out.size());
    for (const auto& r : out) lines.push_back(r.line);
    return lines;
  }

  static SessionStore* store_;
  static core::MisuseDetector* detector_;
};

SessionStore* AdminFixture::store_ = nullptr;
core::MisuseDetector* AdminFixture::detector_ = nullptr;

// ---------------------------------------------------------------------------
// Endpoints over real HTTP.

TEST_F(AdminFixture, MetricsEndpointServesPrometheusText) {
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  AdminConfig admin_config;
  admin_config.port = 0;  // ephemeral
  AdminServer admin(server, admin_config);
  ASSERT_NE(admin.port(), 0);

  std::vector<OutputRecord> out;
  for (const Event& e : interleave(pick_sessions(4))) {
    (void)server.enqueue(e, out);
  }
  server.pump(out);

  const auto scrapes_before = serve_metrics().admin_scrapes.value();
  const HttpResponse response = http_get(admin.port(), "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(response.body.find("# TYPE misusedet_serve_steps_total counter"), std::string::npos);
  EXPECT_NE(response.body.find("misusedet_serve_steps_total "), std::string::npos);
  EXPECT_NE(response.body.find("misusedet_serve_step_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_GT(serve_metrics().admin_scrapes.value(), scrapes_before);
}

TEST_F(AdminFixture, StatuszIsOneFlatJsonLine) {
  ServeConfig config;
  config.shards = 3;
  ScoringServer server(*detector_, config);
  AdminConfig admin_config;
  admin_config.infer_kernel = "scalar";
  AdminServer admin(server, admin_config);

  std::vector<OutputRecord> out;
  const auto events = interleave(pick_sessions(5));
  for (const Event& e : events) (void)server.enqueue(e, out);
  server.pump(out);

  const HttpResponse response = http_get(admin.port(), "/statusz");
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  // One flat object on a single line — parseable by util/line_io.
  std::string body = response.body;
  while (!body.empty() && body.back() == '\n') body.pop_back();
  EXPECT_EQ(body.find('\n'), std::string::npos);
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(body, fields, error)) << error;
  EXPECT_EQ(get_number(fields, "shards"), 3.0);
  EXPECT_GT(get_number(fields, "sessions_active").value_or(-1.0), 0.0);
  EXPECT_GE(get_number(fields, "uptime_seconds").value_or(-1.0), 0.0);
  EXPECT_EQ(get_string(fields, "infer_kernel"), "scalar");
  EXPECT_EQ(get_string(fields, "wal_enabled"), "false");
  EXPECT_EQ(get_number(fields, "next_seq"), static_cast<double>(events.size() + 1));
  for (std::size_t k = 0; k < 3; ++k) {
    const std::string prefix = "shard." + std::to_string(k) + ".";
    EXPECT_TRUE(get_number(fields, prefix + "queue_depth").has_value()) << prefix;
    EXPECT_TRUE(get_number(fields, prefix + "sessions").has_value()) << prefix;
    EXPECT_TRUE(get_number(fields, prefix + "queue_high_water").has_value()) << prefix;
    EXPECT_TRUE(get_number(fields, prefix + "last_applied_seq").has_value()) << prefix;
  }
}

TEST_F(AdminFixture, StatuszSurfacesLearnStateWithPrefix) {
  ServeConfig config;
  config.shards = 1;
  ScoringServer server(*detector_, config);
  AdminHooks hooks;
  // What misusedet_learnd publishes to <registry>/LEARN_STATUS.
  hooks.learn_status = [] {
    return std::string(
        R"({"phase":"watching","cycle":3,"candidate":7,"decision":"promote",)"
        R"("reason":"guardrails_passed","flip_rate":0.004,"buffer_windows":12})");
  };
  AdminConfig admin_config;
  AdminServer admin(server, admin_config, hooks);

  const HttpResponse response = http_get(admin.port(), "/statusz");
  ASSERT_EQ(response.status, 200);
  std::string body = response.body;
  while (!body.empty() && body.back() == '\n') body.pop_back();
  EXPECT_EQ(body.find('\n'), std::string::npos) << "learn fields broke the one-line contract";
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(body, fields, error)) << error;
  EXPECT_EQ(get_string(fields, "learn_phase"), "watching");
  EXPECT_EQ(get_number(fields, "learn_cycle"), 3.0);
  EXPECT_EQ(get_number(fields, "learn_candidate"), 7.0);
  EXPECT_EQ(get_string(fields, "learn_decision"), "promote");
  EXPECT_EQ(get_number(fields, "learn_flip_rate"), 0.004);

  // No learnd running (hook returns empty): no learn_ fields at all.
  AdminHooks idle_hooks;
  idle_hooks.learn_status = [] { return std::string(); };
  AdminServer idle_admin(server, admin_config, idle_hooks);
  const HttpResponse idle = http_get(idle_admin.port(), "/statusz");
  ASSERT_EQ(idle.status, 200);
  EXPECT_EQ(idle.body.find("learn_"), std::string::npos);
}

TEST_F(AdminFixture, UnknownPathAndMethodAreRejected) {
  ServeConfig config;
  config.shards = 1;
  ScoringServer server(*detector_, config);
  AdminServer admin(server, AdminConfig{});
  EXPECT_EQ(http_get(admin.port(), "/nope").status, 404);
  EXPECT_EQ(http_request(admin.port(), "POST /metrics HTTP/1.0").status, 405);
}

TEST_F(AdminFixture, StopIsIdempotentAndPortIsEphemeral) {
  ServeConfig config;
  config.shards = 1;
  ScoringServer server(*detector_, config);
  AdminConfig admin_config;
  admin_config.port = 0;
  AdminServer admin(server, admin_config);
  EXPECT_NE(admin.port(), 0);
  admin.stop();
  admin.stop();  // second stop must be a no-op
}

// ---------------------------------------------------------------------------
// /healthz transitions.

TEST_F(AdminFixture, HealthzReportsOkOnFreshServer) {
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  AdminServer admin(server, AdminConfig{});
  const HttpResponse response = http_get(admin.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  std::vector<JsonField> fields;
  std::string error;
  ASSERT_TRUE(parse_flat_json(response.body.substr(0, response.body.find('\n')), fields, error))
      << error;
  EXPECT_EQ(get_string(fields, "status"), "ok");
}

TEST_F(AdminFixture, HealthzDegradesOnQueueSaturation) {
  ServeConfig config;
  config.shards = 1;
  config.queue_capacity = 10;
  ScoringServer server(*detector_, config);
  AdminServer admin(server, AdminConfig{});

  // 9 of 10 slots for one session key: saturation 0.9 crosses the
  // degraded threshold without reaching capacity.
  const auto sessions = pick_sessions(1);
  ASSERT_FALSE(sessions.empty());
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u0";
  e.session_id = "sat";
  e.action = detector_->vocab().name(sessions[0][0]);
  e.has_timestamp = true;
  for (int i = 0; i < 9; ++i) {
    e.timestamp = i;
    ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  }
  int status = 0;
  const std::string body = admin.render_healthz(&status);
  EXPECT_EQ(status, 200);  // degraded still answers 200
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  EXPECT_NE(body.find("queue_pressure"), std::string::npos) << body;
  server.pump(out);  // drain before teardown
  int after = 0;
  const std::string drained = admin.render_healthz(&after);
  EXPECT_EQ(after, 200);
  EXPECT_NE(drained.find("\"status\":\"ok\""), std::string::npos) << drained;
}

TEST_F(AdminFixture, HealthzUnhealthyWhenEveryShardIsFull) {
  ServeConfig config;
  config.shards = 1;
  config.queue_capacity = 6;
  config.backpressure = BackpressurePolicy::kDropOldest;  // stay full without blocking
  ScoringServer server(*detector_, config);
  AdminServer admin(server, AdminConfig{});

  const auto sessions = pick_sessions(1);
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u0";
  e.session_id = "full";
  e.action = detector_->vocab().name(sessions[0][0]);
  e.has_timestamp = true;
  for (int i = 0; i < 6; ++i) {
    e.timestamp = i;
    ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  }
  int status = 0;
  const std::string body = admin.render_healthz(&status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"status\":\"unhealthy\""), std::string::npos) << body;
  server.pump(out);
}

TEST_F(AdminFixture, HealthzTracksReloadFailureStreak) {
  ServeConfig config;
  config.shards = 1;
  ScoringServer server(*detector_, config);
  AdminServer admin(server, AdminConfig{});

  // The streak gauge is process-global serve state; restore it on exit.
  serve_metrics().reload_failure_streak.set(1);
  int status = 0;
  std::string body = admin.render_healthz(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"degraded\""), std::string::npos) << body;
  EXPECT_NE(body.find("reload"), std::string::npos) << body;

  serve_metrics().reload_failure_streak.set(3);
  body = admin.render_healthz(&status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"status\":\"unhealthy\""), std::string::npos) << body;

  serve_metrics().reload_failure_streak.set(0);
  body = admin.render_healthz(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
}

// ---------------------------------------------------------------------------
// Satellite: queue saturation must be observable on the per-shard gauges
// *before* the backpressure policy starts dropping events.

TEST_F(AdminFixture, QueueGaugesShowSaturationBeforeDropsBegin) {
  ServeConfig config;
  config.shards = 1;
  config.queue_capacity = 8;
  config.backpressure = BackpressurePolicy::kDropOldest;
  ScoringServer server(*detector_, config);
  // The gauge (and its high-water mark) is registry-global and earlier
  // tests in this process already pushed it past this test's capacity.
  metrics().gauge("serve.shard.queue_depth.0").reset();

  const auto sessions = pick_sessions(1);
  const auto dropped_before = serve_metrics().dropped_events.value();
  std::vector<OutputRecord> out;
  Event e;
  e.user_id = "u0";
  e.session_id = "pressure";
  e.action = detector_->vocab().name(sessions[0][0]);
  e.has_timestamp = true;
  for (int i = 0; i < 8; ++i) {
    e.timestamp = i;
    ASSERT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kAccepted);
  }
  // Saturated but nothing lost yet: the gauge and its high-water mark
  // already read full while the dropped counter is still flat.
  EXPECT_EQ(metrics().gauge("serve.shard.queue_depth.0").value(), 8);
  EXPECT_EQ(metrics().gauge("serve.shard.queue_depth.0").high_water(), 8);
  EXPECT_EQ(server.shard_status()[0].queue_high_water, 8);
  EXPECT_EQ(serve_metrics().dropped_events.value(), dropped_before);

  // The ninth event is the first casualty.
  e.timestamp = 8;
  EXPECT_EQ(server.enqueue(e, out), ScoringServer::Enqueue::kDroppedOldest);
  EXPECT_EQ(serve_metrics().dropped_events.value(), dropped_before + 1);
  EXPECT_EQ(metrics().gauge("serve.shard.queue_depth.0").value(), 8);
  server.pump(out);
  EXPECT_EQ(metrics().gauge("serve.shard.queue_depth.0").value(), 0);
}

// ---------------------------------------------------------------------------
// Byte-identity: scraping every endpoint (in-process and over HTTP) while
// the data path runs must not change a single output byte.

TEST_F(AdminFixture, ScrapingDoesNotPerturbScoredOutput) {
  const auto events = interleave(pick_sessions(6));

  ServeConfig config;
  config.shards = 2;
  std::vector<std::string> baseline;
  {
    ScoringServer server(*detector_, config);
    baseline = score(server, events);
  }
  ASSERT_FALSE(baseline.empty());

  std::vector<std::string> observed;
  {
    ScoringServer server(*detector_, config);
    AdminServer admin(server, AdminConfig{});
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load()) {
        (void)admin.render_metrics();
        (void)admin.render_statusz();
        int status = 0;
        (void)admin.render_healthz(&status);
        (void)http_get(admin.port(), "/metrics");
        (void)http_get(admin.port(), "/statusz");
      }
    });
    observed = score(server, events);
    stop.store(true);
    scraper.join();
  }
  ASSERT_EQ(baseline.size(), observed.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i], observed[i]) << "line " << i;
  }
}

// ---------------------------------------------------------------------------
// Trace sampling into /tracez.

TEST(SessionTraceSampler, HeadSamplesFirstDistinctKeys) {
  SessionTraceSampler sampler(2);
  EXPECT_EQ(sampler.head_count(), 2u);
  EXPECT_TRUE(sampler.sampled("a"));
  EXPECT_TRUE(sampler.sampled("b"));
  EXPECT_FALSE(sampler.sampled("c"));  // head is full
  EXPECT_TRUE(sampler.sampled("a"));   // members stay sampled
  EXPECT_FALSE(sampler.sampled("c"));
  EXPECT_EQ(sampler.sampled_count(), 2u);
}

TEST_F(AdminFixture, TracezExportsOnlyHeadSampledSessions) {
  trace_events().enable(4096);
  ServeConfig config;
  config.shards = 2;
  ScoringServer server(*detector_, config);
  auto sampler = std::make_shared<SessionTraceSampler>(2);
  server.set_trace_sampler(sampler);
  AdminServer admin(server, AdminConfig{});

  std::vector<OutputRecord> out;
  for (const Event& e : interleave(pick_sessions(4))) {
    while (server.enqueue(e, out) == ScoringServer::Enqueue::kQueueFull) server.pump(out);
  }
  server.shutdown(out);

  // Exactly the head: 4 distinct sessions offered, 2 sampled.
  EXPECT_EQ(sampler->sampled_count(), 2u);
  const auto recorded = trace_events().snapshot();
  ASSERT_FALSE(recorded.empty());
  std::set<std::string> tracks;
  for (const auto& event : recorded) tracks.insert(event.track);
  EXPECT_LE(tracks.size(), 2u);

  // Chrome export over HTTP.
  const HttpResponse chrome = http_get(admin.port(), "/tracez");
  EXPECT_EQ(chrome.status, 200);
  EXPECT_EQ(chrome.content_type, "application/json");
  EXPECT_NE(chrome.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(chrome.body.find("\"ph\":\"X\""), std::string::npos);

  // NDJSON export: every line is itself flat-parseable.
  const HttpResponse ndjson = http_get(admin.port(), "/tracez?format=ndjson");
  EXPECT_EQ(ndjson.status, 200);
  std::istringstream lines(ndjson.body);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::vector<JsonField> fields;
    std::string error;
    ASSERT_TRUE(parse_flat_json(line, fields, error)) << error << ": " << line;
    EXPECT_TRUE(get_string(fields, "name").has_value());
    EXPECT_TRUE(get_number(fields, "start_nanos").has_value());
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);

  server.set_trace_sampler(nullptr);
  trace_events().disable();
}

}  // namespace
}  // namespace misuse::serve

// The actual expert-in-the-loop (§II/III), interactive. Everywhere else
// this repository replays the expert's documented procedure headlessly;
// here a human security expert can genuinely perform it in a terminal:
// inspect the LDA-ensemble views, choose how many clusters to keep, merge
// or drop groups, and inspect medoid sessions — then the tool trains the
// per-cluster models on the approved clustering and reports their quality.
//
//   interactive_expert [--auto] [--sessions N] [--clusters K]
//
// --auto answers every prompt with the headless ExpertPolicy's choice, so
// the binary is scriptable/CI-safe; without it, prompts read from stdin.
#include <iostream>
#include <sstream>
#include <string>

#include "cluster/expert_policy.hpp"
#include "core/evaluation.hpp"
#include "lm/language_model.hpp"
#include "patterns/mining.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "viz/interface.hpp"

using namespace misuse;

namespace {

// Reads a line; in --auto mode returns the fallback.
std::string ask(const std::string& prompt, const std::string& fallback, bool automatic) {
  std::cout << prompt << " [" << fallback << "]: " << std::flush;
  if (automatic) {
    std::cout << fallback << " (auto)\n";
    return fallback;
  }
  std::string line;
  if (!std::getline(std::cin, line) || line.empty()) return fallback;
  return line;
}

void show_medoid(const topics::LdaEnsemble& ensemble, std::size_t topic,
                 const std::vector<std::size_t>& eligible, const SessionStore& store) {
  const std::size_t doc = ensemble.medoid_document(topic);
  const Session& s = store.at(eligible[doc]);
  std::cout << "    medoid session #" << s.id << ": ";
  for (std::size_t i = 0; i < std::min<std::size_t>(s.actions.size(), 6); ++i) {
    if (i > 0) std::cout << ", ";
    std::cout << store.vocab().name(s.actions[i]);
  }
  if (s.actions.size() > 6) std::cout << ", ...";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool automatic = args.flag("auto");

  synth::PortalConfig portal_config;
  portal_config.sessions = static_cast<std::size_t>(args.integer("sessions", 1200));
  portal_config.action_count = 100;
  portal_config.seed = static_cast<std::uint64_t>(args.integer("seed", 5));
  const synth::Portal portal(portal_config);
  const SessionStore history = portal.generate();

  // Corpus for topic modeling (document index -> store index map).
  std::vector<std::vector<int>> documents;
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history.at(i).length() >= 2) {
      documents.push_back(history.at(i).actions);
      eligible.push_back(i);
    }
  }

  topics::EnsembleConfig ensemble_config;
  ensemble_config.topic_counts = {10, 13};
  ensemble_config.iterations = 60;
  std::cout << "fitting LDA ensemble on " << documents.size() << " sessions...\n";
  const auto ensemble =
      topics::LdaEnsemble::fit(documents, history.vocab().size(), ensemble_config);

  // Step 1: show the projection view the expert would brush.
  tsne::TsneConfig tsne_config;
  tsne_config.iterations = 200;
  tsne_config.perplexity = 6.0;
  const auto projection = viz::build_projection_view(ensemble, tsne_config);
  std::cout << "\ntopic projection (letters = LDA runs; similar topics cluster together):\n"
            << viz::render_projection_ascii(projection, 70, 16) << "\n";

  // Step 2: the expert chooses the granularity.
  const std::size_t k = static_cast<std::size_t>(std::stoul(
      ask("how many behavior clusters do you see?",
          std::to_string(args.integer("clusters", 10)), automatic)));

  cluster::ExpertPolicyConfig policy_config;
  policy_config.target_clusters = k;
  policy_config.min_cluster_sessions = 1;  // the human decides below
  auto clustering = cluster::ExpertPolicy(policy_config).run(ensemble);

  // Step 3: inspect each cluster (medoid + patterns) and keep/merge.
  std::cout << "\nproposed clusters (inspect medoids, then keep or merge):\n";
  std::vector<bool> keep(clustering.cluster_count(), true);
  for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
    std::vector<const Session*> members;
    for (std::size_t doc : clustering.clusters[c]) members.push_back(&history.at(eligible[doc]));
    patterns::MiningConfig mining;
    mining.min_support = 0.5;
    mining.max_pattern = 2;
    const auto itemsets = patterns::mine_frequent_itemsets(members, mining);
    std::cout << "  cluster " << c << " (" << members.size() << " sessions): "
              << patterns::describe_itemsets(itemsets, history.vocab(), members.size(), 2)
              << "\n";
    show_medoid(ensemble, clustering.representative_topics[c], eligible, history);
    const std::string verdict =
        ask("    representative? (y = keep / n = merge into nearest)",
            members.size() >= 15 ? "y" : "n", automatic);
    keep[c] = !verdict.empty() && (verdict[0] == 'y' || verdict[0] == 'Y');
  }

  // Merge dropped clusters into the nearest kept one (by representative
  // topic similarity), mirroring ExpertPolicy's coverage rule.
  const Matrix similarity = ensemble.pairwise_similarity();
  std::vector<std::size_t> remap(clustering.cluster_count());
  std::vector<std::size_t> kept_ids;
  for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
    if (keep[c]) {
      remap[c] = kept_ids.size();
      kept_ids.push_back(c);
    }
  }
  if (kept_ids.empty()) {
    std::cout << "\nno clusters kept; nothing to train.\n";
    return 1;
  }
  for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
    if (keep[c]) continue;
    double best = -1.0;
    std::size_t target = kept_ids[0];
    for (std::size_t kc : kept_ids) {
      const double s = similarity(clustering.representative_topics[c],
                                  clustering.representative_topics[kc]);
      if (s > best) {
        best = s;
        target = kc;
      }
    }
    remap[c] = remap[target];
  }

  // Step 4: train one model per approved cluster and report.
  std::cout << "\ntraining one LSTM per approved cluster...\n";
  std::vector<std::vector<std::span<const int>>> cluster_sessions(kept_ids.size());
  for (std::size_t doc = 0; doc < clustering.session_cluster.size(); ++doc) {
    cluster_sessions[remap[clustering.session_cluster[doc]]].push_back(
        history.at(eligible[doc]).view());
  }
  Table table({"cluster", "sessions", "next-action accuracy", "loss"});
  for (std::size_t c = 0; c < cluster_sessions.size(); ++c) {
    lm::LmConfig lm_config;
    lm_config.vocab = history.vocab().size();
    lm_config.hidden = 24;
    lm_config.learning_rate = 0.01f;
    lm_config.epochs = 15;
    lm_config.patience = 0;
    lm_config.batching.batch_size = 8;
    lm_config.seed = 7 + c;
    lm::ActionLanguageModel model(lm_config);
    const std::size_t n_train = cluster_sessions[c].size() * 8 / 10;
    const std::vector<std::span<const int>> train(
        cluster_sessions[c].begin(),
        cluster_sessions[c].begin() + static_cast<std::ptrdiff_t>(n_train));
    const std::vector<std::span<const int>> test(
        cluster_sessions[c].begin() + static_cast<std::ptrdiff_t>(n_train),
        cluster_sessions[c].end());
    model.fit(train, {});
    const auto eval = model.evaluate(std::span<const std::span<const int>>(test));
    table.add_row({std::to_string(c), std::to_string(cluster_sessions[c].size()),
                   Table::num(eval.accuracy), Table::num(eval.loss)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(your clustering is now the informed prior of the paper's pipeline)\n";
  return 0;
}

// Realtime monitoring demo (the paper's §IV-C use case): sessions are
// analyzed action by action; the monitor routes the stream to a behavior
// cluster (first-15-actions vote), tracks the likelihood of every
// observed action under that cluster's LSTM model, and raises an alarm on
// low likelihood or a downward trend.
//
// The demo trains a detector on clean history, then replays three live
// sessions: a normal one, a mass profile-modification attack, and an
// area-hopping attack.
//
// Build & run:  ./build/examples/portal_monitoring
#include <iomanip>
#include <iostream>

#include "core/calibration.hpp"
#include "util/table.hpp"
#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "synth/portal.hpp"

using namespace misuse;

namespace {

void replay(const char* title, const Session& session, const core::MisuseDetector& detector,
            const SessionStore& history, double alarm_threshold) {
  std::cout << "\n--- " << title << " (" << session.length() << " actions) ---\n";
  core::OnlineMonitor monitor(detector, core::MonitorConfig{.alarm_likelihood = alarm_threshold,
                                                            .trend_window = 4,
                                                            .trend_drop = 0.5});
  std::size_t alarms = 0;
  for (int action : session.actions) {
    const auto result = monitor.observe(action);
    std::cout << "  #" << std::setw(2) << result.step << " "
              << std::setw(28) << std::left << history.vocab().name(action) << std::right
              << " cluster=" << detector.cluster(result.cluster_voted).label.substr(0, 24);
    if (result.likelihood_voted) {
      std::cout << " p=" << std::fixed << std::setprecision(3) << *result.likelihood_voted;
    } else {
      std::cout << " p=  -  ";
    }
    if (result.alarm) {
      std::cout << "  << ALARM" << (result.trend_alarm ? " (trend)" : "");
      if (!result.expected.empty()) {
        std::cout << " expected: ";
        for (std::size_t e = 0; e < result.expected.size(); ++e) {
          if (e > 0) std::cout << "/";
          std::cout << history.vocab().name(result.expected[e].action);
        }
      }
      ++alarms;
    }
    std::cout << "\n";
    if (result.step >= 18) {  // keep the demo output short
      std::cout << "  ... (" << session.length() - result.step << " more actions)\n";
      break;
    }
  }
  std::cout << "  => " << alarms << " alarm(s) in the displayed prefix\n";
}

}  // namespace

int main() {
  synth::PortalConfig portal_config;
  portal_config.sessions = 1500;
  portal_config.users = 150;
  portal_config.action_count = 100;
  portal_config.seed = 11;
  const synth::Portal portal(portal_config);
  const SessionStore history = portal.generate();

  core::DetectorConfig config;
  config.ensemble.topic_counts = {8, 10};
  config.ensemble.iterations = 50;
  config.expert.target_clusters = 8;
  config.lm.hidden = 24;
  config.lm.learning_rate = 0.01f;
  config.lm.epochs = 15;
  config.lm.batching.batch_size = 8;
  std::cout << "training detector on " << history.size() << " historical sessions...\n";
  const core::MisuseDetector detector = core::MisuseDetector::train(history, config);

  // A held-back normal session (not ideal methodology for a demo, but the
  // detector never saw it action-by-action) and two synthetic attacks.
  const Session& normal = history.at(42);
  Rng rng(3);
  const Session mass = portal.make_misuse(synth::MisuseKind::kMassProfileModification, rng);
  const Session hopping = portal.make_misuse(synth::MisuseKind::kAreaHopping, rng);

  // Calibrate the alarm threshold on the validation splits so at most 5%
  // of normal sessions would alarm.
  const auto calibration = core::calibrate_on_validation_splits(detector, history, 0.05);
  std::cout << "calibrated alarm threshold: likelihood < "
            << Table::num(calibration.alarm_likelihood, 4) << " (5% session FPR budget)\n";

  replay("normal operator session", normal, detector, history, calibration.alarm_likelihood);
  replay("ATTACK: mass profile modification", mass, detector, history,
         calibration.alarm_likelihood);
  replay("ATTACK: area hopping", hopping, detector, history, calibration.alarm_likelihood);

  std::cout << "\n(the paper's alarm rule: investigate as soon as predictions vary a lot\n"
               " or drop down considerably — §IV-C)\n";
  return 0;
}

// The informed-clustering workflow (the paper's §II/III expert loop):
//
//   1. fit an LDA ensemble over the session corpus,
//   2. compute everything the interactive visual interface shows the
//      security experts — the t-SNE topic projection, the topic-action
//      matrix, the chord diagram — and render/export it,
//   3. run the headless ExpertPolicy over the same artifacts to obtain
//      behavior clusters, and
//   4. describe each cluster with frequent-pattern mining (§IV-B).
//
// The JSON export (expert_interface.json) contains the full data an
// external UI needs to render the interface of the paper's Fig. 1.
//
// Build & run:  ./build/examples/expert_clustering
#include <fstream>
#include <iostream>

#include "cluster/expert_policy.hpp"
#include "patterns/mining.hpp"
#include "synth/portal.hpp"
#include "viz/interface.hpp"

using namespace misuse;

int main() {
  synth::PortalConfig portal_config;
  portal_config.sessions = 1200;
  portal_config.action_count = 100;
  portal_config.seed = 5;
  const synth::Portal portal(portal_config);
  const SessionStore history = portal.generate();

  // 1. LDA ensemble (multiple topic counts, as the paper's interface).
  std::vector<std::vector<int>> documents;
  std::vector<std::size_t> eligible;  // document index -> store index
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history.at(i).length() >= 2) {
      documents.push_back(history.at(i).actions);
      eligible.push_back(i);
    }
  }
  topics::EnsembleConfig ensemble_config;
  ensemble_config.topic_counts = {10, 13, 16};
  ensemble_config.iterations = 80;
  std::cout << "fitting LDA ensemble on " << documents.size() << " sessions...\n";
  const auto ensemble =
      topics::LdaEnsemble::fit(documents, history.vocab().size(), ensemble_config);
  std::cout << "pooled topics: " << ensemble.topic_count() << "\n\n";

  // 2. The three views of the visual interface.
  tsne::TsneConfig tsne_config;
  tsne_config.iterations = 300;
  tsne_config.perplexity = 8.0;
  const auto projection = viz::build_projection_view(ensemble, tsne_config);
  const auto matrix = viz::build_matrix_view(ensemble, 0.05f);
  std::vector<std::size_t> selection;
  for (std::size_t t = 0; t < std::min<std::size_t>(10, ensemble.topic_count()); ++t) {
    selection.push_back(t);
  }
  const auto chord = viz::build_chord_view(ensemble, selection, 8);

  std::cout << "topic projection view (what the expert brushes):\n"
            << viz::render_projection_ascii(projection, 70, 18) << "\n";
  std::cout << "topic-action matrix view (first topics):\n"
            << viz::render_matrix_ascii(matrix, history.vocab(), ensemble, 6, 4) << "\n";
  std::cout << "chord diagram view (shared top actions):\n" << viz::render_chord_ascii(chord);

  std::ofstream json("expert_interface.json");
  viz::export_interface_json(projection, matrix, chord, history.vocab(), json);
  std::cout << "\n(full interface data exported to expert_interface.json)\n";

  // 3. Headless expert -> clusters.
  cluster::ExpertPolicyConfig expert_config;
  expert_config.target_clusters = 10;
  expert_config.min_cluster_sessions = 15;
  const auto clustering = cluster::ExpertPolicy(expert_config).run(ensemble);
  std::cout << "\nexpert policy selected " << clustering.cluster_count() << " clusters\n";

  // 4. Frequent-pattern descriptions.
  for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
    std::vector<const Session*> members;
    for (std::size_t doc : clustering.clusters[c]) {
      members.push_back(&history.at(eligible[doc]));
    }
    patterns::MiningConfig mining;
    mining.min_support = 0.5;
    mining.max_pattern = 2;
    const auto itemsets = patterns::mine_frequent_itemsets(members, mining);
    std::cout << "  cluster " << c << " (" << members.size() << " sessions): "
              << patterns::describe_itemsets(itemsets, history.vocab(), members.size(), 2) << "\n";
  }
  return 0;
}

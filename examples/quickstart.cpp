// Quickstart: the whole pipeline in ~60 lines.
//
//   1. Get session logs (here: the bundled portal simulator; in production
//      you would parse your own audit log with read_session_log_file).
//   2. Train the misuse detector: LDA ensemble -> expert clusters ->
//      per-cluster OC-SVM + LSTM language model.
//   3. Score sessions: high average likelihood = normal, low = suspicious.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/detector.hpp"
#include "synth/portal.hpp"

int main() {
  using namespace misuse;

  // 1. A month of synthetic portal logs (≈1,500 sessions, ~100 actions).
  synth::PortalConfig portal_config;
  portal_config.sessions = 1500;
  portal_config.users = 150;
  portal_config.action_count = 100;
  portal_config.seed = 7;
  const synth::Portal portal(portal_config);
  const SessionStore history = portal.generate();
  std::cout << "historical sessions: " << history.size() << " from "
            << history.distinct_users() << " users, " << history.vocab().size()
            << " distinct actions\n";

  // 2. Train the detector (small configuration so this finishes in
  //    seconds; see bench/ for paper-scale settings).
  core::DetectorConfig config;
  config.ensemble.topic_counts = {8, 10};
  config.ensemble.iterations = 50;
  config.expert.target_clusters = 8;
  config.lm.hidden = 24;
  config.lm.learning_rate = 0.01f;
  config.lm.epochs = 15;
  config.lm.batching.batch_size = 8;
  const core::MisuseDetector detector = core::MisuseDetector::train(history, config);

  std::cout << "\nlearned behavior clusters:\n";
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    std::cout << "  " << c << ": " << detector.cluster(c).label << " ("
              << detector.cluster(c).size() << " sessions)\n";
  }

  // 3. Score a batch of normal sessions against obviously scripted ones.
  Rng rng(1);
  double normal_avg = 0.0;
  const std::size_t probe_count = 20;
  for (std::size_t i = 0; i < probe_count; ++i) {
    const Session& s = history.at(history.size() / 2 + i);
    normal_avg += detector.predict(s.view()).score.avg_likelihood();
  }
  normal_avg /= static_cast<double>(probe_count);

  double misuse_avg = 0.0;
  for (std::size_t i = 0; i < probe_count; ++i) {
    const Session s = portal.make_misuse(synth::MisuseKind::kRandomActivity, rng);
    misuse_avg += detector.predict(s.view()).score.avg_likelihood();
  }
  misuse_avg /= static_cast<double>(probe_count);

  const Session example_misuse = portal.make_misuse(synth::MisuseKind::kRandomActivity, rng);
  const auto example = detector.predict(example_misuse.view());
  std::cout << "\navg likelihood over " << probe_count << " normal sessions:   " << normal_avg
            << "\n";
  std::cout << "avg likelihood over " << probe_count << " scripted sessions: " << misuse_avg
            << "\n";
  std::cout << "one scripted session routed to '" << detector.cluster(example.cluster).label
            << "' with perplexity " << example.score.perplexity() << "\n";

  const bool separated = normal_avg > 3.0 * misuse_avg;
  std::cout << (separated ? "\nOK: the detector separates normal from scripted behavior.\n"
                          : "\nWARNING: weak separation — train longer or with more data.\n");
  return separated ? 0 : 1;
}

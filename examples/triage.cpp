// Batch triage over a session log file — the deployment shape a security
// team would actually run nightly:
//
//   triage [--log <file>] [--model <file>] [--top <n>] [--out <csv>]
//
// Reads sessions from a text log (one session per line; see
// sessions/log_io.hpp for the format), loads or trains a detector, scores
// every session, and writes a suspicion-ranked CSV for operator review.
// Without --log it generates a demo log (with a few injected misuses) so
// the example is runnable out of the box; the trained model is saved to
// disk and reused on the next invocation, demonstrating the Fig. 2
// deployment split between the training and prediction phases.
//
// Build & run:  ./build/examples/triage
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/detector.hpp"
#include "sessions/log_io.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace misuse;

namespace {

void make_demo_log(const std::string& path) {
  synth::PortalConfig config;
  config.sessions = 1200;
  config.action_count = 100;
  config.seed = 17;
  config.misuse_fraction = 0.02;  // a few needles in the haystack
  const synth::Portal portal(config);
  const SessionStore store = portal.generate();
  write_session_log_file(store, path);
  std::cout << "wrote demo log with " << store.size() << " sessions (≈2% injected misuse) to "
            << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string log_path = args.str("log", "triage_demo.log");
  const std::string model_path = args.str("model", "triage_model.bin");
  const std::string out_path = args.str("out", "triage_ranked.csv");
  const auto top_n = static_cast<std::size_t>(args.integer("top", 20));

  if (!std::ifstream(log_path).good()) {
    std::cout << "no log at " << log_path << "; generating a demo log\n";
    make_demo_log(log_path);
  }
  SessionStore store = read_session_log_file(log_path);
  std::cout << "loaded " << store.size() << " sessions, " << store.vocab().size()
            << " distinct actions from " << log_path << "\n";

  // Load a previously trained model if present and compatible; otherwise
  // train and persist (the paper's training phase, repeatable on drift).
  std::unique_ptr<core::MisuseDetector> detector;
  if (std::ifstream model_in(model_path, std::ios::binary); model_in.good()) {
    try {
      BinaryReader reader(model_in);
      detector = std::make_unique<core::MisuseDetector>(core::MisuseDetector::load(reader));
      if (detector->vocab().size() != store.vocab().size()) {
        std::cout << "saved model vocabulary mismatch; retraining\n";
        detector.reset();
      } else {
        std::cout << "loaded trained detector from " << model_path << "\n";
      }
    } catch (const SerializeError& e) {
      std::cout << "cannot load " << model_path << " (" << e.what() << "); retraining\n";
    }
  }
  if (!detector) {
    core::DetectorConfig config;
    config.ensemble.topic_counts = {10, 13};
    config.ensemble.iterations = 60;
    config.expert.target_clusters = 10;
    config.lm.hidden = 32;
    config.lm.learning_rate = 0.01f;
    config.lm.epochs = 20;
    config.lm.batching.batch_size = 8;
    std::cout << "training detector (this happens once; the model is cached)...\n";
    detector = std::make_unique<core::MisuseDetector>(core::MisuseDetector::train(store, config));
    std::ofstream model_out(model_path, std::ios::binary);
    BinaryWriter writer(model_out);
    detector->save(writer);
    std::cout << "detector saved to " << model_path << "\n";
  }

  // Score everything.
  struct Ranked {
    const Session* session;
    std::size_t cluster;
    double avg_likelihood;
  };
  std::vector<Ranked> ranked;
  for (const auto& s : store.all()) {
    if (s.length() < 2) continue;
    const auto p = detector->predict(s.view());
    ranked.push_back({&s, p.cluster, p.score.avg_likelihood()});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) { return a.avg_likelihood < b.avg_likelihood; });

  Table table({"rank", "session_id", "user", "length", "cluster", "avg_likelihood",
               "first_actions"});
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const Ranked& item = ranked[r];
    std::string preview;
    for (std::size_t a = 0; a < std::min<std::size_t>(item.session->actions.size(), 3); ++a) {
      if (a > 0) preview += ",";
      preview += store.vocab().name(item.session->actions[a]);
    }
    table.add_row({std::to_string(r + 1), std::to_string(item.session->id),
                   std::to_string(item.session->user), std::to_string(item.session->length()),
                   detector->cluster(item.cluster).label, Table::num(item.avg_likelihood, 5),
                   preview});
  }

  // Print only the top of the ranking; the CSV holds everything.
  Table preview_table(table.header());
  for (std::size_t r = 0; r < std::min(top_n, table.rows()); ++r) preview_table.add_row(table.row(r));
  std::cout << "\ntop " << top_n << " suspicious sessions (investigate these first):\n";
  preview_table.print(std::cout);
  table.write_csv_file(out_path);
  std::cout << "\nfull ranking written to " << out_path << "\n";
  return 0;
}

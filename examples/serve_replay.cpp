// Replay client for misusedet_serve: trains a small detector on the
// synthetic portal, saves the archive, generates an *interleaved*
// multi-user NDJSON event trace (with a couple of injected attacks), and
// drives the scoring server with it.
//
// Modes:
//   ./build/examples/serve_replay --train-model=detector.bin
//       train + save the archive and exit (feeds misusedet_serve --model).
//   ./build/examples/serve_replay --emit-trace [--sessions=N]
//       print the interleaved NDJSON trace to stdout; pipe it into
//       "misusedet_serve --model=detector.bin" for the end-to-end demo.
//   ./build/examples/serve_replay --connect=HOST:PORT [--sessions=N]
//       stream the trace to a listening misusedet_serve --listen=PORT and
//       print the verdicts that come back.
//   ./build/examples/serve_replay
//       in-process end-to-end demo: train -> save -> load -> serve the
//       trace through the ScoringServer core and summarize the alarms.
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "serve/server.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/line_io.hpp"
#include "util/socket.hpp"
#include "util/strings.hpp"

using namespace misuse;

namespace {

synth::Portal make_portal() {
  synth::PortalConfig config;
  config.sessions = 1200;
  config.users = 120;
  config.action_count = 90;
  config.seed = 11;
  return synth::Portal(config);
}

core::DetectorConfig demo_detector_config() {
  core::DetectorConfig config;
  config.ensemble.topic_counts = {8, 10};
  config.ensemble.iterations = 40;
  config.expert.target_clusters = 6;
  config.lm.hidden = 16;
  config.lm.learning_rate = 0.01f;
  config.lm.epochs = 10;
  config.lm.batching.batch_size = 8;
  return config;
}

struct TraceLine {
  std::string user_id;
  std::string session_id;
  std::string action;
  double timestamp = 0.0;
};

/// Interleaves normal sessions (held-out tail of the history) with two
/// injected attacks, round-robin with increasing timestamps — the shape
/// of live portal traffic in the paper's Fig. 2 deployment.
std::vector<TraceLine> build_trace(const synth::Portal& portal, const SessionStore& history,
                                   std::size_t session_count) {
  std::vector<std::vector<int>> sessions;
  std::vector<std::string> users;
  for (std::size_t i = history.size(); i-- > 0 && sessions.size() + 2 < session_count;) {
    if (history.at(i).length() >= 4 && history.at(i).length() <= 60) {
      sessions.emplace_back(history.at(i).actions);
      users.push_back("user" + std::to_string(history.at(i).user));
    }
  }
  Rng rng(3);
  sessions.push_back(portal.make_misuse(synth::MisuseKind::kMassProfileModification, rng).actions);
  users.push_back("attacker-mass");
  sessions.push_back(portal.make_misuse(synth::MisuseKind::kAreaHopping, rng).actions);
  users.push_back("attacker-hop");

  std::vector<TraceLine> trace;
  std::vector<std::size_t> cursor(sessions.size(), 0);
  double t = 0.0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (cursor[s] >= sessions[s].size()) continue;
      TraceLine line;
      line.user_id = users[s];
      line.session_id = "session" + std::to_string(s);
      line.action = history.vocab().name(sessions[s][cursor[s]]);
      line.timestamp = t;
      t += 0.25;  // four events per simulated second across the fleet
      ++cursor[s];
      trace.push_back(std::move(line));
      progressed = true;
    }
  }
  return trace;
}

std::string render_trace_line(const TraceLine& line) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.member("user_id", line.user_id);
    json.member("session_id", line.session_id);
    json.member("action", line.action);
    json.member("timestamp", line.timestamp);
    json.end_object();
  }
  return out.str();
}

int train_and_save(const std::string& path) {
  const synth::Portal portal = make_portal();
  const SessionStore history = portal.generate();
  std::cout << "training detector on " << history.size() << " historical sessions...\n";
  const core::MisuseDetector detector =
      core::MisuseDetector::train(history, demo_detector_config());
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  BinaryWriter writer(out);
  detector.save(writer);
  std::cout << "saved " << detector.cluster_count() << "-cluster detector to " << path << "\n";
  return 0;
}

int emit_trace(std::size_t session_count) {
  const synth::Portal portal = make_portal();
  const SessionStore history = portal.generate();
  for (const auto& line : build_trace(portal, history, session_count)) {
    std::cout << render_trace_line(line) << "\n";
  }
  return 0;
}

int connect_and_replay(const std::string& target, std::size_t session_count) {
  const auto parts = split(target, ':');
  if (parts.size() != 2) {
    std::cerr << "--connect expects HOST:PORT\n";
    return 1;
  }
  const synth::Portal portal = make_portal();
  const SessionStore history = portal.generate();
  const auto trace = build_trace(portal, history, session_count);
  // Retry with exponential backoff + deterministic jitter: the client is
  // typically racing the server's startup (or its crash recovery), so a
  // refused first connect is expected, not fatal.
  RetryConfig retry;
  retry.attempts = 5;
  retry.seed = 11;
  TcpStream stream =
      tcp_connect_retry(parts[0], static_cast<std::uint16_t>(std::stoul(parts[1])), retry);
  std::cout << "streaming " << trace.size() << " events to " << target << "...\n";
  for (const auto& line : trace) {
    stream.io() << render_trace_line(line) << "\n";
  }
  stream.shutdown_write();
  LineReader reader(stream.io());
  std::string reply;
  std::size_t verdicts = 0;
  std::size_t alarms = 0;
  while (reader.next(reply)) {
    ++verdicts;
    if (reply.find("\"alarm\":true") != std::string::npos) {
      ++alarms;
      std::cout << reply << "\n";
    }
  }
  std::cout << "=> " << verdicts << " verdicts, " << alarms << " alarm steps\n";
  return 0;
}

int in_process_demo(std::size_t session_count) {
  const synth::Portal portal = make_portal();
  const SessionStore history = portal.generate();
  std::cout << "training detector on " << history.size() << " historical sessions...\n";
  const core::MisuseDetector trained =
      core::MisuseDetector::train(history, demo_detector_config());

  // Round-trip through the archive, exactly like misusedet_serve does.
  std::stringstream archive(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(archive);
  trained.save(writer);
  BinaryReader reader(archive);
  const core::MisuseDetector detector = core::MisuseDetector::load(reader);
  std::cout << "archive round-trip ok (" << detector.cluster_count() << " clusters)\n";

  serve::ServeConfig config;
  config.shards = 4;
  config.monitor.trend_window = 4;
  serve::ScoringServer server(detector, config);

  struct PerUser {
    std::size_t steps = 0;
    std::size_t alarms = 0;
  };
  std::map<std::string, PerUser> by_user;
  std::mutex mutex;
  server.set_step_observer(
      [&](const serve::Event& event, const core::OnlineMonitor::StepResult& step) {
        std::lock_guard<std::mutex> lock(mutex);
        PerUser& u = by_user[event.user_id];
        ++u.steps;
        if (step.alarm) ++u.alarms;
      });

  const auto trace = build_trace(portal, history, session_count);
  std::vector<serve::OutputRecord> out;
  std::string error;
  for (const auto& line : trace) {
    serve::Event event;
    if (!serve::parse_event(render_trace_line(line), event, error)) continue;
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
    }
    out.clear();
  }
  server.shutdown(out);
  std::cout << "replayed " << trace.size() << " events across " << by_user.size() << " users\n";
  for (const auto& [user, stats] : by_user) {
    if (stats.alarms == 0) continue;
    std::cout << "  " << user << ": " << stats.alarms << "/" << stats.steps
              << " steps alarmed\n";
  }
  std::cout << "(attackers should dominate the alarm list; normal users mostly stay quiet)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto session_count = static_cast<std::size_t>(args.integer("sessions", 24));
  if (args.has("train-model")) return train_and_save(args.str("train-model"));
  if (args.flag("emit-trace")) return emit_trace(session_count);
  if (args.has("connect")) return connect_and_replay(args.str("connect"), session_count);
  return in_process_demo(session_count);
}

// Figs. 11 & 12 (appendix) — per-cluster normality estimation of the test
// sessions under four prediction baselines:
//   1. the true cluster's model (cluster assumed known),
//   2. the model picked by the maximal OC-SVM score on the whole session,
//   3. the model picked by the first-15-actions OC-SVM vote,
//   4. the global model.
// Fig. 11 reports average likelihood, Fig. 12 average loss.
//
// Shapes to reproduce: stronger (larger-cluster) models score higher;
// OC-SVM routing tracks the known-cluster oracle closely; the first-15
// vote avoids the long-session OC-SVM pathology.
#include <iostream>

#include "bench_common.hpp"
#include "core/monitor.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  auto& detector = experiment.detector;
  const auto& store = experiment.store;

  // Global baseline (shared with Figs. 5/10).
  const auto global_pool = bench::union_train_indices(detector);
  auto global_model =
      core::train_baseline_model(store, global_pool, config.detector.lm,
                                 store.vocab().size(), config.detector.seed + 501);

  struct Row {
    std::size_t cluster;
    std::string label;
    std::size_t size;
    core::NormalitySummary known, routed, voted, global;
  };
  std::vector<Row> rows;

  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& info = detector.cluster(c);
    Row row{c, info.label, info.size(), {}, {}, {}, {}};

    row.known = core::summarize_normality(store, info.test, [&](std::span<const int> actions) {
      return detector.score_with_cluster(c, actions);
    });
    row.routed = core::summarize_normality(store, info.test, [&](std::span<const int> actions) {
      return detector.predict(actions).score;
    });
    row.voted = core::summarize_normality(store, info.test, [&](std::span<const int> actions) {
      auto online = detector.assigner().start_online();
      for (std::size_t i = 0;
           i < actions.size() && i < detector.assigner().config().vote_actions; ++i) {
        online.push(actions[i]);
      }
      return detector.score_with_cluster(online.voted_cluster(), actions);
    });
    row.global = core::summarize_normality(store, info.test, [&](std::span<const int> actions) {
      return global_model.score_session(actions);
    });
    rows.push_back(std::move(row));
  }

  std::cout << "=== Fig. 11: per-cluster normality (avg likelihood), four baselines ===\n";
  Table fig11({"cluster", "label", "size", "known_cluster", "ocsvm_routed", "first15_vote",
               "global_model"});
  for (const auto& row : rows) {
    fig11.add_row({std::to_string(row.cluster), row.label, std::to_string(row.size),
                   Table::num(row.known.avg_likelihood), Table::num(row.routed.avg_likelihood),
                   Table::num(row.voted.avg_likelihood), Table::num(row.global.avg_likelihood)});
  }
  core::emit_table(fig11, config.results_dir, "fig11_percluster_likelihood");

  std::cout << "\n=== Fig. 12: per-cluster normality (avg loss), four baselines ===\n";
  Table fig12({"cluster", "label", "size", "known_cluster", "ocsvm_routed", "first15_vote",
               "global_model"});
  for (const auto& row : rows) {
    fig12.add_row({std::to_string(row.cluster), row.label, std::to_string(row.size),
                   Table::num(row.known.avg_loss), Table::num(row.routed.avg_loss),
                   Table::num(row.voted.avg_loss), Table::num(row.global.avg_loss)});
  }
  core::emit_table(fig12, config.results_dir, "fig12_percluster_loss");

  // Shape checks.
  std::size_t vote_tracks_oracle = 0;
  double corr_size = 0.0;
  {
    std::vector<double> sizes, likes;
    for (const auto& row : rows) {
      sizes.push_back(static_cast<double>(row.size));
      likes.push_back(row.known.avg_likelihood);
      if (row.voted.avg_likelihood >= 0.8 * row.known.avg_likelihood) ++vote_tracks_oracle;
    }
    corr_size = pearson(sizes, likes);
  }
  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  correlation(cluster size, known-cluster likelihood) = " << Table::num(corr_size, 2)
            << " (paper: larger clusters -> stronger models)\n";
  std::cout << "  first-15 vote within 20% of the known-cluster oracle: " << vote_tracks_oracle
            << "/" << rows.size() << " clusters\n";
  return 0;
}

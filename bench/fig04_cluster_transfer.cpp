// Fig. 4 — "Comparison of the test accuracy of cluster models calculated
// on the corresponding testing set against the average accuracy of the
// same model on all the other testing sets." Clusters ascend by size.
//
// The paper's two observations this bench must reproduce:
//   1. larger clusters produce stronger models, but even the smallest
//      cluster learns the prediction task;
//   2. each model performs clearly better on its own testing set than on
//      the other clusters' (the models are diverse/specific).
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  auto& detector = experiment.detector;

  std::cout << "=== Fig. 4: cluster-model accuracy, own vs other test sets ===\n";
  Table table({"cluster", "label", "size", "acc_own_test", "acc_other_tests_avg"});
  double min_own = 1.0;
  std::size_t diverse = 0;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto own = core::evaluate_model_on(detector.model(c), experiment.store,
                                             detector.cluster(c).test);
    double others_sum = 0.0;
    std::size_t others = 0;
    for (std::size_t other = 0; other < detector.cluster_count(); ++other) {
      if (other == c) continue;
      const auto stats = core::evaluate_model_on(detector.model(c), experiment.store,
                                                 detector.cluster(other).test);
      others_sum += stats.accuracy;
      ++others;
    }
    const double others_avg = others > 0 ? others_sum / static_cast<double>(others) : 0.0;
    min_own = std::min(min_own, own.accuracy);
    if (own.accuracy > others_avg) ++diverse;
    table.add_row({std::to_string(c), detector.cluster(c).label,
                   std::to_string(detector.cluster(c).size()), Table::num(own.accuracy),
                   Table::num(others_avg)});
  }
  core::emit_table(table, config.results_dir, "fig04_cluster_transfer");

  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  even the smallest cluster learns the task (min own-test accuracy "
            << Table::num(min_own) << ")\n";
  std::cout << "  models better on own test set than on others: " << diverse << "/"
            << detector.cluster_count() << " clusters\n";
  return 0;
}

// Fig. 5 — per-cluster test accuracy of the cluster model against two
// baselines: the global model (trained on the whole dataset) and a global
// model trained on an arbitrary subset of the same size as the cluster's
// training data. Clusters ascend by size.
//
// Shape to reproduce: the size-matched subset baseline clearly loses to
// the informed cluster models while data is scarce, and the cluster
// models approach (or beat) the full global model as cluster size grows.
#include <iostream>

#include "bench_common.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto rows = bench::compute_baseline_rows(experiment);

  std::cout << "=== Fig. 5: accuracy — cluster model vs global vs global-subset ===\n";
  Table table({"cluster", "label", "size", "acc_cluster", "acc_global", "acc_global_subset"});
  std::size_t beats_subset = 0, near_global = 0;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.cluster), row.label, std::to_string(row.size),
                   Table::num(row.acc_cluster), Table::num(row.acc_global),
                   Table::num(row.acc_subset)});
    if (row.acc_cluster > row.acc_subset) ++beats_subset;
    if (row.acc_cluster >= row.acc_global - 0.05) ++near_global;
  }
  core::emit_table(table, config.results_dir, "fig05_accuracy_baselines");

  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  cluster model beats size-matched subset baseline: " << beats_subset << "/"
            << rows.size() << " clusters\n";
  std::cout << "  cluster model within 0.05 of (or above) the global model: " << near_global << "/"
            << rows.size() << " clusters\n";
  return 0;
}

// §IV-D — "we also presented the most suspicious according to our
// approach sessions to the system experts... Among top 20 sessions we
// found for example [a mass create/delete/unlock session]. Such sessions
// are exactly the ones that should give alarm notification to the
// operators."
//
// The paper could only eyeball this (no labels). Our simulator *injects*
// labeled misuses, so this bench quantifies the claim: mix the united
// real test set with injected misuse sessions, rank everything by average
// likelihood (most suspicious first), and measure precision@20 and the
// rank positions of the injected misuses.
#include <algorithm>
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;

  // Build the evaluation stream: real held-out sessions + injected
  // misuses of every kind.
  struct Item {
    const Session* session;
    bool misuse;
    std::string kind;
    double avg_likelihood;
  };
  std::vector<Item> items;
  for (const auto& [i, c] : experiment.united_test_set()) {
    (void)c;
    items.push_back({&experiment.store.at(i), false, "normal", 0.0});
  }

  const auto n_misuse = static_cast<std::size_t>(
      args.integer("misuses", static_cast<std::int64_t>(items.size() / 20)));
  Rng rng(config.portal.seed + 31337);
  std::vector<Session> injected;
  injected.reserve(n_misuse);
  for (std::size_t i = 0; i < n_misuse; ++i) {
    const auto kind = static_cast<synth::MisuseKind>(
        i % static_cast<std::size_t>(synth::MisuseKind::kCount));
    injected.push_back(experiment.portal.make_misuse(kind, rng));
  }
  for (std::size_t i = 0; i < injected.size(); ++i) {
    const auto kind = static_cast<synth::MisuseKind>(
        i % static_cast<std::size_t>(synth::MisuseKind::kCount));
    items.push_back({&injected[i], true, synth::misuse_kind_name(kind), 0.0});
  }

  for (auto& item : items) {
    const auto p = detector.predict(item.session->view());
    item.avg_likelihood = p.score.likelihoods.empty() ? 0.0 : p.score.avg_likelihood();
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.avg_likelihood < b.avg_likelihood; });

  std::cout << "=== §IV-D: top suspicious sessions (lowest avg likelihood first) ===\n";
  std::cout << "stream: " << items.size() - injected.size() << " real + " << injected.size()
            << " injected misuse sessions\n";
  Table table({"rank", "avg_likelihood", "ground_truth", "length", "first_actions"});
  const std::size_t top_k = 20;
  std::size_t hits_at_20 = 0;
  for (std::size_t r = 0; r < std::min(top_k, items.size()); ++r) {
    const Item& item = items[r];
    if (item.misuse) ++hits_at_20;
    std::string preview;
    for (std::size_t a = 0; a < std::min<std::size_t>(item.session->actions.size(), 4); ++a) {
      if (a > 0) preview += ",";
      preview += experiment.store.vocab().name(item.session->actions[a]);
    }
    table.add_row({std::to_string(r + 1), Table::num(item.avg_likelihood, 5), item.kind,
                   std::to_string(item.session->length()), preview});
  }
  core::emit_table(table, config.results_dir, "tab_top_suspicious");

  // Ranking quality: AUC of misuse-vs-normal by suspicion rank.
  double auc = 0.0;
  {
    std::size_t misuse_seen = 0;
    std::size_t normal_total = items.size() - injected.size();
    std::size_t inversions = 0;
    for (const auto& item : items) {  // ascending likelihood = descending suspicion
      if (item.misuse) {
        ++misuse_seen;
      } else {
        inversions += misuse_seen;  // normals ranked after these misuses
      }
    }
    auc = injected.empty() || normal_total == 0
              ? 0.0
              : static_cast<double>(inversions) /
                    (static_cast<double>(injected.size()) * static_cast<double>(normal_total));
  }
  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  injected misuses among top-" << top_k << " suspicious: " << hits_at_20 << "\n";
  std::cout << "  misuse-vs-normal ranking AUC: " << Table::num(auc, 3)
            << " (paper: top-20 contained exactly the alarming profile-modification sessions)\n";
  return 0;
}

// Extension: the retraining loop of the paper's Fig. 2 — "the training
// phase can be repeated at any moment if security experts notice
// sufficient drift in behavior in the system" — exercised end to end with
// the DriftMonitor noticing instead of the experts.
//
// Timeline:
//   phase 1: production traffic matches the training corpus; the drift
//            monitor stays quiet and likelihoods are healthy.
//   phase 2: the portal changes (a software update reweights behaviors
//            towards a previously rare archetype and retires another);
//            the drift monitor crosses its threshold and model likelihood
//            degrades.
//   phase 3: the pipeline is retrained on a window of recent traffic;
//            likelihood recovers and the drift monitor (re-referenced)
//            settles.
#include <iostream>

#include "core/detector.hpp"
#include "core/drift.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "util/logging.hpp"

using namespace misuse;

namespace {

core::DetectorConfig small_detector(std::uint64_t seed) {
  core::DetectorConfig config;
  config.ensemble.topic_counts = {8, 10};
  config.ensemble.iterations = 50;
  config.expert.target_clusters = 10;
  config.expert.min_cluster_sessions = 15;
  config.lm.hidden = 32;
  config.lm.learning_rate = 0.01f;
  config.lm.epochs = 20;
  config.lm.patience = 2;
  config.lm.batching.batch_size = 8;
  config.seed = seed;
  return config;
}

double avg_likelihood(const core::MisuseDetector& detector, const SessionStore& store,
                      std::size_t from, std::size_t count) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = from; i < std::min(from + count, store.size()); ++i) {
    const auto score = detector.predict(store.at(i).view()).score;
    if (score.likelihoods.empty()) continue;
    sum += score.avg_likelihood();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_log_level(parse_log_level(args.str("log-level", "warn")));
  const auto seed = static_cast<std::uint64_t>(args.integer("seed", 2026));

  // Training-era portal.
  synth::PortalConfig before;
  before.sessions = static_cast<std::size_t>(args.integer("sessions", 1500));
  before.users = 150;
  before.action_count = 100;
  before.seed = seed;
  const synth::Portal old_portal(before);
  const SessionStore history = old_portal.generate();
  core::MisuseDetector detector = core::MisuseDetector::train(history, small_detector(seed + 1));

  // Post-update portal: same vocabulary, shifted behavior mix. habit
  // changes + a different seed reweight which archetypes dominate.
  synth::PortalConfig after = before;
  after.seed = seed + 500;      // different users with different habits
  after.habit_strength = 0.95;  // and stronger habits
  const synth::Portal new_portal(after);
  const SessionStore shifted = new_portal.generate();

  core::DriftConfig drift_config;
  drift_config.window_sessions = 150;
  drift_config.threshold = static_cast<double>(args.real("drift-threshold", 0.04));
  core::DriftMonitor drift(history, drift_config);

  std::cout << "=== Extension: drift detection and retraining (Fig. 2 loop) ===\n";
  Table table({"phase", "traffic", "js_divergence", "drift?", "avg_likelihood"});

  // Phase 1: in-distribution traffic.
  for (std::size_t i = 0; i < 300; ++i) drift.observe(history.at(i).view());
  table.add_row({"1: steady state", "training-era sessions",
                 Table::num(drift.current_divergence(), 4), drift.drift_detected() ? "YES" : "no",
                 Table::num(avg_likelihood(detector, history, 0, 150))});

  // Phase 2: the portal update ships.
  for (std::size_t i = 0; i < 300; ++i) drift.observe(shifted.at(i).view());
  table.add_row({"2: after update", "shifted behavior mix",
                 Table::num(drift.current_divergence(), 4), drift.drift_detected() ? "YES" : "no",
                 Table::num(avg_likelihood(detector, shifted, 0, 150))});

  // Phase 3: retrain on recent traffic (the paper: repeat the training
  // phase), re-reference the drift monitor.
  const bool retrain = drift.drift_detected();
  if (retrain) {
    detector = core::MisuseDetector::train(shifted, small_detector(seed + 2));
  }
  core::DriftMonitor drift_after(shifted, drift_config);
  for (std::size_t i = 300; i < 600; ++i) drift_after.observe(shifted.at(i).view());
  table.add_row({retrain ? "3: retrained" : "3: (no drift seen)", "shifted behavior mix",
                 Table::num(drift_after.current_divergence(), 4),
                 drift_after.drift_detected() ? "YES" : "no",
                 Table::num(avg_likelihood(detector, shifted, 300, 150))});

  core::emit_table(table, args.str("results-dir", "results"), "ext_drift_retraining");

  std::cout << "\n(the divergence spike triggers the retraining the paper leaves to the\n"
               " experts' judgment; likelihood on post-update traffic recovers after it)\n";
  return 0;
}

// Ablation: LSTM language models vs a first-order Markov-chain baseline.
//
// The paper chooses LSTMs following the literature (§II cites LSTM
// language models as the state of the art), without an explicit classical
// baseline. This ablation quantifies what the recurrence actually buys on
// this task: per-cluster next-action accuracy/loss, and real-vs-random
// anomaly separation (AUC) for both model families.
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "lm/markov.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  auto& detector = experiment.detector;
  const auto& store = experiment.store;

  std::cout << "=== Ablation: LSTM vs Markov-chain baseline ===\n";
  Table table({"cluster", "size", "lstm_acc", "markov_acc", "lstm_loss", "markov_loss"});
  std::size_t lstm_wins_acc = 0;
  std::vector<lm::MarkovChainModel> markov_models;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& info = detector.cluster(c);
    std::vector<std::span<const int>> train, test;
    for (std::size_t i : info.train) train.push_back(store.at(i).view());
    for (std::size_t i : info.test) test.push_back(store.at(i).view());

    lm::MarkovChainModel markov({.vocab = store.vocab().size(), .smoothing = 0.1});
    markov.fit(train);
    const auto markov_eval = markov.evaluate(test);
    const auto lstm_eval = core::evaluate_model_on(detector.model(c), store, info.test);
    if (lstm_eval.accuracy > markov_eval.accuracy) ++lstm_wins_acc;

    table.add_row({std::to_string(c), std::to_string(info.size()),
                   Table::num(lstm_eval.accuracy), Table::num(markov_eval.accuracy),
                   Table::num(lstm_eval.loss), Table::num(markov_eval.loss)});
    markov_models.push_back(std::move(markov));
  }
  core::emit_table(table, config.results_dir, "abl_markov_accuracy");

  // Anomaly separation: score the united real test set and a random set
  // under both families (routing by OC-SVM in both cases).
  const auto united = experiment.united_test_set();
  const SessionStore random_store =
      experiment.portal.generate_random_sessions(united.size(), config.portal.seed + 71);

  std::vector<double> lstm_real, lstm_random, markov_real, markov_random;
  for (const auto& [i, c] : united) {
    const auto view = store.at(i).view();
    const auto lstm_score = detector.score_with_cluster(c, view);
    const auto markov_score = markov_models[c].score_session(view);
    if (lstm_score.likelihoods.empty()) continue;
    lstm_real.push_back(lstm_score.avg_likelihood());
    markov_real.push_back(markov_score.avg_likelihood());
  }
  for (const auto& s : random_store.all()) {
    const std::size_t c = detector.route(s.view());
    lstm_random.push_back(detector.score_with_cluster(c, s.view()).avg_likelihood());
    markov_random.push_back(markov_models[c].score_session(s.view()).avg_likelihood());
  }

  Table auc({"model", "auc_real_vs_random", "avg_real_likelihood", "avg_random_likelihood"});
  auc.add_row({"LSTM", Table::num(core::anomaly_auc(lstm_real, lstm_random), 4),
               Table::num(mean(lstm_real)), Table::num(mean(lstm_random))});
  auc.add_row({"Markov", Table::num(core::anomaly_auc(markov_real, markov_random), 4),
               Table::num(mean(markov_real)), Table::num(mean(markov_random))});
  std::cout << "\n";
  core::emit_table(auc, config.results_dir, "abl_markov_auc");

  std::cout << "\ntakeaway: LSTM beats the Markov baseline on accuracy in " << lstm_wins_acc
            << "/" << detector.cluster_count()
            << " clusters; both separate random sessions (first-order structure is strong on\n"
               "this corpus — the LSTM's margin comes from longer-range workflow state).\n";
  return 0;
}

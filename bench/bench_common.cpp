#include "bench_common.hpp"

#include "util/logging.hpp"

namespace misuse::bench {

std::vector<BaselineRow> compute_baseline_rows(core::Experiment& experiment) {
  auto& detector = experiment.detector;
  const auto& store = experiment.store;
  const std::size_t vocab = store.vocab().size();
  const auto global_pool = union_train_indices(detector);

  log_info() << "training global baseline on " << global_pool.size() << " sessions";
  auto global_model =
      core::train_baseline_model(store, global_pool, experiment.config.detector.lm, vocab,
                                 experiment.config.detector.seed + 501);

  Rng rng(experiment.config.detector.seed + 777);
  std::vector<BaselineRow> rows;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& info = detector.cluster(c);
    BaselineRow row;
    row.cluster = c;
    row.label = info.label;
    row.size = info.size();

    const auto cluster_eval = core::evaluate_model_on(detector.model(c), store, info.test);
    row.acc_cluster = cluster_eval.accuracy;
    row.loss_cluster = cluster_eval.loss;

    const auto global_eval = core::evaluate_model_on(global_model, store, info.test);
    row.acc_global = global_eval.accuracy;
    row.loss_global = global_eval.loss;

    const auto subset = random_subset(global_pool, info.train.size(), rng);
    log_info() << "training global-subset baseline for cluster " << c << " (" << subset.size()
               << " sessions)";
    auto subset_model = core::train_baseline_model(
        store, subset, experiment.config.detector.lm, vocab,
        experiment.config.detector.seed + 900 + c);
    const auto subset_eval = core::evaluate_model_on(subset_model, store, info.test);
    row.acc_subset = subset_eval.accuracy;
    row.loss_subset = subset_eval.loss;

    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace misuse::bench

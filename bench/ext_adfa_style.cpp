// Extension: the paper's §V evaluation plan, implemented. "In the future
// we want to consider one of the publicly available datasets (such as
// ADFA) in order to compare our approach to the others and evaluate its
// ability for identifying malicious behavior."
//
// We run the unchanged pipeline on an ADFA-style host-intrusion workload
// (system-call traces; see src/synth/syscalls.hpp): train on normal
// program traces, then score held-out normal traces against labeled
// attack traces of four classes. Reports per-attack-class AUC and
// detection rate at a fixed false-positive budget.
#include <algorithm>
#include <iostream>

#include "core/detector.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "synth/syscalls.hpp"
#include "util/logging.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_log_level(parse_log_level(args.str("log-level", "info")));
  synth::SyscallWorkloadConfig workload_config;
  workload_config.normal_traces =
      static_cast<std::size_t>(args.integer("traces", 2500));
  workload_config.seed = static_cast<std::uint64_t>(args.integer("seed", 4242));
  const synth::SyscallWorkload workload(workload_config);
  SessionStore store = workload.generate();

  std::cout << "=== Extension (SS V): ADFA-style host intrusion detection ===\n";
  std::cout << "normal traces: " << store.size() << ", syscall vocabulary: "
            << store.vocab().size() << ", mean trace length: "
            << Table::num(store.length_summary().mean, 1) << "\n";

  core::DetectorConfig config;
  config.ensemble.topic_counts = {6, 8};
  config.ensemble.iterations = static_cast<std::size_t>(args.integer("lda-iters", 60));
  config.expert.target_clusters = static_cast<std::size_t>(args.integer("clusters", 6));
  config.expert.min_cluster_sessions = 30;
  config.lm.hidden = static_cast<std::size_t>(args.integer("hidden", 48));
  config.lm.learning_rate = static_cast<float>(args.real("lr", 0.01));
  config.lm.epochs = static_cast<std::size_t>(args.integer("epochs", 25));
  config.lm.batching.batch_size = 8;
  config.lm.batching.window = 64;
  config.seed = workload_config.seed + 2;
  const core::MisuseDetector detector = core::MisuseDetector::train(store, config);

  std::cout << "\nlearned program clusters:\n";
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    std::cout << "  " << detector.cluster(c).label << " (" << detector.cluster(c).size()
              << " traces)\n";
  }

  // Score held-out normal traces.
  std::vector<double> normal_scores;
  for (const auto& [i, c] : [&] {
         std::vector<std::pair<std::size_t, std::size_t>> out;
         for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
           for (std::size_t i : detector.cluster(c).test) out.emplace_back(i, c);
         }
         return out;
       }()) {
    (void)c;
    const auto score = detector.predict(store.at(i).view()).score;
    if (!score.likelihoods.empty()) normal_scores.push_back(score.avg_likelihood());
  }

  // Score attacks per class.
  const std::size_t attacks_per_class =
      static_cast<std::size_t>(args.integer("attacks-per-class", 50));
  const auto attack_set = workload.make_attack_set(
      attacks_per_class * static_cast<std::size_t>(synth::SyscallAttack::kCount),
      workload_config.seed + 99);

  // Detection threshold at ~5% false positives on the normal test scores.
  std::vector<double> sorted = normal_scores;
  std::sort(sorted.begin(), sorted.end());
  const double threshold = sorted[sorted.size() / 20];

  Table table({"attack_class", "traces", "auc", "detection_at_5pct_fpr",
               "avg_likelihood"});
  for (std::size_t k = 0; k < static_cast<std::size_t>(synth::SyscallAttack::kCount); ++k) {
    std::vector<double> scores;
    for (std::size_t i = k; i < attack_set.size();
         i += static_cast<std::size_t>(synth::SyscallAttack::kCount)) {
      const auto score = detector.predict(attack_set[i].view()).score;
      scores.push_back(score.likelihoods.empty() ? 0.0 : score.avg_likelihood());
    }
    std::size_t detected = 0;
    for (double s : scores) {
      if (s < threshold) ++detected;
    }
    table.add_row({synth::syscall_attack_name(static_cast<synth::SyscallAttack>(k)),
                   std::to_string(scores.size()),
                   Table::num(core::anomaly_auc(normal_scores, scores), 4),
                   Table::num(static_cast<double>(detected) / static_cast<double>(scores.size())),
                   Table::num(mean(scores))});
  }
  std::cout << "\n";
  core::emit_table(table, args.str("results-dir", "results"), "ext_adfa_style");

  std::cout << "\n(the pipeline transfers unchanged from portal click-streams to syscall\n"
               " traces — sessions are just sequences of discrete actions, as SS I argues)\n";
  return 0;
}

// Fig. 7 — "Online regime of approach application. Average of likelihood
// for each next action in each of the testing sessions is calculated for
// two baselines: predicted on every step model, and predicted during
// first 15 actions model." Sequence length restricted to 300 actions.
//
// Shapes to reproduce: the likelihood level is fairly stable over the
// first ~100 actions and then degrades with growing variance; selecting
// the cluster from the first 15 actions gives a more stable curve without
// the early drop of the per-step argmax strategy.
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "core/monitor.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto united = experiment.united_test_set();

  const std::size_t max_positions =
      static_cast<std::size_t>(args.integer("max-positions", 300));
  core::PositionCurve argmax_curve(max_positions);
  core::PositionCurve voted_curve(max_positions);

  core::OnlineMonitor monitor(experiment.detector, core::MonitorConfig{});
  for (const auto& [session_index, true_cluster] : united) {
    (void)true_cluster;
    const Session& session = experiment.store.at(session_index);
    monitor.reset();
    for (std::size_t i = 0; i < session.actions.size() && i < max_positions; ++i) {
      const auto result = monitor.observe(session.actions[i]);
      if (result.likelihood_argmax) argmax_curve.add(i, *result.likelihood_argmax);
      if (result.likelihood_voted) voted_curve.add(i, *result.likelihood_voted);
    }
  }

  std::cout << "=== Fig. 7: online likelihood per action, two cluster-selection strategies ===\n";
  std::cout << "united test set: " << united.size() << " sessions (curves cut at " << max_positions
            << " actions)\n";
  Table table({"action", "sessions", "likelihood_argmax_each_step", "likelihood_first15_vote",
               "stddev_first15_vote"});
  const std::size_t usable = voted_curve.usable_length(3);
  for (std::size_t p = 1; p < usable; ++p) {
    table.add_row({std::to_string(p + 1), std::to_string(voted_curve.count(p)),
                   Table::num(argmax_curve.mean(p), 5), Table::num(voted_curve.mean(p), 5),
                   Table::num(voted_curve.stddev(p), 5)});
  }
  core::emit_table(table, config.results_dir, "fig07_online_regime");

  // Shape check: the voted strategy must not start lower than the
  // per-step argmax strategy (the paper's "without significant drop in
  // the beginning").
  const std::size_t vote = experiment.detector.assigner().config().vote_actions;
  double argmax_early = 0.0, voted_early = 0.0;
  std::size_t n = 0;
  for (std::size_t p = 1; p < std::min(usable, vote); ++p) {
    argmax_early += argmax_curve.mean(p);
    voted_early += voted_curve.mean(p);
    ++n;
  }
  std::cout << "\nshape checks vs paper:\n";
  if (n > 0) {
    std::cout << "  early (first " << vote << " actions) avg likelihood — per-step argmax: "
              << Table::num(argmax_early / static_cast<double>(n)) << ", first-15 vote: "
              << Table::num(voted_early / static_cast<double>(n))
              << (voted_early >= argmax_early ? "  (vote is more stable, as in the paper)" : "")
              << "\n";
  }
  return 0;
}

// Serial-vs-parallel wall-clock comparison of every pipeline stage that
// fans out over the thread pool (util/thread_pool.hpp), recorded to
// BENCH_parallel.json. Not a paper figure: this is the scaling record for
// the execution layer — per-cluster LSTM training (k = 13, the paper's
// cluster count), the LDA ensemble, blocked GEMM, and batch session
// monitoring. Results are bit-identical across thread counts by the
// determinism contract, so only time changes.
//
// Timings come from the trace layer (util/trace.hpp): every repetition
// runs under a Span named after the stage, and the reported number is
// that node's min_seconds — the same instrument the pipeline itself
// exports via --metrics-out. The monitor stage also runs once with
// metric recording disabled to bound the instrumentation overhead of the
// per-step telemetry (the <5% budget documented in DESIGN.md).
//
//   ./bench/bench_parallel [--threads=1,2,4,8] [--out=BENCH_parallel.json] [--reduced]
//
// --reduced shrinks the workloads and the default thread sweep to 1,2 —
// the CI smoke configuration, which cares about "runs and writes valid
// JSON", not about the timings themselves.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "lm/language_model.hpp"
#include "synth/portal.hpp"
#include "tensor/ops.hpp"
#include "topics/ensemble.hpp"
#include "util/cli.hpp"
#include "util/hostinfo.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse {
namespace {

constexpr std::size_t kClusters = 13;  // the paper's k
constexpr int kRepetitions = 3;        // best-of to suppress scheduler noise

struct StageResult {
  std::string stage;
  std::size_t threads = 0;
  double seconds = 0.0;
};

// Runs `fn` kRepetitions times, each under a Span named `stage`, and
// reads the fastest repetition back from the aggregated trace tree.
// Assumes the caller trace_reset()s between rounds so the min is fresh.
template <typename Fn>
double best_of(std::string_view stage, const Fn& fn) {
  for (int r = 0; r < kRepetitions; ++r) {
    Span span(stage);
    fn();
  }
  const TraceStats tree = trace_snapshot();
  const TraceStats* stats = find_span(tree, stage);
  return stats != nullptr && stats->count > 0 ? stats->min_seconds : 0.0;
}

std::vector<std::vector<std::vector<int>>> make_cluster_corpus(std::size_t sessions_per_cluster,
                                                               std::size_t vocab) {
  std::vector<std::vector<std::vector<int>>> corpus(kClusters);
  for (std::size_t c = 0; c < kClusters; ++c) {
    Rng rng = Rng::stream(31, c);
    corpus[c].resize(sessions_per_cluster);
    for (auto& s : corpus[c]) {
      s.resize(15);
      for (auto& a : s) a = static_cast<int>(rng.uniform_index(vocab));
    }
  }
  return corpus;
}

double time_per_cluster_training(const std::vector<std::vector<std::vector<int>>>& corpus) {
  return best_of("per_cluster_lstm_train_k13", [&] {
    global_pool().parallel_for(0, kClusters, [&](std::size_t c) {
      lm::LmConfig config;
      config.vocab = 60;
      config.hidden = 24;
      config.epochs = 3;
      config.patience = 0;
      config.seed = 100 + c;
      lm::ActionLanguageModel model(config);
      const std::vector<std::span<const int>> train(corpus[c].begin(), corpus[c].end());
      (void)model.fit(train, {});
    });
  });
}

double time_lda_ensemble(const std::vector<std::vector<int>>& docs) {
  return best_of("lda_ensemble_4runs", [&] {
    topics::EnsembleConfig config;
    config.topic_counts = {10, 13, 16, 20};
    config.iterations = 20;
    (void)topics::LdaEnsemble::fit(docs, 80, config);
  });
}

double time_gemm() {
  Rng rng(17);
  const std::size_t n = 256;
  Matrix a(n, n), b(n, n), c(n, n);
  a.init_gaussian(rng, 1.0f);
  b.init_gaussian(rng, 1.0f);
  return best_of("gemm_256x256x256_x20", [&] {
    for (int i = 0; i < 20; ++i) gemm(1.0f, a, b, 0.0f, c, GemmPolicy::kParallel);
  });
}

double time_monitor_batch(std::string_view stage, const core::MisuseDetector& detector,
                          std::span<const std::span<const int>> sessions) {
  return best_of(stage, [&] {
    (void)core::monitor_sessions(detector, core::MonitorConfig{}, sessions);
  });
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_parallel.json");
  std::vector<std::size_t> thread_counts;
  for (const auto& tok : split(args.str("threads", reduced ? "1,2" : "1,2,4,8"), ',')) {
    thread_counts.push_back(static_cast<std::size_t>(std::stoul(tok)));
  }

  // Shared workloads (built once; identical for every thread count).
  const auto corpus = make_cluster_corpus(reduced ? 8 : 30, 60);
  Rng doc_rng(23);
  std::vector<std::vector<int>> docs(reduced ? 60 : 250);
  for (auto& d : docs) {
    d.resize(15);
    for (auto& w : d) w = static_cast<int>(doc_rng.uniform_index(80));
  }
  // A small trained detector for the batch-monitoring stage.
  synth::PortalConfig portal_config;
  portal_config.sessions = 220;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();
  core::DetectorConfig detector_config;
  detector_config.ensemble.topic_counts = {10, 13};
  detector_config.ensemble.iterations = 8;
  detector_config.expert.target_clusters = 4;
  detector_config.expert.min_cluster_sessions = 5;
  detector_config.lm.hidden = 8;
  detector_config.lm.epochs = 2;
  detector_config.lm.patience = 0;
  set_global_threads(1);
  const core::MisuseDetector detector = core::MisuseDetector::train(store, detector_config);
  std::vector<std::span<const int>> monitor_sessions_views;
  for (std::size_t i = 0; i < std::min<std::size_t>(store.size(), 64); ++i) {
    monitor_sessions_views.push_back(store.at(i).view());
  }

  std::vector<StageResult> results;
  struct OverheadResult {
    std::size_t threads = 0;
    double instrumented_seconds = 0.0;
    double bare_seconds = 0.0;
  };
  std::vector<OverheadResult> overheads;
  for (const std::size_t threads : thread_counts) {
    set_global_threads(threads);
    trace_reset();  // fresh min/max for this round's stage spans
    results.push_back({"per_cluster_lstm_train_k13", threads, time_per_cluster_training(corpus)});
    results.push_back({"lda_ensemble_4runs", threads, time_lda_ensemble(docs)});
    results.push_back({"gemm_256x256x256_x20", threads, time_gemm()});
    const double monitor_on =
        time_monitor_batch("monitor_batch_64_sessions", detector, monitor_sessions_views);
    results.push_back({"monitor_batch_64_sessions", threads, monitor_on});
    // Same workload with metric recording off (spans stay live on both
    // sides, so the comparison isolates the counter/histogram cost on
    // the per-step hot path).
    set_metrics_enabled(false);
    const double monitor_off =
        time_monitor_batch("monitor_batch_64_sessions_bare", detector, monitor_sessions_views);
    set_metrics_enabled(true);
    overheads.push_back({threads, monitor_on, monitor_off});
    const double overhead_pct =
        monitor_off > 0.0 ? (monitor_on / monitor_off - 1.0) * 100.0 : 0.0;
    std::cout << "threads=" << threads << " done (monitor metrics overhead " << overhead_pct
              << "%)\n";
  }
  set_global_threads(1);

  const auto serial_seconds = [&](const std::string& stage) {
    for (const auto& r : results) {
      if (r.stage == stage && r.threads == 1) return r.seconds;
    }
    return 0.0;
  };

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  json.member("hardware_concurrency",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  write_host_info(json);
  json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  json.member("note",
              "Wall-clock seconds per stage (trace-span min over repetitions); speedup is "
              "serial_time / time. Outputs are bit-identical across thread counts (determinism "
              "contract, util/thread_pool.hpp). Speedups above 1 require the host to expose that "
              "many cores; on a single-core host every row degenerates to ~1x.");
  json.key("stages");
  json.begin_array();
  for (const auto& r : results) {
    json.begin_object();
    json.member("stage", r.stage);
    json.member("threads", r.threads);
    json.member("seconds", r.seconds);
    const double serial = serial_seconds(r.stage);
    json.member("speedup_vs_serial", r.seconds > 0.0 ? serial / r.seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  // Instrumentation cost of the per-step monitor telemetry: same batch
  // replay with metric recording on vs off.
  json.key("monitor_metrics_overhead");
  json.begin_array();
  for (const auto& o : overheads) {
    json.begin_object();
    json.member("threads", o.threads);
    json.member("instrumented_seconds", o.instrumented_seconds);
    json.member("bare_seconds", o.bare_seconds);
    json.member("overhead_ratio",
                o.bare_seconds > 0.0 ? o.instrumented_seconds / o.bare_seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

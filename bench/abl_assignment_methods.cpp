// Ablation: cluster-assignment methods. The paper (§II) considered
// "simply finding the closest mean" and "K nearest neighbors" before
// preferring OC-SVMs for generalization and fast prediction. This bench
// turns that design decision into numbers: routing accuracy on the united
// test set and per-session prediction latency for all three methods.
#include <iostream>

#include "cluster/baselines.hpp"
#include "core/experiment.hpp"
#include "util/trace.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto& store = experiment.store;

  // Train the baselines on the same per-cluster training sessions the
  // OC-SVMs saw.
  std::vector<std::vector<std::span<const int>>> cluster_sessions(detector.cluster_count());
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    for (std::size_t i : detector.cluster(c).train) {
      cluster_sessions[c].push_back(store.at(i).view());
    }
  }
  const ocsvm::FeaturizerConfig features{.vocab = store.vocab().size(),
                                         .normalize = false,
                                         .length_feature_weight = 0.0};
  const auto centroid = cluster::NearestCentroidAssigner::train(cluster_sessions, features);
  const auto knn = cluster::KnnAssigner::train(cluster_sessions, features,
                                               static_cast<std::size_t>(args.integer("knn", 9)));

  const auto united = experiment.united_test_set();
  struct MethodResult {
    const char* name;
    std::size_t correct = 0;
    double seconds = 0.0;
  };
  MethodResult results[3] = {{"oc-svm (paper)"}, {"nearest-centroid"}, {"k-nn"}};

  for (const auto& [i, true_cluster] : united) {
    const auto view = store.at(i).view();
    Span t0("assign.ocsvm");
    if (detector.route(view) == true_cluster) ++results[0].correct;
    results[0].seconds += t0.stop();
    Span t1("assign.centroid");
    if (centroid.assign(view) == true_cluster) ++results[1].correct;
    results[1].seconds += t1.stop();
    Span t2("assign.knn");
    if (knn.assign(view) == true_cluster) ++results[2].correct;
    results[2].seconds += t2.stop();
  }

  std::cout << "=== Ablation: cluster-assignment methods (" << united.size()
            << " united test sessions) ===\n";
  Table table({"method", "routing_accuracy", "avg_prediction_us"});
  for (const auto& r : results) {
    table.add_row({r.name,
                   Table::num(static_cast<double>(r.correct) / static_cast<double>(united.size())),
                   Table::num(r.seconds / static_cast<double>(united.size()) * 1e6, 1)});
  }
  core::emit_table(table, config.results_dir, "abl_assignment_methods");

  std::cout << "\n(\"true cluster\" = the expert clustering that produced the test splits;\n"
               " k-nn uses k=" << knn.k() << " over " << knn.training_points()
            << " training sessions)\n";
  return 0;
}

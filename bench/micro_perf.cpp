// Microbenchmarks (google-benchmark) of the hot kernels under every
// experiment: GEMM, LSTM training/inference, LDA Gibbs sweeps, OC-SVM
// scoring, featurization, t-SNE iterations, and corpus generation. Not a
// paper figure — this is the performance baseline for regressions.
#include <benchmark/benchmark.h>

#include "core/drift.hpp"
#include "lm/batching.hpp"
#include "lm/language_model.hpp"
#include "lm/markov.hpp"
#include "nn/next_action_model.hpp"
#include "ocsvm/features.hpp"
#include "ocsvm/ocsvm.hpp"
#include "synth/portal.hpp"
#include "tensor/ops.hpp"
#include "topics/ensemble.hpp"
#include "topics/lda.hpp"
#include "tsne/tsne.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  a.init_gaussian(rng, 1.0f);
  b.init_gaussian(rng, 1.0f);
  for (auto _ : state) {
    gemm(1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_LstmStreamingStep(benchmark::State& state) {
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::ModelConfig config{.vocab = 300, .hidden = hidden, .dropout = 0.0f};
  nn::NextActionModel model(config, rng);
  auto lstm_state = model.make_state();
  int action = 0;
  for (auto _ : state) {
    const auto probs = model.step(lstm_state, action);
    action = static_cast<int>(argmax(probs));
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LstmStreamingStep)->Arg(48)->Arg(128)->Arg(256);

void BM_GruStreamingStep(benchmark::State& state) {
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(12);
  nn::ModelConfig config{.vocab = 300, .hidden = hidden, .cell = nn::CellKind::kGru,
                         .dropout = 0.0f};
  nn::NextActionModel model(config, rng);
  auto model_state = model.make_state();
  int action = 0;
  for (auto _ : state) {
    const auto probs = model.step(model_state, action);
    action = static_cast<int>(argmax(probs));
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GruStreamingStep)->Arg(48)->Arg(256);

void BM_MarkovScoreSession(benchmark::State& state) {
  Rng rng(13);
  std::vector<std::vector<int>> train(200);
  for (auto& s : train) {
    s.resize(15);
    for (auto& a : s) a = static_cast<int>(rng.uniform_index(300));
  }
  lm::MarkovChainModel markov({.vocab = 300, .smoothing = 0.1});
  markov.fit(std::vector<std::span<const int>>(train.begin(), train.end()));
  std::vector<int> probe(30);
  for (auto& a : probe) a = static_cast<int>(rng.uniform_index(300));
  for (auto _ : state) {
    const auto score = markov.score_session(probe);
    benchmark::DoNotOptimize(score.likelihoods.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 29);
}
BENCHMARK(BM_MarkovScoreSession);

void BM_DriftObserve(benchmark::State& state) {
  Rng rng(14);
  ActionVocab vocab;
  for (int i = 0; i < 300; ++i) vocab.intern("A" + std::to_string(i));
  SessionStore store(std::move(vocab));
  for (int i = 0; i < 100; ++i) {
    Session s;
    s.id = static_cast<std::uint64_t>(i);
    for (int j = 0; j < 15; ++j) {
      s.actions.push_back(static_cast<int>(rng.uniform_index(300)));
    }
    store.add(std::move(s));
  }
  core::DriftMonitor monitor(store, {});
  std::vector<int> session(15);
  for (auto& a : session) a = static_cast<int>(rng.uniform_index(300));
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.observe(session));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DriftObserve);

void BM_LstmTrainBatch(benchmark::State& state) {
  const auto hidden = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::ModelConfig config{.vocab = 100, .hidden = hidden, .dropout = 0.4f};
  nn::NextActionModel model(config, rng);
  nn::Adam adam(1e-3f);
  nn::SequenceBatch batch;
  const std::size_t t_steps = 16, batch_size = 8;
  batch.tokens.assign(t_steps, std::vector<int>(batch_size));
  batch.targets.assign(t_steps, std::vector<int>(batch_size));
  for (auto& row : batch.tokens) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_index(100));
  }
  for (auto& row : batch.targets) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_index(100));
  }
  for (auto _ : state) {
    const auto stats = model.train_batch(batch, adam, rng);
    benchmark::DoNotOptimize(stats.loss);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * t_steps * batch_size);
}
BENCHMARK(BM_LstmTrainBatch)->Arg(48)->Arg(128);

void BM_LdaGibbsSweep(benchmark::State& state) {
  const auto topics_count = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<std::vector<int>> docs(300);
  for (auto& d : docs) {
    d.resize(15);
    for (auto& w : d) w = static_cast<int>(rng.uniform_index(100));
  }
  for (auto _ : state) {
    topics::LdaConfig config;
    config.topics = topics_count;
    config.iterations = 1;
    const auto model = topics::fit_lda(docs, 100, config);
    benchmark::DoNotOptimize(model.topic_action.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 300 * 15);
}
BENCHMARK(BM_LdaGibbsSweep)->Arg(13)->Arg(20);

void BM_OcSvmScore(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<float>> train(200, std::vector<float>(101));
  for (auto& x : train) {
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 0.3));
  }
  ocsvm::OcSvmConfig config;
  config.nu = 0.1;
  const auto svm = ocsvm::OneClassSvm::train(train, config);
  std::vector<float> probe(101);
  for (auto& v : probe) v = static_cast<float>(rng.normal(0.0, 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm.score(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OcSvmScore);

void BM_SessionFeaturize(benchmark::State& state) {
  Rng rng(6);
  ocsvm::SessionFeaturizer featurizer({.vocab = 300, .length_feature_weight = 0.1});
  std::vector<int> session(50);
  for (auto& a : session) a = static_cast<int>(rng.uniform_index(300));
  for (auto _ : state) {
    const auto f = featurizer.featurize(session);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SessionFeaturize);

void BM_TsneIteration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix points(n, 32);
  points.init_gaussian(rng, 1.0f);
  for (auto _ : state) {
    tsne::TsneConfig config;
    config.iterations = 1;
    const auto result = tsne::run_tsne(points, config);
    benchmark::DoNotOptimize(result.embedding.data());
  }
}
BENCHMARK(BM_TsneIteration)->Arg(60)->Arg(120);

void BM_PortalGeneration(benchmark::State& state) {
  synth::PortalConfig config;
  config.sessions = static_cast<std::size_t>(state.range(0));
  config.seed = 8;
  const synth::Portal portal(config);
  for (auto _ : state) {
    const auto store = portal.generate();
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PortalGeneration)->Arg(1000)->Arg(15000);

void BM_WindowedBatching(benchmark::State& state) {
  Rng rng(9);
  std::vector<int> session(90);
  for (auto& a : session) a = static_cast<int>(rng.uniform_index(300));
  for (auto _ : state) {
    const auto examples = lm::make_window_examples(session, 100);
    benchmark::DoNotOptimize(examples.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 89);
}
BENCHMARK(BM_WindowedBatching);

// --- Observability layer: cost of recording one event ------------------
// These bound the per-event overhead the instrumented hot paths pay
// (see DESIGN.md "Observability"): a counter bump and a histogram record
// are a few relaxed atomics; a span open/close additionally resolves its
// tree node under the global mutex, which is why spans stay out of
// per-action code.

void BM_MetricsCounterInc(benchmark::State& state) {
  Counter& counter = metrics().counter("bench.counter");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  HistogramMetric& histogram = metrics().histogram("bench.histogram");
  double value = 1e-6;
  for (auto _ : state) {
    histogram.record(value);
    value = value < 1.0 ? value * 1.5 : 1e-6;  // touch many buckets
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsCounterIncDisabled(benchmark::State& state) {
  // The cost left behind on instrumented paths when recording is off.
  Counter& counter = metrics().counter("bench.counter_disabled");
  set_metrics_enabled(false);
  for (auto _ : state) {
    counter.inc();
  }
  set_metrics_enabled(true);
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsCounterIncDisabled);

void BM_TraceSpan(benchmark::State& state) {
  // Nested open/close so the child resolves against a non-root parent,
  // as pipeline spans do.
  Span outer("bench.span_outer");
  for (auto _ : state) {
    Span span("bench.span_inner");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceSpan);

// --- Parallel execution layer: serial vs thread pool -------------------
// The Arg is the worker count of the global pool; Arg(1) is the exact
// serial path (no threads created). Results are bit-identical across
// args by the determinism contract, so these measure pure scheduling.

void BM_GemmThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  set_global_threads(threads);
  Rng rng(21);
  const std::size_t n = 192;
  Matrix a(n, n), b(n, n), c(n, n);
  a.init_gaussian(rng, 1.0f);
  b.init_gaussian(rng, 1.0f);
  for (auto _ : state) {
    gemm(1.0f, a, b, 0.0f, c, GemmPolicy::kParallel);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
  set_global_threads(1);
}
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Synthetic per-cluster corpus shared by the fan-out benches below.
std::vector<std::vector<std::vector<int>>> make_cluster_corpus(std::size_t clusters,
                                                               std::size_t sessions_per_cluster,
                                                               std::size_t vocab) {
  std::vector<std::vector<std::vector<int>>> corpus(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    Rng rng = Rng::stream(31, c);
    corpus[c].resize(sessions_per_cluster);
    for (auto& s : corpus[c]) {
      s.resize(15);
      for (auto& a : s) a = static_cast<int>(rng.uniform_index(vocab));
    }
  }
  return corpus;
}

void BM_PerClusterLstmTrainThreads(benchmark::State& state) {
  // The dominant training cost of MisuseDetector::train: k = 13
  // independent per-cluster LSTM fits (paper's cluster count), fanned
  // out over the pool exactly as detector.cpp does.
  const auto threads = static_cast<std::size_t>(state.range(0));
  set_global_threads(threads);
  constexpr std::size_t kClusters = 13;
  const auto corpus = make_cluster_corpus(kClusters, 24, 50);
  for (auto _ : state) {
    global_pool().parallel_for(0, kClusters, [&](std::size_t c) {
      lm::LmConfig config;
      config.vocab = 50;
      config.hidden = 16;
      config.epochs = 2;
      config.patience = 0;
      config.seed = 100 + c;
      lm::ActionLanguageModel model(config);
      const std::vector<std::span<const int>> train(corpus[c].begin(), corpus[c].end());
      const auto history = model.fit(train, {});
      benchmark::DoNotOptimize(history.size());
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kClusters);
  set_global_threads(1);
}
BENCHMARK(BM_PerClusterLstmTrainThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_LdaEnsembleThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  set_global_threads(threads);
  Rng rng(23);
  std::vector<std::vector<int>> docs(200);
  for (auto& d : docs) {
    d.resize(15);
    for (auto& w : d) w = static_cast<int>(rng.uniform_index(80));
  }
  topics::EnsembleConfig config;
  config.topic_counts = {10, 13, 16, 20};
  config.iterations = 15;
  for (auto _ : state) {
    const auto ensemble = topics::LdaEnsemble::fit(docs, 80, config);
    benchmark::DoNotOptimize(ensemble.topic_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
  set_global_threads(1);
}
BENCHMARK(BM_LdaEnsembleThreads)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace misuse

BENCHMARK_MAIN();

// Ablation: per-cluster hyperparameter re-evaluation. The paper (§IV-A):
// "Since we considered the full dataset for evaluation of hyper
// parameters it might happen that additional reevaluation for each of the
// clusters can improve the results. Nevertheless, this is left for the
// future exploration." — explored here.
//
// For each cluster we grid-search (hidden units x layers) on the
// validation split and compare the per-cluster winner against the one
// global configuration the paper (and our default pipeline) uses.
#include <iostream>
#include <limits>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  auto& detector = experiment.detector;
  const auto& store = experiment.store;

  const std::size_t hidden_grid[] = {16, 48, 96};
  const std::size_t layer_grid[] = {1, 2};

  std::cout << "=== Ablation: per-cluster hyperparameter re-evaluation (SS IV-A) ===\n";
  Table table({"cluster", "size", "fixed_test_acc", "best_hidden", "best_layers",
               "tuned_test_acc", "gain"});
  double total_gain = 0.0;
  std::size_t improved = 0;

  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& info = detector.cluster(c);
    const auto fixed_eval = core::evaluate_model_on(detector.model(c), store, info.test);

    // Select on validation, report on test (no peeking).
    double best_valid = -std::numeric_limits<double>::infinity();
    std::size_t best_hidden = config.detector.lm.hidden;
    std::size_t best_layers = 1;
    lm::EvalStats best_test{};
    for (const std::size_t hidden : hidden_grid) {
      for (const std::size_t layers : layer_grid) {
        lm::LmConfig lm_config = config.detector.lm;
        lm_config.vocab = store.vocab().size();
        lm_config.hidden = hidden;
        lm_config.layers = layers;
        lm_config.seed = config.detector.seed + 7000 + c * 10 + hidden + layers;
        lm::ActionLanguageModel model(lm_config);
        std::vector<std::span<const int>> train, valid;
        for (std::size_t i : info.train) train.push_back(store.at(i).view());
        for (std::size_t i : info.valid) valid.push_back(store.at(i).view());
        model.fit(train, valid);
        const auto valid_eval = core::evaluate_model_on(model, store, info.valid);
        if (valid_eval.accuracy > best_valid) {
          best_valid = valid_eval.accuracy;
          best_hidden = hidden;
          best_layers = layers;
          best_test = core::evaluate_model_on(model, store, info.test);
        }
      }
    }

    const double gain = best_test.accuracy - fixed_eval.accuracy;
    total_gain += gain;
    if (gain > 0.0) ++improved;
    table.add_row({std::to_string(c), std::to_string(info.size()),
                   Table::num(fixed_eval.accuracy), std::to_string(best_hidden),
                   std::to_string(best_layers), Table::num(best_test.accuracy),
                   Table::num(gain)});
  }
  core::emit_table(table, config.results_dir, "abl_percluster_hyperparams");

  std::cout << "\nper-cluster tuning improved " << improved << "/" << detector.cluster_count()
            << " clusters; mean test-accuracy gain "
            << Table::num(total_gain / static_cast<double>(detector.cluster_count())) << "\n";
  return 0;
}

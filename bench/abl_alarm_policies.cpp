// Ablation: alarm policies for the online monitor. The paper's second
// future-work proposal (§V): "identification of trends in the development
// of the scores in order to set the alarm for security operators can
// perform better than reacting to every low score right away."
//
// We replay real test sessions and injected misuses through the online
// monitor under (a) threshold-only, (b) trend-only, and (c) combined
// policies, and report detection rate, false-alarm rate, and median alarm
// latency (actions until the first alarm).
#include <algorithm>
#include <iostream>
#include <optional>

#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/monitor.hpp"

using namespace misuse;

namespace {

struct PolicyStats {
  std::size_t sessions = 0;
  std::size_t alarmed = 0;
  std::vector<double> latencies;

  double rate() const {
    return sessions == 0 ? 0.0 : static_cast<double>(alarmed) / static_cast<double>(sessions);
  }
  double median_latency() const {
    if (latencies.empty()) return 0.0;
    return percentile(latencies, 50.0);
  }
};

enum class Policy { kThreshold, kTrend, kBoth };

std::optional<std::size_t> first_alarm(const Session& session, core::OnlineMonitor& monitor,
                                       Policy policy) {
  monitor.reset();
  for (int action : session.actions) {
    const auto result = monitor.observe(action);
    const bool threshold_hit = result.alarm && !result.trend_alarm;
    const bool trend_hit = result.trend_alarm;
    const bool fired = policy == Policy::kThreshold ? threshold_hit
                       : policy == Policy::kTrend   ? trend_hit
                                                    : (threshold_hit || trend_hit);
    if (fired) return result.step;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto& store = experiment.store;

  const auto united = experiment.united_test_set();
  Rng rng(config.portal.seed + 75);
  std::vector<Session> misuses;
  for (std::size_t i = 0; i < 60; ++i) {
    misuses.push_back(experiment.portal.make_misuse(
        static_cast<synth::MisuseKind>(i % static_cast<std::size_t>(synth::MisuseKind::kCount)),
        rng));
  }

  core::MonitorConfig mc;
  // Threshold calibrated on the validation splits at a 5% session-level
  // false-alarm budget unless overridden.
  const auto calibration =
      core::calibrate_on_validation_splits(detector, store, args.real("fpr-budget", 0.05));
  mc.alarm_likelihood = args.real("alarm-likelihood", calibration.alarm_likelihood);
  mc.trend_window = static_cast<std::size_t>(args.integer("trend-window", 5));
  mc.trend_drop = args.real("trend-drop", 0.6);
  core::OnlineMonitor monitor(detector, mc);

  std::cout << "=== Ablation: alarm policies (threshold vs trend vs both) ===\n";
  std::cout << "real sessions: " << united.size() << ", injected misuses: " << misuses.size()
            << "; calibrated threshold=" << mc.alarm_likelihood << " (from "
            << calibration.calibration_sessions << " validation sessions), trend window="
            << mc.trend_window << ", trend drop=" << mc.trend_drop << "\n";

  Table table({"policy", "misuse_detection_rate", "false_alarm_rate", "median_alarm_latency"});
  for (const auto& [policy, name] :
       {std::pair{Policy::kThreshold, "threshold-only (react to every low score)"},
        std::pair{Policy::kTrend, "trend-only (SS V proposal)"},
        std::pair{Policy::kBoth, "threshold + trend (deployed default)"}}) {
    PolicyStats real_stats, misuse_stats;
    for (const auto& [i, c] : united) {
      (void)c;
      ++real_stats.sessions;
      if (first_alarm(store.at(i), monitor, policy)) ++real_stats.alarmed;
    }
    for (const auto& s : misuses) {
      ++misuse_stats.sessions;
      if (const auto step = first_alarm(s, monitor, policy)) {
        ++misuse_stats.alarmed;
        misuse_stats.latencies.push_back(static_cast<double>(*step));
      }
    }
    table.add_row({name, Table::num(misuse_stats.rate()), Table::num(real_stats.rate()),
                   Table::num(misuse_stats.median_latency(), 1)});
  }
  core::emit_table(table, config.results_dir, "abl_alarm_policies");

  std::cout << "\n(detection rate should stay high while the false-alarm rate drops —\n"
               " Sommer & Paxson's core complaint about anomaly detection is exactly the\n"
               " cost of false alarms)\n";
  return 0;
}

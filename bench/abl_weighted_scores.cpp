// Ablation: argmax cluster routing vs the weighted combination of cluster
// model scores — the paper's first future-work proposal (§V): "weighted
// combination of multiple scores from cluster models might give more
// objective score, taking into account possible imprecision of cluster
// identification."
//
// We sweep the softmax temperature beta from near-uniform mixing to
// near-argmax and measure (a) real-vs-random anomaly AUC and (b) how well
// the mixture tracks the known-cluster oracle likelihood.
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "core/scoring.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto& store = experiment.store;

  // Keep the sweep affordable: weighted scoring advances every cluster
  // model per action.
  const auto united_full = experiment.united_test_set();
  const std::size_t cap = static_cast<std::size_t>(args.integer("max-sessions", 150));
  const auto united = std::vector(united_full.begin(),
                                  united_full.begin() + std::min(cap, united_full.size()));
  const SessionStore random_store =
      experiment.portal.generate_random_sessions(united.size(), config.portal.seed + 74);

  std::cout << "=== Ablation: weighted ensemble scoring (SS V future work) ===\n";
  std::cout << "united test subset: " << united.size() << " sessions\n";
  Table table({"strategy", "auc_real_vs_random", "avg_real_likelihood", "oracle_gap"});

  // Oracle reference (true cluster known).
  std::vector<double> oracle_real;
  for (const auto& [i, c] : united) {
    const auto score = detector.score_with_cluster(c, store.at(i).view());
    if (!score.likelihoods.empty()) oracle_real.push_back(score.avg_likelihood());
  }
  const double oracle_mean = mean(oracle_real);

  const auto evaluate_strategy = [&](const char* name, auto&& score_fn) {
    std::vector<double> real, random_scores;
    for (const auto& [i, c] : united) {
      (void)c;
      const auto score = score_fn(store.at(i).view());
      if (!score.likelihoods.empty()) real.push_back(score.avg_likelihood());
    }
    for (const auto& s : random_store.all()) {
      const auto score = score_fn(s.view());
      if (!score.likelihoods.empty()) random_scores.push_back(score.avg_likelihood());
    }
    table.add_row({name, Table::num(core::anomaly_auc(real, random_scores), 4),
                   Table::num(mean(real)),
                   Table::num(oracle_mean - mean(real))});
  };

  evaluate_strategy("argmax routing (paper)", [&](std::span<const int> actions) {
    return detector.predict(actions).score;
  });
  for (const double beta : {0.0, 50.0, 200.0, 1000.0}) {
    const core::WeightedEnsembleScorer scorer(detector, {.beta = beta});
    char name[64];
    std::snprintf(name, sizeof(name), "weighted mixture beta=%g", beta);
    evaluate_strategy(name, [&scorer](std::span<const int> actions) {
      return scorer.score_session(actions);
    });
  }
  table.add_row({"known-cluster oracle", "-", Table::num(oracle_mean), Table::num(0.0)});
  core::emit_table(table, config.results_dir, "abl_weighted_scores");

  std::cout << "\n(oracle_gap = oracle avg likelihood minus the strategy's; smaller is\n"
               " better — the mixture can compensate for routing mistakes)\n";
  return 0;
}

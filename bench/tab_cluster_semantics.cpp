// §IV-B — "13 clusters were identified, each carrying particular semantic
// meaning. We performed frequent patterns mining for the discovered
// clusters and found out that, for example, one of them includes all the
// sessions with actions to unlock user's access to the system, another
// includes all modifications of roles of users, third has all the actions
// concerned with edition of office entities."
//
// This bench regenerates that analysis: the LDA ensemble and headless
// expert produce the clusters, frequent-pattern mining describes them,
// and the synthetic ground truth lets us *quantify* the semantics claim
// (archetype purity / NMI) instead of eyeballing it. It also exports the
// visual-interface artifacts (t-SNE projection, topic-action matrix,
// chord diagram) that the experts would have worked with.
#include <fstream>
#include <iostream>

#include "cluster/expert_policy.hpp"
#include "core/evaluation.hpp"
#include "core/experiment.hpp"
#include "patterns/mining.hpp"
#include "viz/interface.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto& store = experiment.store;

  std::cout << "=== §IV-B: cluster semantics via frequent-pattern mining ===\n";
  Table table({"cluster", "label", "size", "purity", "top_frequent_itemsets",
               "top_subsequence"});
  const auto purity = core::cluster_archetype_purity(store, detector);
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& info = detector.cluster(c);
    std::vector<const Session*> members;
    for (std::size_t i : info.members) members.push_back(&store.at(i));

    patterns::MiningConfig mining;
    mining.min_support = 0.4;
    mining.max_pattern = 2;
    const auto itemsets = patterns::mine_frequent_itemsets(members, mining);
    const auto subsequences = patterns::mine_frequent_subsequences(members, mining);

    std::string subseq = "-";
    if (!subsequences.empty()) {
      subseq.clear();
      for (std::size_t i = 0; i < subsequences[0].actions.size(); ++i) {
        if (i > 0) subseq += ">";
        subseq += store.vocab().name(subsequences[0].actions[i]);
      }
    }
    table.add_row({std::to_string(c), info.label, std::to_string(info.size()),
                   Table::num(purity[c], 2),
                   patterns::describe_itemsets(itemsets, store.vocab(), members.size(), 2),
                   subseq});
  }
  core::emit_table(table, config.results_dir, "tab_cluster_semantics");

  const double nmi = core::clustering_nmi(store, detector);
  std::cout << "\nclustering vs hidden archetypes: NMI = " << Table::num(nmi, 3)
            << " (1 = perfect recovery)\n";

  // Re-fit the ensemble to export the visual interface the experts used.
  std::vector<std::vector<int>> documents;
  for (const auto& s : store.all()) {
    if (s.length() >= 2) documents.push_back(s.actions);
  }
  const auto ensemble =
      topics::LdaEnsemble::fit(documents, store.vocab().size(), config.detector.ensemble);
  tsne::TsneConfig tsne_config;
  tsne_config.iterations = 250;
  tsne_config.perplexity = 8.0;
  const auto projection = viz::build_projection_view(ensemble, tsne_config);
  const auto matrix = viz::build_matrix_view(ensemble, 0.05f);
  std::vector<std::size_t> selection;
  for (std::size_t t = 0; t < std::min<std::size_t>(ensemble.topic_count(), 13); ++t) {
    selection.push_back(t);
  }
  const auto chord = viz::build_chord_view(ensemble, selection, 8);

  std::cout << "\ntopic projection view (t-SNE of the LDA ensemble; letters = runs):\n";
  std::cout << viz::render_projection_ascii(projection, 72, 20);
  std::cout << "\ntopic-action matrix view (top actions per topic, opacity = probability):\n";
  std::cout << viz::render_matrix_ascii(matrix, store.vocab(), ensemble, 10, 4);
  std::cout << "\nchord view (shared top actions among the first " << selection.size()
            << " topics):\n";
  std::cout << viz::render_chord_ascii(chord);

  // Session-level behavior map (sample), digits = cluster ids.
  {
    // Rebuild the expert clustering over the same ensemble for per-doc ids.
    const cluster::ExpertPolicy expert(config.detector.expert);
    const auto clustering = expert.run(ensemble);
    tsne::TsneConfig map_config;
    map_config.iterations = 200;
    map_config.perplexity = 15.0;
    const auto map = viz::build_session_map(ensemble, clustering.session_cluster, 250,
                                            map_config, config.portal.seed + 5);
    std::cout << "\nsession-level behavior map (sample of " << map.sessions.size()
              << " sessions; digits = cluster ids):\n";
    std::cout << viz::render_session_map_ascii(map, 72, 20);
  }

  const std::string json_path = config.results_dir + "/visual_interface.json";
  std::ofstream json_out(json_path);
  viz::export_interface_json(projection, matrix, chord, store.vocab(), json_out);
  std::cout << "\n(visual interface JSON written to " << json_path << ")\n";
  return 0;
}

// Inference-engine throughput record (writes BENCH_inference.json).
// Not a paper figure: this is the perf contract for the scoring hot
// path (nn/infer/) — the packed/batched kernels against the
// training-grade reference forward they must stay bit-identical to.
//
// Two families:
//   * model_step — one LSTM+head forward per action, engine vs
//     NextActionModel::step_into, across kernel modes (scalar, avx2 if
//     this host supports it, int8/fp16 quantized).
//   * monitor_path — the full OnlineMonitor scoring path (routing,
//     likelihood voting, alarms) per event, comparing the per-event
//     reference loop against observe_batch's fused per-cluster steps
//     under each kernel mode. This is the speedup the streaming server
//     actually sees, and the number the ≥4x acceptance bar reads
//     (avx2 row, single core).
//
// Timings are best-of-3 wall clock; outputs under scalar are
// bit-identical to the reference by the engine's contract, so only time
// may differ across rows.
//
//   ./bench/bench_inference [--out=BENCH_inference.json] [--reduced]
//
// --reduced shrinks the workloads — the CI smoke configuration, which
// cares about "runs and writes valid JSON", not the timings.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/monitor.hpp"
#include "nn/infer/dispatch.hpp"
#include "nn/infer/engine.hpp"
#include "nn/infer/quant.hpp"
#include "nn/next_action_model.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/hostinfo.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace misuse {
namespace {

constexpr int kRepetitions = 5;

template <typename Fn>
double best_of(const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < kRepetitions; ++r) {
    Timer timer;
    fn();
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct Row {
  std::string mode;
  std::size_t steps = 0;
  double seconds = 0.0;
  double actions_per_sec() const { return seconds > 0.0 ? steps / seconds : 0.0; }
};

// --- model_step: one forward per action --------------------------------

std::vector<int> random_actions(std::size_t n, std::size_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> actions(n);
  for (auto& a : actions) a = static_cast<int>(rng.uniform_index(vocab));
  return actions;
}

Row time_reference_step(const nn::NextActionModel& model, const std::vector<int>& actions) {
  nn::ModelState state = model.make_state();
  std::vector<float> probs;
  const double seconds = best_of([&] {
    state = model.make_state();
    for (const int a : actions) model.step_into(state, a, probs);
  });
  return {"reference_step", actions.size(), seconds};
}

Row time_engine_step(const std::string& mode, const nn::infer::LstmInferEngine& engine,
                     const std::vector<int>& actions, bool use_quant) {
  nn::infer::EngineState state = engine.make_state();
  nn::infer::EngineScratch scratch;
  std::vector<float> probs;
  const double seconds = best_of([&] {
    state.reset();
    for (const int a : actions) engine.step(state, a, probs, scratch, use_quant);
  });
  return {mode, actions.size(), seconds};
}

// --- monitor_path: the full scoring pipeline per event -----------------

core::MisuseDetector train_detector(bool reduced) {
  synth::PortalConfig portal_config;
  portal_config.sessions = reduced ? 120 : 220;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();
  core::DetectorConfig config;
  config.ensemble.topic_counts = {10, 13};
  config.ensemble.iterations = 8;
  config.expert.target_clusters = 4;
  config.expert.min_cluster_sessions = 5;
  config.lm.hidden = reduced ? 8 : 128;
  config.lm.epochs = 2;
  config.lm.patience = 0;
  return core::MisuseDetector::train(store, config);
}

// Per-event loop: one observe() per monitor per step — what a shard does
// without batching (and, under kReference, without the engine at all).
// One timed pass; the caller interleaves passes across variants.
double monitor_per_event_pass(const core::MisuseDetector& detector,
                              const std::vector<std::vector<int>>& streams) {
  const std::size_t steps_per = streams.front().size();
  Timer timer;
  std::vector<core::OnlineMonitor> monitors;
  monitors.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    monitors.emplace_back(detector, core::MonitorConfig{});
  }
  for (std::size_t t = 0; t < steps_per; ++t) {
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      (void)monitors[i].observe(streams[i][t]);
    }
  }
  return timer.seconds();
}

// Batched loop: one observe_batch per step across all live sessions —
// what SessionShard::process_batch does on the server's hot path.
double monitor_batched_pass(const core::MisuseDetector& detector,
                            const std::vector<std::vector<int>>& streams) {
  const std::size_t steps_per = streams.front().size();
  Timer timer;
  std::vector<std::unique_ptr<core::OnlineMonitor>> monitors;
  std::vector<core::OnlineMonitor*> ptrs;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    monitors.push_back(std::make_unique<core::OnlineMonitor>(detector, core::MonitorConfig{}));
    ptrs.push_back(monitors.back().get());
  }
  std::vector<int> actions(streams.size());
  std::vector<core::OnlineMonitor::StepResult> results(streams.size());
  for (std::size_t t = 0; t < steps_per; ++t) {
    for (std::size_t i = 0; i < streams.size(); ++i) actions[i] = streams[i][t];
    core::OnlineMonitor::observe_batch(detector, ptrs, actions, results);
  }
  return timer.seconds();
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  using nn::infer::InferMode;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_inference.json");
  // Single-core: the engine's win must not depend on the pool.
  set_global_threads(1);

  // --- model_step workload ---
  nn::ModelConfig model_config;
  model_config.vocab = 50;
  model_config.hidden = reduced ? 64 : 256;
  Rng model_rng(7);
  const nn::NextActionModel model(model_config, model_rng);
  const auto engine = nn::infer::LstmInferEngine::build(model);
  if (engine == nullptr) {
    std::cerr << "engine rejected the benchmark model configuration\n";
    return 1;
  }
  const auto actions = random_actions(reduced ? 400 : 4000, model_config.vocab, 11);

  std::vector<Row> model_rows;
  nn::infer::set_infer_mode(InferMode::kReference);
  model_rows.push_back(time_reference_step(model, actions));
  nn::infer::set_infer_mode(InferMode::kScalar);
  model_rows.push_back(time_engine_step("scalar", *engine, actions, false));
  if (nn::infer::avx2_supported()) {
    nn::infer::set_infer_mode(InferMode::kAvx2);
    model_rows.push_back(time_engine_step("avx2", *engine, actions, false));
    auto quantized = std::make_unique<nn::infer::LstmInferEngine>(*engine);
    quantized->attach_quantized(
        nn::infer::quantize(engine->packed(), nn::infer::QuantKind::kInt8));
    model_rows.push_back(time_engine_step("avx2_int8", *quantized, actions, true));
    quantized->attach_quantized(
        nn::infer::quantize(engine->packed(), nn::infer::QuantKind::kFp16));
    model_rows.push_back(time_engine_step("avx2_fp16", *quantized, actions, true));
  }
  nn::infer::set_infer_mode(InferMode::kScalar);
  {
    auto quantized = std::make_unique<nn::infer::LstmInferEngine>(*engine);
    quantized->attach_quantized(
        nn::infer::quantize(engine->packed(), nn::infer::QuantKind::kInt8));
    model_rows.push_back(time_engine_step("scalar_int8", *quantized, actions, true));
  }

  // --- monitor_path workload ---
  const core::MisuseDetector detector = train_detector(reduced);
  const std::size_t n_sessions = 64;
  const std::size_t session_len = reduced ? 16 : 48;
  std::vector<std::vector<int>> streams(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    streams[i] = random_actions(session_len, detector.vocab().size(), 100 + i);
  }

  // The monitor-path variants are compared against each other, so their
  // repetitions are interleaved round-robin: host clock-speed drift over
  // the run (turbo, shared containers) then lands on every variant
  // instead of biasing whichever family ran first.
  struct MonitorVariant {
    std::string mode;
    InferMode infer;
    bool batched;
  };
  std::vector<MonitorVariant> variants = {
      {"per_event_reference", InferMode::kReference, false},
      {"per_event_scalar", InferMode::kScalar, false},
      {"batched_scalar", InferMode::kScalar, true},
  };
  if (nn::infer::avx2_supported()) {
    variants.push_back({"batched_avx2", InferMode::kAvx2, true});
  }
  std::vector<Row> monitor_rows;
  const std::size_t monitor_steps = n_sessions * session_len;
  for (const auto& v : variants) monitor_rows.push_back({v.mode, monitor_steps, 0.0});
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (std::size_t i = 0; i < variants.size(); ++i) {
      nn::infer::set_infer_mode(variants[i].infer);
      const double s = variants[i].batched ? monitor_batched_pass(detector, streams)
                                           : monitor_per_event_pass(detector, streams);
      if (rep == 0 || s < monitor_rows[i].seconds) monitor_rows[i].seconds = s;
    }
  }
  nn::infer::set_infer_mode(InferMode::kAuto);

  const double ref_step = model_rows.front().actions_per_sec();
  const double ref_monitor = monitor_rows.front().actions_per_sec();

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  json.member("hardware_concurrency",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  write_host_info(json);
  json.member("reduced", reduced);
  json.member("avx2_supported", nn::infer::avx2_supported());
  json.member("note",
              "Single-core actions/sec. model_step times the raw LSTM+head forward per kernel "
              "mode against NextActionModel::step_into; monitor_path times the full "
              "OnlineMonitor pipeline, per-event loop vs observe_batch fusion. speedup is "
              "actions_per_sec over the family's reference row. The scalar rows are "
              "bit-identical to reference by contract; avx2/quantized rows trade exactness "
              "for throughput (opt-in).");
  json.key("model_step");
  json.begin_array();
  for (const auto& r : model_rows) {
    json.begin_object();
    json.member("mode", r.mode);
    json.member("hidden", static_cast<std::size_t>(model_config.hidden));
    json.member("steps", r.steps);
    json.member("seconds", r.seconds);
    json.member("actions_per_sec", r.actions_per_sec());
    json.member("speedup_vs_reference", ref_step > 0.0 ? r.actions_per_sec() / ref_step : 0.0);
    json.end_object();
  }
  json.end_array();
  json.key("monitor_path");
  json.begin_array();
  for (const auto& r : monitor_rows) {
    json.begin_object();
    json.member("mode", r.mode);
    json.member("sessions", n_sessions);
    json.member("steps", r.steps);
    json.member("seconds", r.seconds);
    json.member("actions_per_sec", r.actions_per_sec());
    json.member("speedup_vs_reference",
                ref_monitor > 0.0 ? r.actions_per_sec() / ref_monitor : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  for (const auto& r : monitor_rows) {
    std::cout << "monitor " << r.mode << ": " << r.actions_per_sec() << " actions/s ("
              << (ref_monitor > 0.0 ? r.actions_per_sec() / ref_monitor : 0.0) << "x)\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Continuous-learning cost record, written to BENCH_learn.json. Not a
// paper figure: this measures the src/learn subsystem that wraps the
// paper's periodic-retraining recommendation (§V) as a live loop.
//
// Two questions, two legs:
//
//   * retrain leg — what does one learn cycle cost? The interleaved
//     replay is collected into labeled windows, then the stages are timed
//     separately (collect / fine-tune / shadow-evaluate) plus one full
//     LearnLoop cycle against a real registry (publish + canary + decide
//     + promote), best-of wall clock.
//
//   * tailing leg — what does live collection cost the serving node? The
//     same WAL-enabled batch replay is timed bare, then with a concurrent
//     thread running serve::WalTailer + the session-window collector the
//     way misusedet_learnd does against a live node. Acceptance: the
//     tailing thread costs the serving path < 5% events/sec (it shares
//     the host, not the shard locks, so the tax is cache/memory-bus
//     pressure only).
//
//   ./bench/bench_learn [--reduced] [--out=BENCH_learn.json]
//       [--sessions=N] [--metrics-out=PATH]
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "learn/collector.hpp"
#include "learn/loop.hpp"
#include "registry/registry.hpp"
#include "serve/server.hpp"
#include "serve/wal.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/hostinfo.hpp"
#include "util/json.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

namespace fs = std::filesystem;

constexpr int kRepetitions = 3;  // best-of to suppress scheduler noise

struct Workload {
  std::vector<serve::Event> events;
  std::size_t sessions = 0;
};

/// Round-robin interleaving of portal sessions (same arrival pattern as
/// bench_serve): what a fleet of concurrent users produces.
Workload make_workload(const synth::Portal& portal, const SessionStore& store,
                       std::size_t session_count) {
  std::vector<std::span<const int>> sessions;
  std::vector<std::uint32_t> users;
  for (std::size_t i = store.size(); i-- > 0 && sessions.size() < session_count;) {
    if (store.at(i).length() < 2) continue;
    sessions.push_back(store.at(i).view());
    users.push_back(store.at(i).user);
  }
  Workload w;
  w.sessions = sessions.size();
  std::vector<std::size_t> cursor(sessions.size(), 0);
  double t = 0.0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (cursor[s] >= sessions[s].size()) continue;
      serve::Event event;
      event.user_id = "user" + std::to_string(users[s]);
      event.session_id = "session" + std::to_string(s);
      event.action = portal.vocab().name(sessions[s][cursor[s]]);
      event.timestamp = t;
      event.has_timestamp = true;
      t += 0.5;
      ++cursor[s];
      w.events.push_back(std::move(event));
      progressed = true;
    }
  }
  return w;
}

double best_of(int reps, const std::function<double()>& run) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double seconds = run();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

learn::LearnLoopConfig loop_config() {
  learn::LearnLoopConfig config;
  config.collector.max_alarm_steps = 1000;  // benchmark, not a gate
  config.collector.eval_every = 5;
  config.trainer.epochs = 1;
  config.trainer.lda_iterations = 8;
  config.min_train_windows = 8;
  config.policy.eval_budget_steps = 10;
  config.policy.max_flip_rate = 1.0;
  config.policy.max_loss_delta = 1e9;
  config.policy.drift_margin = 1e9;
  return config;
}

/// The WAL-enabled serve replay, optionally with the learnd-style tailing
/// thread (WalTailer poll -> collector observe) running beside it. The
/// returned time covers the serving feed only; the tailer is signalled to
/// stop after the feed completes.
double run_serve_replay(const core::MisuseDetector& detector, const Workload& workload,
                        const std::string& wal_dir, bool tail,
                        std::size_t* tailed_records = nullptr) {
  fs::remove_all(wal_dir);
  fs::create_directories(wal_dir);
  serve::ServeConfig config;
  config.shards = 4;
  config.queue_capacity = 512;
  config.emit_steps = true;
  config.wal_dir = wal_dir;
  serve::ScoringServer server(detector, config);

  std::atomic<bool> stop{false};
  std::size_t tailed = 0;
  std::thread tailer_thread;
  if (tail) {
    tailer_thread = std::thread([&] {
      learn::CollectorConfig cc;
      cc.max_alarm_steps = 1000;
      learn::SessionWindowCollector collector(
          std::shared_ptr<const core::MisuseDetector>(
              std::shared_ptr<const core::MisuseDetector>{}, &detector),
          core::MonitorConfig{}, cc);
      serve::WalTailer tailer(wal_dir);
      std::vector<serve::WalRecord> records;
      while (!stop.load(std::memory_order_relaxed)) {
        records.clear();
        if (tailer.poll(records) > 0) {
          for (const auto& record : records) collector.observe(record);
          tailed += records.size();
        }
        // misusedet_learnd's default poll cadence is 200ms; 20ms here
        // keeps the thread hot enough to matter without modeling a
        // busy-loop no deployment runs.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      records.clear();
      tailer.poll(records);  // drain what the shutdown flushed
      for (const auto& record : records) collector.observe(record);
      tailed += records.size();
    });
  }

  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  std::size_t since_pump = 0;
  for (const auto& event : workload.events) {
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      out.clear();
    }
    if (++since_pump >= 256) {
      server.pump(out);
      out.clear();
      since_pump = 0;
    }
  }
  server.pump(out);
  const double seconds = seconds_since(start);
  std::vector<serve::OutputRecord> drain;
  server.shutdown(drain);
  if (tail) {
    stop.store(true, std::memory_order_relaxed);
    tailer_thread.join();
    if (tailed_records) *tailed_records = tailed;
  }
  return seconds;
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_learn.json");
  const auto session_count =
      static_cast<std::size_t>(args.integer("sessions", reduced ? 48 : 400));
  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));

  synth::PortalConfig portal_config;
  portal_config.sessions = reduced ? 280 : 1200;
  portal_config.users = reduced ? 40 : 160;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();

  core::DetectorConfig detector_config;
  detector_config.ensemble.topic_counts = {10, 13};
  detector_config.ensemble.iterations = 8;
  detector_config.expert.target_clusters = 4;
  detector_config.expert.min_cluster_sessions = 5;
  detector_config.lm.hidden = 8;
  detector_config.lm.epochs = 2;
  detector_config.lm.patience = 0;
  set_global_threads(1);
  std::cout << "training detector on " << store.size() << " sessions...\n";
  const core::MisuseDetector detector = core::MisuseDetector::train(store, detector_config);

  const Workload workload = make_workload(portal, store, session_count);
  std::cout << "replaying " << workload.events.size() << " events from " << workload.sessions
            << " interleaved sessions\n";
  const std::string scratch = fs::temp_directory_path().string() + "/bench_learn";
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  const int reps = reduced ? 2 : kRepetitions;

  // -- Retrain leg: the cycle, split by stage -----------------------------
  const auto alias = std::shared_ptr<const core::MisuseDetector>(
      std::shared_ptr<const core::MisuseDetector>{}, &detector);

  const double collect_seconds = best_of(reps, [&] {
    learn::LearnLoopConfig config = loop_config();
    learn::SessionWindowCollector collector(alias, config.monitor, config.collector);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& event : workload.events) collector.observe(event);
    collector.flush();
    return seconds_since(start);
  });

  // One collected corpus for the stage splits.
  learn::LearnLoopConfig config = loop_config();
  learn::SessionWindowCollector collector(alias, config.monitor, config.collector);
  for (const auto& event : workload.events) collector.observe(event);
  collector.flush();
  const auto windows = collector.training_windows();
  const auto eval_windows = collector.eval_windows();
  std::size_t train_windows = 0;
  for (const auto& buffer : windows) train_windows += buffer.size();

  core::MisuseDetector candidate = core::MisuseDetector::fine_tune(detector, windows,
                                                                   config.trainer);
  const double fine_tune_seconds = best_of(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    candidate = core::MisuseDetector::fine_tune(detector, windows, config.trainer);
    return seconds_since(start);
  });
  const double shadow_seconds = best_of(reps, [&] {
    const auto start = std::chrono::steady_clock::now();
    const auto eval = learn::shadow_evaluate(detector, candidate, config.monitor, config.drift,
                                             eval_windows);
    (void)eval;
    return seconds_since(start);
  });

  // The full cycle against a real registry: publish + canary + shadow +
  // decision + promote, end to end (fresh registry per repetition).
  int cycle_rep = 0;
  const double cycle_seconds = best_of(reps, [&] {
    const std::string root = scratch + "/registry" + std::to_string(cycle_rep++);
    {
      const std::string seed_path = scratch + "/seed.bin";
      std::ofstream seed(seed_path, std::ios::binary | std::ios::trunc);
      BinaryWriter writer(seed);
      detector.save(writer);
      seed.close();
      registry::ModelRegistry registry(root);
      const std::uint64_t v1 = registry.publish(seed_path, "bench seed");
      registry.promote(v1);
      registry.promote(v1);
    }
    learn::LearnLoop loop(root, loop_config());
    for (const auto& event : workload.events) loop.observe(event);
    loop.flush();
    const auto start = std::chrono::steady_clock::now();
    const learn::AuditRecord record = loop.run_cycle();
    const double seconds = seconds_since(start);
    if (record.decision != learn::Decision::kPromote) {
      std::cerr << "warning: bench cycle did not promote (" << record.reason << ")\n";
    }
    return seconds;
  });

  std::cout << "collect: " << collect_seconds << "s  fine-tune: " << fine_tune_seconds
            << "s  shadow: " << shadow_seconds << "s  full cycle: " << cycle_seconds << "s\n";

  // -- Tailing leg: serving throughput with and without the collector -----
  std::size_t tailed_records = 0;
  const double bare_seconds = best_of(reps, [&] {
    return run_serve_replay(detector, workload, scratch + "/wal", false);
  });
  const double tailed_seconds = best_of(reps, [&] {
    return run_serve_replay(detector, workload, scratch + "/wal", true, &tailed_records);
  });
  const double overhead_pct =
      bare_seconds > 0.0 ? (tailed_seconds - bare_seconds) / bare_seconds * 100.0 : 0.0;
  std::cout << "serve replay bare: " << bare_seconds << "s  with tailer: " << tailed_seconds
            << "s  overhead: " << overhead_pct << "%  (tailed " << tailed_records
            << " records)\n";

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  write_host_info(json);
  json.member("events", workload.events.size());
  json.member("sessions", workload.sessions);
  json.member("reduced", reduced);
  json.member("repetitions_best_of", static_cast<std::size_t>(reps));
  json.member("note",
              "Continuous-learning cost record (best-of wall clock). The retrain rows split one "
              "learn cycle by stage over the same interleaved replay; 'cycle' is a full "
              "LearnLoop pass against a real registry (publish + canary + shadow + decision + "
              "promote). The tailing rows time the WAL-enabled serving replay bare vs with a "
              "concurrent WalTailer+collector thread (how misusedet_learnd rides a live node); "
              "acceptance: overhead_pct < 5.");
  json.key("retrain");
  json.begin_object();
  json.member("train_windows", train_windows);
  json.member("eval_windows", eval_windows.size());
  json.member("collect_seconds", collect_seconds);
  json.member("fine_tune_seconds", fine_tune_seconds);
  json.member("shadow_eval_seconds", shadow_seconds);
  json.member("cycle_seconds", cycle_seconds);
  json.member("windows_per_second",
              fine_tune_seconds > 0.0 ? train_windows / fine_tune_seconds : 0.0);
  json.end_object();
  json.key("tailing");
  json.begin_object();
  json.member("bare_seconds", bare_seconds);
  json.member("tailed_seconds", tailed_seconds);
  json.member("bare_events_per_second",
              bare_seconds > 0.0 ? workload.events.size() / bare_seconds : 0.0);
  json.member("tailed_events_per_second",
              tailed_seconds > 0.0 ? workload.events.size() / tailed_seconds : 0.0);
  json.member("tailed_records", tailed_records);
  json.member("overhead_pct", overhead_pct);
  json.member("acceptance_max_pct", 5.0);
  // The serving feed and the tailer only run concurrently when the host
  // has a core for each; on one core every tailer wakeup is stolen
  // serving time, so the tax reads as scheduler interleaving, not cost.
  const bool acceptance_applies = host_info().cores >= 2;
  json.member("acceptance_applies", acceptance_applies);
  json.member("within_acceptance", !acceptance_applies || overhead_pct < 5.0);
  json.end_object();
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  fs::remove_all(scratch);
  return 0;
}

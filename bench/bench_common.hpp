// Shared computations for the figure benches: the global and
// global-subset baseline models of Figs. 5/10/11/12 and small helpers.
#pragma once

#include <vector>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

namespace misuse::bench {

/// Union of every cluster's train split (the paper's strong "global
/// model" baseline is trained on the whole dataset).
inline std::vector<std::size_t> union_train_indices(const core::MisuseDetector& detector) {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < detector.cluster_count(); ++c) {
    const auto& train = detector.cluster(c).train;
    out.insert(out.end(), train.begin(), train.end());
  }
  return out;
}

/// Random subset of the global training pool with exactly `size` entries
/// (the paper's second baseline: "global model trained on an arbitrary
/// subset of the data of the same size as the cluster dataset").
inline std::vector<std::size_t> random_subset(const std::vector<std::size_t>& pool,
                                              std::size_t size, Rng& rng) {
  std::vector<std::size_t> shuffled = pool;
  rng.shuffle(shuffled);
  shuffled.resize(std::min(size, shuffled.size()));
  return shuffled;
}

/// Per-cluster rows of the Fig. 5 / Fig. 10 experiment.
struct BaselineRow {
  std::size_t cluster = 0;
  std::string label;
  std::size_t size = 0;  // number of member sessions
  double acc_cluster = 0.0, acc_global = 0.0, acc_subset = 0.0;
  double loss_cluster = 0.0, loss_global = 0.0, loss_subset = 0.0;
};

/// Trains the global baseline once and the per-cluster subset baselines,
/// then evaluates all three model families on each cluster's test split.
std::vector<BaselineRow> compute_baseline_rows(core::Experiment& experiment);

}  // namespace misuse::bench

// Ablation: the paper's exact moving-window training scheme (§IV-A:
// window 100, one example per predictable position, minibatch 32) vs this
// repository's default full-sequence scheme (one example per session,
// loss at every position). The two deliver the same training signal; the
// windowed scheme re-processes each session ~length times, the
// full-sequence scheme once. We train the same cluster's model both ways
// and report quality and wall-clock.
#include <iostream>

#include "core/experiment.hpp"
#include "util/trace.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  // Corpus only — this ablation trains its own models.
  const synth::Portal portal(config.portal);
  const SessionStore store = portal.generate();

  // Take one mid-sized archetype's sessions as the training cluster.
  std::vector<std::span<const int>> sessions;
  for (const auto& s : store.all()) {
    if (s.archetype == 9 && s.length() >= 2) sessions.push_back(s.view());  // user-unlock
  }
  const std::size_t n_train = sessions.size() * 7 / 10;
  const std::vector<std::span<const int>> train(sessions.begin(),
                                                sessions.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::vector<std::span<const int>> test(sessions.begin() + static_cast<std::ptrdiff_t>(n_train),
                                               sessions.end());

  std::cout << "=== Ablation: windowed (paper-exact) vs full-sequence training ===\n";
  std::cout << "cluster sessions: " << train.size() << " train / " << test.size() << " test\n";
  Table table({"mode", "epochs", "batch", "lr", "test_acc", "test_loss", "train_seconds"});

  struct ModeSpec {
    const char* name;
    lm::BatchingMode mode;
    std::size_t batch;
    float lr;
  };
  // The paper's batch-32/lr-0.001 pairing belongs to the windowed scheme;
  // full-sequence uses the repo defaults (see ExperimentConfig).
  const ModeSpec specs[] = {
      {"windowed (paper SS IV-A)", lm::BatchingMode::kWindowed, 32, 1e-3f},
      {"full-sequence (repo default)", lm::BatchingMode::kFullSequence, 8, 1e-2f},
  };
  const auto epochs = static_cast<std::size_t>(args.integer("abl-epochs", 12));
  for (const auto& spec : specs) {
    lm::LmConfig lm_config;
    lm_config.vocab = store.vocab().size();
    lm_config.hidden = config.detector.lm.hidden;
    lm_config.dropout = config.detector.lm.dropout;
    lm_config.learning_rate = spec.lr;
    lm_config.epochs = epochs;
    lm_config.patience = 0;
    lm_config.batching.mode = spec.mode;
    lm_config.batching.window = 32;
    lm_config.batching.batch_size = spec.batch;
    lm_config.seed = 7;

    lm::ActionLanguageModel model(lm_config);
    Span fit_span("abl.fit");
    model.fit(train, {});
    const double seconds = fit_span.stop();
    const auto eval = model.evaluate(std::span<const std::span<const int>>(test));
    table.add_row({spec.name, std::to_string(epochs), std::to_string(spec.batch),
                   Table::num(spec.lr, 4), Table::num(eval.accuracy), Table::num(eval.loss),
                   Table::num(seconds, 2)});
  }
  core::emit_table(table, config.results_dir, "abl_batching_modes");

  std::cout << "\n(same model architecture and data; the windowed scheme pays ~mean-length x\n"
               " more compute per epoch for the same learning signal)\n";
  return 0;
}

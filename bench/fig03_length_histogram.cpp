// Fig. 3 — "Lengths distribution of the sessions. The longest session
// consists of more than 800 actions, while average length is 15." Also
// reproduces the §IV-A preparatory analysis: the 98th percentile is below
// 91 actions, so a window of 100 covers more than 98% of sessions fully,
// and sessions with fewer than 2 actions are dropped.
//
// No training involved: this bench characterizes the corpus, so it runs
// at the paper's full 15,000-session scale by default.
#include <iostream>

#include "core/experiment.hpp"
#include "lm/batching.hpp"
#include "util/stats.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::ExperimentConfig config = core::ExperimentConfig::from_cli(args);
  if (!args.has("sessions")) config.portal.sessions = 15000;  // paper scale is cheap here

  const synth::Portal portal(config.portal);
  const SessionStore store = portal.generate();

  std::cout << "=== Fig. 3: session length distribution ===\n";
  std::cout << "corpus: " << store.size() << " sessions, " << store.distinct_users() << " users, "
            << store.vocab().size() << " actions, " << config.portal.days << " days\n\n";

  const auto lengths = store.lengths();
  const Summary s = summarize(lengths);

  const Histogram h = make_histogram(lengths, 0.0, 200.0, 25);
  std::cout << render_histogram(h, 60) << "\n";

  Table table({"statistic", "value", "paper"});
  table.add_row({"sessions", std::to_string(s.count), "~15000"});
  table.add_row({"mean length", Table::num(s.mean, 2), "15"});
  table.add_row({"median length", Table::num(s.median, 1), "-"});
  table.add_row({"p98 length", Table::num(s.p98, 1), "< 91"});
  table.add_row({"max length", Table::num(s.max, 0), "> 800"});
  table.add_row({"min length", Table::num(s.min, 0), "-"});

  // §IV-A windowing analysis.
  const std::size_t window = config.detector.lm.batching.window;
  std::size_t full_coverage = 0, too_short = 0, window_examples = 0;
  for (const auto& session : store.all()) {
    if (session.length() <= 100) ++full_coverage;
    if (session.length() < 2) ++too_short;
    if (session.length() >= 2) window_examples += session.length() - 1;
  }
  table.add_row({"sessions fully covered by window 100",
                 Table::num(100.0 * static_cast<double>(full_coverage) /
                                static_cast<double>(store.size()),
                            1) + "%",
                 "> 98%"});
  table.add_row({"sessions dropped (< 2 actions)", std::to_string(too_short), "-"});
  table.add_row({"moving-window training examples", std::to_string(window_examples), "-"});
  table.add_row({"configured window", std::to_string(window), "100"});

  core::emit_table(table, config.results_dir, "fig03_length_stats");

  // CSV of the raw histogram for replotting.
  Table hist_csv({"bin_lo", "bin_hi", "count"});
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    hist_csv.add_row({Table::num(h.bin_lo(i), 0), Table::num(h.bin_lo(i) + h.bin_width(), 0),
                      std::to_string(h.counts[i])});
  }
  hist_csv.write_csv_file(config.results_dir + "/fig03_histogram.csv");
  std::cout << "(histogram csv written to " << config.results_dir << "/fig03_histogram.csv)\n";
  return 0;
}

// Fig. 6 — "Development of scores predicted by OC-SVMs per action. We
// compare the score predicted by the right OC-SVM, i.e., corresponding to
// the cluster that the session really belongs to, against the maximal
// score among all the OC-SVMs." Scores are averaged over all sessions of
// the united test set at each action index.
//
// Shape to reproduce: scores decay as prefixes grow past the average
// session length (~15 actions) — long sessions look like outliers to
// every OC-SVM, which motivates the paper's first-15-actions vote.
#include <algorithm>
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto united = experiment.united_test_set();

  const std::size_t max_positions =
      static_cast<std::size_t>(args.integer("max-positions", 300));
  core::PositionCurve right_curve(max_positions);
  core::PositionCurve max_curve(max_positions);

  for (const auto& [session_index, true_cluster] : united) {
    const Session& session = experiment.store.at(session_index);
    auto online = detector.assigner().start_online();
    for (std::size_t i = 0; i < session.actions.size() && i < max_positions; ++i) {
      const auto scores = online.push(session.actions[i]);
      right_curve.add(i, scores[true_cluster]);
      max_curve.add(i, *std::max_element(scores.begin(), scores.end()));
    }
  }

  std::cout << "=== Fig. 6: OC-SVM score development per action ===\n";
  std::cout << "united test set: " << united.size() << " sessions\n";
  Table table({"action", "sessions", "right_ocsvm_score", "max_ocsvm_score"});
  const std::size_t usable = right_curve.usable_length(3);
  for (std::size_t p = 0; p < usable; ++p) {
    table.add_row({std::to_string(p + 1), std::to_string(right_curve.count(p)),
                   Table::num(right_curve.mean(p), 5), Table::num(max_curve.mean(p), 5)});
  }
  core::emit_table(table, config.results_dir, "fig06_ocsvm_scores");

  // Shape check: average score over long prefixes must fall below the
  // average score around the mean session length.
  const std::size_t vote = detector.assigner().config().vote_actions;
  double early = 0.0, late = 0.0;
  std::size_t n_early = 0, n_late = 0;
  for (std::size_t p = 0; p < usable; ++p) {
    if (p < vote) {
      early += max_curve.mean(p);
      ++n_early;
    } else if (p >= 2 * vote) {
      late += max_curve.mean(p);
      ++n_late;
    }
  }
  std::cout << "\nshape checks vs paper:\n";
  if (n_early > 0 && n_late > 0) {
    early /= static_cast<double>(n_early);
    late /= static_cast<double>(n_late);
    std::cout << "  avg max-score over first " << vote << " actions: " << Table::num(early, 5)
              << "; beyond " << 2 * vote << " actions: " << Table::num(late, 5)
              << (late < early ? "  (decays as in the paper)" : "  (no decay!)") << "\n";
  } else {
    std::cout << "  not enough long sessions to compare early/late scores\n";
  }
  return 0;
}

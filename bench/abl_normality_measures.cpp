// Ablation: which normality measure separates anomalies best? The paper
// uses the average per-action likelihood and (following Kim et al.) the
// average loss, and proposes perplexity as future work (§V): "perplexity
// score might be more objective normality measure of a session than the
// average per action loss or likelihood."
//
// This bench scores the united real test set against (a) random sessions
// and (b) injected misuse sessions under all three measures and reports
// the anomaly-ranking AUC of each.
#include <cmath>
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

namespace {

struct MeasureSamples {
  std::vector<double> real, random_set, misuse;
};

// Likelihood ranks low=anomalous already; loss and perplexity rank
// high=anomalous, so negate them for the shared AUC convention.
double auc_low_is_anomalous(std::span<const double> normal, std::span<const double> anomalous) {
  return core::anomaly_auc(normal, anomalous);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;
  const auto& store = experiment.store;

  const auto united = experiment.united_test_set();
  const SessionStore random_store =
      experiment.portal.generate_random_sessions(united.size(), config.portal.seed + 72);
  Rng rng(config.portal.seed + 73);
  std::vector<Session> misuses;
  for (std::size_t i = 0; i < united.size() / 4 + 8; ++i) {
    misuses.push_back(experiment.portal.make_misuse(
        static_cast<synth::MisuseKind>(i % static_cast<std::size_t>(synth::MisuseKind::kCount)),
        rng));
  }

  MeasureSamples likelihood, loss, perplexity;
  const auto add = [&](const nn::NextActionModel::SessionScore& score,
                       std::vector<double> MeasureSamples::*member) {
    if (score.likelihoods.empty()) return;
    (likelihood.*member).push_back(score.avg_likelihood());
    // Negated: high loss/perplexity = anomalous, AUC expects low = anomalous.
    (loss.*member).push_back(-score.avg_loss());
    (perplexity.*member).push_back(-score.perplexity());
  };
  for (const auto& [i, c] : united) {
    (void)c;
    add(detector.predict(store.at(i).view()).score, &MeasureSamples::real);
  }
  for (const auto& s : random_store.all()) {
    add(detector.predict(s.view()).score, &MeasureSamples::random_set);
  }
  for (const auto& s : misuses) {
    add(detector.predict(s.view()).score, &MeasureSamples::misuse);
  }

  std::cout << "=== Ablation: normality measures (likelihood vs loss vs perplexity) ===\n";
  std::cout << "real " << likelihood.real.size() << ", random " << likelihood.random_set.size()
            << ", injected misuse " << likelihood.misuse.size() << " sessions\n";
  Table table({"measure", "auc_vs_random", "auc_vs_misuse"});
  const auto row = [&](const char* name, const MeasureSamples& m) {
    table.add_row({name, Table::num(auc_low_is_anomalous(m.real, m.random_set), 4),
                   Table::num(auc_low_is_anomalous(m.real, m.misuse), 4)});
  };
  row("avg likelihood (paper)", likelihood);
  row("avg loss (Kim et al.)", loss);
  row("perplexity (paper SS V)", perplexity);
  core::emit_table(table, config.results_dir, "abl_normality_measures");

  std::cout << "\n(all three measures come from the same per-action probabilities; the\n"
               " ranking differences show how much the aggregation choice matters)\n";
  return 0;
}

// Streaming-server throughput record, written to BENCH_serve.json. Not a
// paper figure: this measures the serving layer (src/serve) that wraps
// the paper's online monitoring regime (§IV-C) for live traffic.
//
// Two entry paths are timed over the same interleaved multi-user trace:
//   * batch path — enqueue into the bounded shard queues and pump() on
//     the global thread pool, swept across shard x thread combinations;
//   * sync path  — submit_sync() per event under the shard lock, the
//     latency-mode TCP path, single producer.
// Scores are bit-identical across all combinations (determinism
// contract), so only events/second changes.
//
//   ./bench/bench_serve [--reduced] [--out=BENCH_serve.json]
//       [--sessions=N] [--metrics-out=PATH]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "serve/server.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

constexpr int kRepetitions = 3;  // best-of to suppress scheduler noise

struct Workload {
  std::vector<serve::Event> events;
  std::size_t sessions = 0;
};

/// Round-robin interleaving of held-out portal sessions: the arrival
/// pattern a fleet of concurrent users produces.
Workload make_workload(const synth::Portal& portal, const SessionStore& store,
                       std::size_t session_count) {
  std::vector<std::span<const int>> sessions;
  std::vector<std::uint32_t> users;
  for (std::size_t i = store.size(); i-- > 0 && sessions.size() < session_count;) {
    if (store.at(i).length() < 2) continue;
    sessions.push_back(store.at(i).view());
    users.push_back(store.at(i).user);
  }
  Workload w;
  w.sessions = sessions.size();
  std::vector<std::size_t> cursor(sessions.size(), 0);
  double t = 0.0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (cursor[s] >= sessions[s].size()) continue;
      serve::Event event;
      event.user_id = "user" + std::to_string(users[s]);
      event.session_id = "session" + std::to_string(s);
      event.action = portal.vocab().name(sessions[s][cursor[s]]);
      event.timestamp = t;
      event.has_timestamp = true;
      t += 0.5;
      ++cursor[s];
      w.events.push_back(std::move(event));
      progressed = true;
    }
  }
  return w;
}

double run_batch_path(const core::MisuseDetector& detector, const Workload& workload,
                      std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  std::size_t since_pump = 0;
  for (const auto& event : workload.events) {
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      out.clear();
    }
    if (++since_pump >= 256) {
      server.pump(out);
      out.clear();
      since_pump = 0;
    }
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double run_sync_path(const core::MisuseDetector& detector, const Workload& workload,
                     std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& event : workload.events) {
    (void)server.submit_sync(event, out);
    out.clear();
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

template <typename Fn>
double best_of(const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < kRepetitions; ++r) {
    const double seconds = fn();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_serve.json");
  const auto session_count =
      static_cast<std::size_t>(args.integer("sessions", reduced ? 48 : 400));
  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));

  synth::PortalConfig portal_config;
  portal_config.sessions = reduced ? 280 : 1200;
  portal_config.users = reduced ? 40 : 160;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();

  core::DetectorConfig detector_config;
  detector_config.ensemble.topic_counts = {10, 13};
  detector_config.ensemble.iterations = 8;
  detector_config.expert.target_clusters = 4;
  detector_config.expert.min_cluster_sessions = 5;
  detector_config.lm.hidden = 8;
  detector_config.lm.epochs = 2;
  detector_config.lm.patience = 0;
  set_global_threads(1);
  std::cout << "training detector on " << store.size() << " sessions...\n";
  const core::MisuseDetector detector = core::MisuseDetector::train(store, detector_config);

  const Workload workload = make_workload(portal, store, session_count);
  std::cout << "replaying " << workload.events.size() << " events from " << workload.sessions
            << " interleaved sessions\n";

  struct Row {
    std::string path;
    std::size_t shards = 0;
    std::size_t threads = 0;
    double seconds = 0.0;
  };
  std::vector<Row> rows;
  const std::vector<std::size_t> shard_counts = reduced ? std::vector<std::size_t>{1, 4}
                                                        : std::vector<std::size_t>{1, 4, 8};
  const std::vector<std::size_t> thread_counts =
      reduced ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      set_global_threads(threads);
      const double seconds =
          best_of([&] { return run_batch_path(detector, workload, shards); });
      rows.push_back({"batch", shards, threads, seconds});
      std::cout << "batch shards=" << shards << " threads=" << threads << ": "
                << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
    }
  }
  set_global_threads(1);
  for (const std::size_t shards : shard_counts) {
    const double seconds = best_of([&] { return run_sync_path(detector, workload, shards); });
    rows.push_back({"sync", shards, 1, seconds});
    std::cout << "sync shards=" << shards << ": "
              << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
  }

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  json.member("events", workload.events.size());
  json.member("sessions", workload.sessions);
  json.member("reduced", reduced);
  json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  json.member("note",
              "Streaming-server replay throughput (best-of wall clock). 'batch' = bounded shard "
              "queues drained by pump() on the thread pool (stdin/NDJSON mode); 'sync' = "
              "submit_sync under the shard lock (TCP latency mode), single producer. Verdicts "
              "are bit-identical across every row (determinism contract).");
  json.key("rows");
  json.begin_array();
  for (const auto& r : rows) {
    json.begin_object();
    json.member("path", r.path);
    json.member("shards", r.shards);
    json.member("threads", r.threads);
    json.member("seconds", r.seconds);
    json.member("events_per_second", r.seconds > 0.0 ? workload.events.size() / r.seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

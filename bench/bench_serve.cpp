// Streaming-server throughput record, written to BENCH_serve.json. Not a
// paper figure: this measures the serving layer (src/serve) that wraps
// the paper's online monitoring regime (§IV-C) for live traffic.
//
// Two entry paths are timed over the same interleaved multi-user trace:
//   * batch path — enqueue into the bounded shard queues and pump() on
//     the global thread pool, swept across shard x thread combinations;
//   * sync path  — submit_sync() per event under the shard lock, the
//     latency-mode TCP path, single producer.
// Scores are bit-identical across all combinations (determinism
// contract), so only events/second changes.
//
// A second record, BENCH_recovery.json, measures the crash-safety tax:
// the same batch replay with the per-shard WAL enabled vs disabled, plus
// the wall-clock cost of recover() over the log a crashed run left
// behind.
//
//   ./bench/bench_serve [--reduced] [--out=BENCH_serve.json]
//       [--recovery-out=BENCH_recovery.json] [--sessions=N]
//       [--metrics-out=PATH]
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "serve/server.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace misuse {
namespace {

constexpr int kRepetitions = 3;  // best-of to suppress scheduler noise

struct Workload {
  std::vector<serve::Event> events;
  std::size_t sessions = 0;
};

/// Round-robin interleaving of held-out portal sessions: the arrival
/// pattern a fleet of concurrent users produces.
Workload make_workload(const synth::Portal& portal, const SessionStore& store,
                       std::size_t session_count) {
  std::vector<std::span<const int>> sessions;
  std::vector<std::uint32_t> users;
  for (std::size_t i = store.size(); i-- > 0 && sessions.size() < session_count;) {
    if (store.at(i).length() < 2) continue;
    sessions.push_back(store.at(i).view());
    users.push_back(store.at(i).user);
  }
  Workload w;
  w.sessions = sessions.size();
  std::vector<std::size_t> cursor(sessions.size(), 0);
  double t = 0.0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (cursor[s] >= sessions[s].size()) continue;
      serve::Event event;
      event.user_id = "user" + std::to_string(users[s]);
      event.session_id = "session" + std::to_string(s);
      event.action = portal.vocab().name(sessions[s][cursor[s]]);
      event.timestamp = t;
      event.has_timestamp = true;
      t += 0.5;
      ++cursor[s];
      w.events.push_back(std::move(event));
      progressed = true;
    }
  }
  return w;
}

double run_batch_path(const core::MisuseDetector& detector, const Workload& workload,
                      std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  std::size_t since_pump = 0;
  for (const auto& event : workload.events) {
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      out.clear();
    }
    if (++since_pump >= 256) {
      server.pump(out);
      out.clear();
      since_pump = 0;
    }
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Steady-state replay for the WAL-overhead comparison: times the feed
/// only (batch mode: enqueue + pump; sync mode: submit_sync per event).
/// Startup (log creation) and shutdown (final checkpoint) are fixed
/// once-per-process costs and are kept outside the timer so the number
/// reflects the per-event durability tax.
double run_steady_state(const core::MisuseDetector& detector, const Workload& workload,
                        std::size_t shards, bool sync_path, const std::string& wal_dir,
                        std::size_t wal_sync_every) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  if (!wal_dir.empty()) {
    // Fresh log per repetition so every run pays the full append cost.
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    config.wal_dir = wal_dir;
    if (wal_sync_every > 0) config.wal_sync_every = wal_sync_every;
  }
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  if (sync_path) {
    for (const auto& event : workload.events) {
      (void)server.submit_sync(event, out);
      out.clear();
    }
  } else {
    std::size_t since_pump = 0;
    for (const auto& event : workload.events) {
      while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
        out.clear();
      }
      if (++since_pump >= 256) {
        server.pump(out);
        out.clear();
        since_pump = 0;
      }
    }
    server.pump(out);
  }
  const auto end = std::chrono::steady_clock::now();
  std::vector<serve::OutputRecord> drain;
  server.shutdown(drain);
  return std::chrono::duration<double>(end - start).count();
}

double run_sync_path(const core::MisuseDetector& detector, const Workload& workload,
                     std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& event : workload.events) {
    (void)server.submit_sync(event, out);
    out.clear();
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RecoveryResult {
  double seconds = 0.0;
  std::size_t replayed = 0;
};

/// Leaves behind the WAL of a crashed run (full feed, pump, no
/// shutdown), then times a fresh server's recover() over it. This is the
/// worst case: nothing was checkpointed, every applied event replays.
RecoveryResult measure_recovery(const core::MisuseDetector& detector, const Workload& workload,
                                std::size_t shards, const std::string& wal_dir) {
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  config.wal_dir = wal_dir;
  {
    serve::ScoringServer server(detector, config);
    std::vector<serve::OutputRecord> out;
    std::size_t since_pump = 0;
    for (const auto& event : workload.events) {
      while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
        out.clear();
      }
      if (++since_pump >= 256) {
        server.pump(out);
        out.clear();
        since_pump = 0;
      }
    }
    server.pump(out);
    out.clear();
    // No shutdown(): the server drops like a crash would, WAL intact.
  }
  serve::ScoringServer restarted(detector, config);
  std::vector<serve::OutputRecord> out;
  RecoveryResult result;
  const auto start = std::chrono::steady_clock::now();
  result.replayed = restarted.recover(out);
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

template <typename Fn>
double best_of(const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < kRepetitions; ++r) {
    const double seconds = fn();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_serve.json");
  const auto session_count =
      static_cast<std::size_t>(args.integer("sessions", reduced ? 48 : 400));
  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));

  synth::PortalConfig portal_config;
  portal_config.sessions = reduced ? 280 : 1200;
  portal_config.users = reduced ? 40 : 160;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();

  core::DetectorConfig detector_config;
  detector_config.ensemble.topic_counts = {10, 13};
  detector_config.ensemble.iterations = 8;
  detector_config.expert.target_clusters = 4;
  detector_config.expert.min_cluster_sessions = 5;
  detector_config.lm.hidden = 8;
  detector_config.lm.epochs = 2;
  detector_config.lm.patience = 0;
  set_global_threads(1);
  std::cout << "training detector on " << store.size() << " sessions...\n";
  const core::MisuseDetector detector = core::MisuseDetector::train(store, detector_config);

  const Workload workload = make_workload(portal, store, session_count);
  std::cout << "replaying " << workload.events.size() << " events from " << workload.sessions
            << " interleaved sessions\n";

  struct Row {
    std::string path;
    std::size_t shards = 0;
    std::size_t threads = 0;
    double seconds = 0.0;
  };
  std::vector<Row> rows;
  const std::vector<std::size_t> shard_counts = reduced ? std::vector<std::size_t>{1, 4}
                                                        : std::vector<std::size_t>{1, 4, 8};
  const std::vector<std::size_t> thread_counts =
      reduced ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      set_global_threads(threads);
      const double seconds =
          best_of([&] { return run_batch_path(detector, workload, shards); });
      rows.push_back({"batch", shards, threads, seconds});
      std::cout << "batch shards=" << shards << " threads=" << threads << ": "
                << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
    }
  }
  set_global_threads(1);
  for (const std::size_t shards : shard_counts) {
    const double seconds = best_of([&] { return run_sync_path(detector, workload, shards); });
    rows.push_back({"sync", shards, 1, seconds});
    std::cout << "sync shards=" << shards << ": "
              << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
  }

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  json.member("events", workload.events.size());
  json.member("sessions", workload.sessions);
  json.member("reduced", reduced);
  json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  json.member("note",
              "Streaming-server replay throughput (best-of wall clock). 'batch' = bounded shard "
              "queues drained by pump() on the thread pool (stdin/NDJSON mode); 'sync' = "
              "submit_sync under the shard lock (TCP latency mode), single producer. Verdicts "
              "are bit-identical across every row (determinism contract).");
  json.key("rows");
  json.begin_array();
  for (const auto& r : rows) {
    json.begin_object();
    json.member("path", r.path);
    json.member("shards", r.shards);
    json.member("threads", r.threads);
    json.member("seconds", r.seconds);
    json.member("events_per_second", r.seconds > 0.0 ? workload.events.size() / r.seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  // -- Crash-safety tax: WAL-on vs WAL-off, plus recovery time ------------
  const std::string recovery_out = args.str("recovery-out", "BENCH_recovery.json");
  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "misusedet_bench_wal").string();
  const std::size_t wal_shards = 4;
  const std::size_t wal_threads = 2;
  set_global_threads(wal_threads);
  const std::size_t wal_sync_every = static_cast<std::size_t>(
      args.integer("wal-sync", static_cast<long long>(serve::ServeConfig{}.wal_sync_every)));
  struct WalRow {
    const char* path;
    bool sync_path;
    double off = 0.0;
    double on = 0.0;
    double overhead() const { return off > 0.0 ? on / off - 1.0 : 0.0; }
  };
  WalRow wal_rows[] = {{"batch", false}, {"sync", true}};
  for (WalRow& row : wal_rows) {
    if (row.sync_path) set_global_threads(1);
    row.off = best_of(
        [&] { return run_steady_state(detector, workload, wal_shards, row.sync_path, {}, 0); });
    row.on = best_of([&] {
      return run_steady_state(detector, workload, wal_shards, row.sync_path, wal_dir,
                              wal_sync_every);
    });
    std::cout << row.path << " wal off: "
              << static_cast<std::size_t>(workload.events.size() / row.off) << " events/s, wal on: "
              << static_cast<std::size_t>(workload.events.size() / row.on)
              << " events/s (overhead " << row.overhead() * 100.0 << "%)\n";
  }
  const RecoveryResult recovery = measure_recovery(detector, workload, wal_shards, wal_dir);
  std::filesystem::remove_all(wal_dir);
  std::cout << "recovery: " << recovery.replayed << " events replayed in " << recovery.seconds
            << "s\n";

  std::ofstream rec_out(recovery_out);
  JsonWriter rec_json(rec_out);
  rec_json.begin_object();
  rec_json.member("events", workload.events.size());
  rec_json.member("sessions", workload.sessions);
  rec_json.member("reduced", reduced);
  rec_json.member("shards", wal_shards);
  rec_json.member("threads", wal_threads);
  rec_json.member("wal_sync_every", wal_sync_every);
  rec_json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  rec_json.key("wal_rows");
  rec_json.begin_array();
  for (const WalRow& row : wal_rows) {
    rec_json.begin_object();
    rec_json.member("path", std::string(row.path));
    rec_json.member("wal_off_seconds", row.off);
    rec_json.member("wal_on_seconds", row.on);
    rec_json.member("wal_overhead_frac", row.overhead());
    rec_json.end_object();
  }
  rec_json.end_array();
  rec_json.member("recovery_seconds", recovery.seconds);
  rec_json.member("recovered_events", recovery.replayed);
  rec_json.member("recovered_events_per_second",
                  recovery.seconds > 0.0 ? recovery.replayed / recovery.seconds : 0.0);
  rec_json.member("note",
                  "Crash-safety tax: identical steady-state replay with the per-shard WAL "
                  "enabled vs disabled (best-of wall clock; fresh log each repetition; 'sync' is "
                  "the single-producer submit_sync path), plus worst-case recover() time over "
                  "the WAL a crashed, never-checkpointed run left behind. Target: "
                  "wal_overhead_frac < 0.15 on every row.");
  rec_json.end_object();
  rec_out << "\n";
  std::cout << "wrote " << recovery_out << "\n";
  return 0;
}

// Streaming-server throughput record, written to BENCH_serve.json. Not a
// paper figure: this measures the serving layer (src/serve) that wraps
// the paper's online monitoring regime (§IV-C) for live traffic.
//
// Two entry paths are timed over the same interleaved multi-user trace:
//   * batch path — enqueue into the bounded shard queues and pump() on
//     the global thread pool, swept across shard x thread combinations;
//   * sync path  — submit_sync() per event under the shard lock, the
//     latency-mode TCP path, single producer.
// Scores are bit-identical across all combinations (determinism
// contract), so only events/second changes.
//
// A second record, BENCH_recovery.json, measures the crash-safety tax:
// the same batch replay with the per-shard WAL enabled vs disabled, plus
// the wall-clock cost of recover() over the log a crashed run left
// behind.
//
// A third record, BENCH_swap.json, measures hot-swap latency: the same
// replay with a model swap injected every N events, recording the
// all-shards-locked pause each swap held traffic for. Acceptance: p99
// pause < 250ms and zero sessions rolled (compatible vocabularies).
//
// A fourth record, BENCH_observe.json, measures the operations-plane
// tax: the same batch replay with the admin endpoint live, sampled
// tracing on, and a 1 Hz scraper hitting /metrics + /statusz over real
// HTTP. Acceptance: overhead < 2% actions/sec and byte-identical output.
//
// A fifth record, BENCH_cluster.json (--cluster, which runs *only* this
// leg), measures horizontal scaling: N misusedet_serve nodes plus a
// misusedet_router are spawned as real processes, the interleaved trace
// is streamed through the router over TCP from several concurrent
// client connections, and sessions/second is recorded per cluster size.
// Acceptance (multi-core hosts): >= 2.5x sessions/sec at 3 nodes vs 1.
//
//   ./bench/bench_serve [--reduced] [--out=BENCH_serve.json]
//       [--recovery-out=BENCH_recovery.json] [--swap-out=BENCH_swap.json]
//       [--observe-out=BENCH_observe.json]
//       [--cluster] [--cluster-out=BENCH_cluster.json]
//       [--sessions=N] [--metrics-out=PATH]
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/line_io.hpp"
#include "util/serialize.hpp"

#include "core/detector.hpp"
#include "core/observability.hpp"
#include "serve/admin.hpp"
#include "serve/server.hpp"
#include "serve/trace_sampler.hpp"
#include "synth/portal.hpp"
#include "util/cli.hpp"
#include "util/hostinfo.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace misuse {
namespace {

constexpr int kRepetitions = 3;  // best-of to suppress scheduler noise

struct Workload {
  std::vector<serve::Event> events;
  std::size_t sessions = 0;
};

/// Round-robin interleaving of held-out portal sessions: the arrival
/// pattern a fleet of concurrent users produces.
Workload make_workload(const synth::Portal& portal, const SessionStore& store,
                       std::size_t session_count) {
  std::vector<std::span<const int>> sessions;
  std::vector<std::uint32_t> users;
  for (std::size_t i = store.size(); i-- > 0 && sessions.size() < session_count;) {
    if (store.at(i).length() < 2) continue;
    sessions.push_back(store.at(i).view());
    users.push_back(store.at(i).user);
  }
  Workload w;
  w.sessions = sessions.size();
  std::vector<std::size_t> cursor(sessions.size(), 0);
  double t = 0.0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      if (cursor[s] >= sessions[s].size()) continue;
      serve::Event event;
      event.user_id = "user" + std::to_string(users[s]);
      event.session_id = "session" + std::to_string(s);
      event.action = portal.vocab().name(sessions[s][cursor[s]]);
      event.timestamp = t;
      event.has_timestamp = true;
      t += 0.5;
      ++cursor[s];
      w.events.push_back(std::move(event));
      progressed = true;
    }
  }
  return w;
}

double run_batch_path(const core::MisuseDetector& detector, const Workload& workload,
                      std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  std::size_t since_pump = 0;
  for (const auto& event : workload.events) {
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      out.clear();
    }
    if (++since_pump >= 256) {
      server.pump(out);
      out.clear();
      since_pump = 0;
    }
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Steady-state replay for the WAL-overhead comparison: times the feed
/// only (batch mode: enqueue + pump; sync mode: submit_sync per event).
/// Startup (log creation) and shutdown (final checkpoint) are fixed
/// once-per-process costs and are kept outside the timer so the number
/// reflects the per-event durability tax.
double run_steady_state(const core::MisuseDetector& detector, const Workload& workload,
                        std::size_t shards, bool sync_path, const std::string& wal_dir,
                        std::size_t wal_sync_every) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  if (!wal_dir.empty()) {
    // Fresh log per repetition so every run pays the full append cost.
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    config.wal_dir = wal_dir;
    if (wal_sync_every > 0) config.wal_sync_every = wal_sync_every;
  }
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  if (sync_path) {
    for (const auto& event : workload.events) {
      (void)server.submit_sync(event, out);
      out.clear();
    }
  } else {
    std::size_t since_pump = 0;
    for (const auto& event : workload.events) {
      while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
        out.clear();
      }
      if (++since_pump >= 256) {
        server.pump(out);
        out.clear();
        since_pump = 0;
      }
    }
    server.pump(out);
  }
  const auto end = std::chrono::steady_clock::now();
  std::vector<serve::OutputRecord> drain;
  server.shutdown(drain);
  return std::chrono::duration<double>(end - start).count();
}

double run_sync_path(const core::MisuseDetector& detector, const Workload& workload,
                     std::size_t shards) {
  serve::ServeConfig config;
  config.shards = shards;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& event : workload.events) {
    (void)server.submit_sync(event, out);
    out.clear();
  }
  server.shutdown(out);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

struct RecoveryResult {
  double seconds = 0.0;
  std::size_t replayed = 0;
};

/// Leaves behind the WAL of a crashed run (full feed, pump, no
/// shutdown), then times a fresh server's recover() over it. This is the
/// worst case: nothing was checkpointed, every applied event replays.
RecoveryResult measure_recovery(const core::MisuseDetector& detector, const Workload& workload,
                                std::size_t shards, const std::string& wal_dir) {
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  config.wal_dir = wal_dir;
  {
    serve::ScoringServer server(detector, config);
    std::vector<serve::OutputRecord> out;
    std::size_t since_pump = 0;
    for (const auto& event : workload.events) {
      while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
        out.clear();
      }
      if (++since_pump >= 256) {
        server.pump(out);
        out.clear();
        since_pump = 0;
      }
    }
    server.pump(out);
    out.clear();
    // No shutdown(): the server drops like a crash would, WAL intact.
  }
  serve::ScoringServer restarted(detector, config);
  std::vector<serve::OutputRecord> out;
  RecoveryResult result;
  const auto start = std::chrono::steady_clock::now();
  result.replayed = restarted.recover(out);
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

struct SwapBench {
  std::vector<double> pauses;  // all-shards-locked window per swap
  std::vector<double> drains;  // backlog pump before the barrier
  std::size_t rolled = 0;      // sessions finished at a barrier (want 0)
  std::size_t swaps = 0;
};

/// Replays the workload in batch mode, hot-swapping between two
/// vocabulary-compatible models every `interval` events — the
/// zero-downtime claim under live load.
SwapBench run_swap_path(const core::MisuseDetector& v1, const core::MisuseDetector& v2,
                        const Workload& workload, std::size_t shards, std::size_t interval) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  serve::ScoringServer server(serve::ModelHandle::borrowed(v1), config);
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  SwapBench result;
  std::size_t since_swap = 0;
  bool on_v2 = false;
  for (const auto& event : workload.events) {
    while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
      server.pump(out);
      out.clear();
    }
    if (++since_swap >= interval) {
      since_swap = 0;
      on_v2 = !on_v2;
      auto next = serve::ModelHandle::borrowed(on_v2 ? v2 : v1);
      next.version = on_v2 ? "v2" : "v1";
      const auto stats = server.swap_model(std::move(next), out);
      out.clear();
      result.pauses.push_back(stats.pause_seconds);
      result.drains.push_back(stats.drain_seconds);
      result.rolled += stats.rolled_sessions;
      ++result.swaps;
    }
  }
  server.shutdown(out);
  return result;
}

struct ObserveRun {
  double seconds = 0.0;
  std::size_t scrapes = 0;
  std::vector<std::string> lines;  // scored output, merge order
};

/// Batch replay (the workload streamed `passes` times through one
/// server) that keeps the scored output lines. With `admin` true the
/// run carries the admin listener plus a scraper thread fetching
/// /metrics + /statusz over real HTTP at ~1 Hz — the deployment shape
/// the <2% scrape-overhead budget is for. `tracing` additionally turns
/// on head-sampled trace export (--trace-sample=8), whose per-event
/// sampler probe is an opt-in cost priced separately. Multiple passes
/// stretch the timed window to seconds so the 1 Hz cadence is actually
/// amortized; a window shorter than one scrape tick would charge a
/// whole scrape against milliseconds of scoring.
ObserveRun run_observed_path(const core::MisuseDetector& detector, const Workload& workload,
                             std::size_t shards, std::size_t passes, bool admin, bool tracing) {
  serve::ServeConfig config;
  config.shards = shards;
  config.queue_capacity = 512;
  config.emit_steps = true;
  serve::ScoringServer server(detector, config);
  std::optional<serve::AdminServer> admin_server;
  std::thread scraper;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> scrapes{0};
  if (tracing) {
    trace_events().enable(65536);
    server.set_trace_sampler(std::make_shared<serve::SessionTraceSampler>(8));
  }
  if (admin) {
    serve::AdminConfig admin_config;
    admin_config.host = "127.0.0.1";
    admin_server.emplace(server, admin_config);
    const std::uint16_t port = admin_server->port();
    scraper = std::thread([port, &stop, &scrapes] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const char* path : {"/metrics", "/statusz"}) {
          try {
            TcpStream stream = tcp_connect("127.0.0.1", port);
            stream.io() << "GET " << path << " HTTP/1.0\r\n\r\n";
            stream.io().flush();
            stream.shutdown_write();
            std::ostringstream sink;
            sink << stream.io().rdbuf();
            if (!sink.str().empty()) scrapes.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            // Server may still be warming up; the next tick retries.
          }
        }
        for (int i = 0; i < 10 && !stop.load(std::memory_order_relaxed); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
  }

  ObserveRun result;
  std::vector<serve::OutputRecord> out;
  out.reserve(4096);
  const auto keep = [&result, &out] {
    for (const auto& r : out) result.lines.push_back(r.line);
    out.clear();
  };
  const auto start = std::chrono::steady_clock::now();
  std::size_t since_pump = 0;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const auto& event : workload.events) {
      while (server.enqueue(event, out) == serve::ScoringServer::Enqueue::kQueueFull) {
        server.pump(out);
        keep();
      }
      if (++since_pump >= 256) {
        server.pump(out);
        keep();
        since_pump = 0;
      }
    }
  }
  server.shutdown(out);
  keep();
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  if (admin) {
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    admin_server.reset();  // joins the accept thread
  }
  if (tracing) trace_events().disable();
  result.scrapes = scrapes.load(std::memory_order_relaxed);
  return result;
}

// -- Cluster scaling (--cluster): real processes, real sockets ------------

/// A spawned misusedet_serve / misusedet_router child with stdin and
/// stdout on /dev/null and stderr captured to a file (the port
/// handshake is scraped from it, smoke-script style).
struct ClusterChild {
  pid_t pid = -1;
  std::string err_path;

  void kill_wait() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
};

ClusterChild spawn_child(const std::vector<std::string>& args, const std::string& err_path) {
  ClusterChild child;
  child.err_path = err_path;
  // A leftover log from a previous repetition still holds its port
  // handshake; scrape_port must never read stale state.
  std::filesystem::remove(err_path);
  child.pid = ::fork();
  if (child.pid == 0) {
    const int devnull = ::open("/dev/null", O_RDWR);
    const int err = ::open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      ::dup2(devnull, STDOUT_FILENO);
    }
    if (err >= 0) ::dup2(err, STDERR_FILENO);
    std::vector<std::string> copy = args;
    std::vector<char*> argv;
    argv.reserve(copy.size() + 1);
    for (auto& a : copy) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  return child;
}

/// Polls the child's stderr log for the "listening on port N" handshake.
std::uint16_t scrape_port(const std::string& err_path, double timeout_seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_seconds);
  const std::string needle = "listening on port ";
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream log(err_path);
    std::string line;
    while (std::getline(log, line)) {
      const auto pos = line.find(needle);
      if (pos != std::string::npos) {
        return static_cast<std::uint16_t>(std::stoul(line.substr(pos + needle.size())));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

std::string render_event_line(const serve::Event& event) {
  std::ostringstream line;
  line << "{\"user_id\":\"" << event.user_id << "\",\"session_id\":\"" << event.session_id
       << "\",\"action\":\"" << event.action << "\",\"timestamp\":" << event.timestamp << "}";
  return line.str();
}

/// Streams per-connection event lines through the router and waits for
/// one verdict line per event on each connection. Returns wall seconds
/// for the full round trip, or a negative value when a connection
/// failed or came up short.
double drive_cluster(std::uint16_t router_port,
                     const std::vector<std::vector<std::string>>& conn_lines) {
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& lines : conn_lines) {
    clients.emplace_back([router_port, &lines, &failed] {
      try {
        TcpStream stream = tcp_connect("127.0.0.1", router_port);
        std::string blob;
        for (const auto& line : lines) {
          blob += line;
          blob += '\n';
        }
        // Writer on a side thread; this thread drains replies so the
        // router's per-connection output backlog never hits its cap. The
        // writer goes through the raw fd, not the shared iostream — a
        // streambuf is not safe for concurrent read + write.
        const int fd = stream.fd();
        std::thread writer([fd, &blob, &failed] {
          std::size_t off = 0;
          while (off < blob.size()) {
            const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            off += static_cast<std::size_t>(n);
          }
        });
        LineReader reader(stream.io());
        std::string reply;
        std::size_t got = 0;
        while (got < lines.size() && reader.next(reply)) ++got;
        if (got != lines.size()) failed.store(true, std::memory_order_relaxed);
        writer.join();
      } catch (const std::exception&) {
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();
  if (failed.load(std::memory_order_relaxed)) return -1.0;
  return std::chrono::duration<double>(end - start).count();
}

int run_cluster_bench(const CliArgs& args, const core::MisuseDetector& detector,
                      const Workload& workload, bool reduced) {
#if !defined(MISUSEDET_SERVE_BIN) || !defined(MISUSEDET_ROUTER_BIN)
  (void)args;
  (void)detector;
  (void)workload;
  (void)reduced;
  std::cerr << "--cluster needs MISUSEDET_SERVE_BIN / MISUSEDET_ROUTER_BIN baked in\n";
  return 1;
#else
  ::signal(SIGPIPE, SIG_IGN);  // a dying node must not kill the bench
  const std::string out_path = args.str("cluster-out", "BENCH_cluster.json");
  const auto work_dir = std::filesystem::temp_directory_path() / "misusedet_bench_cluster";
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);
  const std::string model_path = (work_dir / "detector.bin").string();
  {
    std::ofstream model(model_path, std::ios::binary);
    BinaryWriter writer(model);
    detector.save(writer);
  }

  // Whole sessions per connection (round-robin): replies are attributed
  // per connection, and several concurrent producers are what lets a
  // multi-node cluster actually run its nodes in parallel.
  const std::size_t connections = 4;
  std::vector<std::vector<std::string>> conn_lines(connections);
  for (const auto& event : workload.events) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the session id
    for (const char c : event.session_id) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    conn_lines[h % connections].push_back(render_event_line(event));
  }

  struct ClusterRow {
    std::size_t nodes = 0;
    double seconds = 0.0;
  };
  std::vector<ClusterRow> rows;
  const int reps = reduced ? 2 : kRepetitions;
  for (const std::size_t node_count : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<ClusterChild> children;
      const auto stop_children = [&children] {
        for (auto& child : children) child.kill_wait();
      };
      std::string nodes_arg;
      bool up = true;
      for (std::size_t n = 0; n < node_count; ++n) {
        const std::string err =
            (work_dir / ("node" + std::to_string(n) + ".err")).string();
        children.push_back(spawn_child({MISUSEDET_SERVE_BIN, "--model=" + model_path,
                                        "--listen=0", "--io=epoll", "--idle-ttl=3600"},
                                       err));
        const std::uint16_t port = scrape_port(err);
        if (port == 0) {
          up = false;
          break;
        }
        if (!nodes_arg.empty()) nodes_arg += ',';
        nodes_arg += "127.0.0.1:" + std::to_string(port);
      }
      std::uint16_t router_port = 0;
      if (up) {
        const std::string err = (work_dir / "router.err").string();
        children.push_back(spawn_child(
            {MISUSEDET_ROUTER_BIN, "--nodes=" + nodes_arg, "--listen=0", "--host=127.0.0.1"},
            err));
        router_port = scrape_port(err);
      }
      if (router_port == 0) {
        stop_children();
        std::cerr << "cluster bench: failed to bring up " << node_count << " node(s)\n";
        return 1;
      }
      const double seconds = drive_cluster(router_port, conn_lines);
      stop_children();
      if (seconds < 0.0) {
        std::cerr << "cluster bench: replay through the router came up short\n";
        return 1;
      }
      if (best < 0.0 || seconds < best) best = seconds;
    }
    rows.push_back({node_count, best});
    std::cout << "cluster nodes=" << node_count << ": "
              << static_cast<std::size_t>(workload.sessions / best) << " sessions/s ("
              << static_cast<std::size_t>(workload.events.size() / best) << " events/s)\n";
  }
  std::filesystem::remove_all(work_dir);

  const double rate_1 = rows.front().seconds > 0.0 ? 1.0 / rows.front().seconds : 0.0;
  const double rate_3 = rows.back().seconds > 0.0 ? 1.0 / rows.back().seconds : 0.0;
  const double speedup = rate_1 > 0.0 ? rate_3 / rate_1 : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "cluster speedup at 3 nodes: " << speedup << "x (" << cores << " cores)\n";
  if (cores >= 4 && speedup < 2.5) {
    std::cout << "WARNING: 3-node speedup below the 2.5x near-linear-scaling target\n";
  }

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  write_host_info(json);
  json.member("events", workload.events.size());
  json.member("sessions", workload.sessions);
  json.member("reduced", reduced);
  json.member("client_connections", connections);
  json.member("repetitions_best_of", static_cast<std::size_t>(reps));
  json.key("rows");
  json.begin_array();
  for (const auto& row : rows) {
    json.begin_object();
    json.member("nodes", row.nodes);
    json.member("seconds", row.seconds);
    json.member("sessions_per_second",
                row.seconds > 0.0 ? workload.sessions / row.seconds : 0.0);
    json.member("events_per_second",
                row.seconds > 0.0 ? workload.events.size() / row.seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  json.member("speedup_3_nodes", speedup);
  json.member("speedup_target", 2.5);
  json.member("note",
              "Horizontal scaling through misusedet_router: N misusedet_serve processes "
              "(--io=epoll) plus the router, spawned for real; the interleaved trace streams "
              "through the router over TCP from client_connections concurrent connections "
              "(whole sessions per connection) and every per-event verdict is awaited "
              "(best-of wall clock). Acceptance: speedup_3_nodes >= speedup_target on hosts "
              "with >= 4 cores — node processes can only run in parallel when the host has "
              "cores for them, so single-core hosts record ~1x and the target does not "
              "apply (same caveat as BENCH_parallel).");
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
#endif
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

template <typename Fn>
double best_of(const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < kRepetitions; ++r) {
    const double seconds = fn();
    if (r == 0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace
}  // namespace misuse

int main(int argc, char** argv) {
  using namespace misuse;
  const CliArgs args(argc, argv);
  const bool reduced = args.flag("reduced");
  const std::string out_path = args.str("out", "BENCH_serve.json");
  const auto session_count =
      static_cast<std::size_t>(args.integer("sessions", reduced ? 48 : 400));
  core::register_core_metrics();
  core::MetricsExport metrics_export(args.str("metrics-out"));

  synth::PortalConfig portal_config;
  portal_config.sessions = reduced ? 280 : 1200;
  portal_config.users = reduced ? 40 : 160;
  portal_config.action_count = 60;
  portal_config.seed = 42;
  const synth::Portal portal(portal_config);
  const SessionStore store = portal.generate();

  core::DetectorConfig detector_config;
  detector_config.ensemble.topic_counts = {10, 13};
  detector_config.ensemble.iterations = 8;
  detector_config.expert.target_clusters = 4;
  detector_config.expert.min_cluster_sessions = 5;
  detector_config.lm.hidden = 8;
  detector_config.lm.epochs = 2;
  detector_config.lm.patience = 0;
  set_global_threads(1);
  std::cout << "training detector on " << store.size() << " sessions...\n";
  const core::MisuseDetector detector = core::MisuseDetector::train(store, detector_config);

  const Workload workload = make_workload(portal, store, session_count);
  std::cout << "replaying " << workload.events.size() << " events from " << workload.sessions
            << " interleaved sessions\n";

  if (args.flag("cluster")) return run_cluster_bench(args, detector, workload, reduced);

  struct Row {
    std::string path;
    std::size_t shards = 0;
    std::size_t threads = 0;
    double seconds = 0.0;
  };
  std::vector<Row> rows;
  const std::vector<std::size_t> shard_counts = reduced ? std::vector<std::size_t>{1, 4}
                                                        : std::vector<std::size_t>{1, 4, 8};
  const std::vector<std::size_t> thread_counts =
      reduced ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  for (const std::size_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      set_global_threads(threads);
      const double seconds =
          best_of([&] { return run_batch_path(detector, workload, shards); });
      rows.push_back({"batch", shards, threads, seconds});
      std::cout << "batch shards=" << shards << " threads=" << threads << ": "
                << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
    }
  }
  set_global_threads(1);
  for (const std::size_t shards : shard_counts) {
    const double seconds = best_of([&] { return run_sync_path(detector, workload, shards); });
    rows.push_back({"sync", shards, 1, seconds});
    std::cout << "sync shards=" << shards << ": "
              << static_cast<std::size_t>(workload.events.size() / seconds) << " events/s\n";
  }

  std::ofstream out(out_path);
  JsonWriter json(out);
  json.begin_object();
  write_host_info(json);
  json.member("events", workload.events.size());
  json.member("sessions", workload.sessions);
  json.member("reduced", reduced);
  json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  json.member("note",
              "Streaming-server replay throughput (best-of wall clock). 'batch' = bounded shard "
              "queues drained by pump() on the thread pool (stdin/NDJSON mode); 'sync' = "
              "submit_sync under the shard lock (TCP latency mode), single producer. Verdicts "
              "are bit-identical across every row (determinism contract).");
  json.key("rows");
  json.begin_array();
  for (const auto& r : rows) {
    json.begin_object();
    json.member("path", r.path);
    json.member("shards", r.shards);
    json.member("threads", r.threads);
    json.member("seconds", r.seconds);
    json.member("events_per_second", r.seconds > 0.0 ? workload.events.size() / r.seconds : 0.0);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";

  // -- Crash-safety tax: WAL-on vs WAL-off, plus recovery time ------------
  const std::string recovery_out = args.str("recovery-out", "BENCH_recovery.json");
  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "misusedet_bench_wal").string();
  const std::size_t wal_shards = 4;
  const std::size_t wal_threads = 2;
  set_global_threads(wal_threads);
  const std::size_t wal_sync_every = static_cast<std::size_t>(
      args.integer("wal-sync", static_cast<long long>(serve::ServeConfig{}.wal_sync_every)));
  struct WalRow {
    const char* path;
    bool sync_path;
    double off = 0.0;
    double on = 0.0;
    double overhead() const { return off > 0.0 ? on / off - 1.0 : 0.0; }
  };
  WalRow wal_rows[] = {{"batch", false}, {"sync", true}};
  for (WalRow& row : wal_rows) {
    if (row.sync_path) set_global_threads(1);
    row.off = best_of(
        [&] { return run_steady_state(detector, workload, wal_shards, row.sync_path, {}, 0); });
    row.on = best_of([&] {
      return run_steady_state(detector, workload, wal_shards, row.sync_path, wal_dir,
                              wal_sync_every);
    });
    std::cout << row.path << " wal off: "
              << static_cast<std::size_t>(workload.events.size() / row.off) << " events/s, wal on: "
              << static_cast<std::size_t>(workload.events.size() / row.on)
              << " events/s (overhead " << row.overhead() * 100.0 << "%)\n";
  }
  const RecoveryResult recovery = measure_recovery(detector, workload, wal_shards, wal_dir);
  std::filesystem::remove_all(wal_dir);
  std::cout << "recovery: " << recovery.replayed << " events replayed in " << recovery.seconds
            << "s\n";

  std::ofstream rec_out(recovery_out);
  JsonWriter rec_json(rec_out);
  rec_json.begin_object();
  write_host_info(rec_json);
  rec_json.member("events", workload.events.size());
  rec_json.member("sessions", workload.sessions);
  rec_json.member("reduced", reduced);
  rec_json.member("shards", wal_shards);
  rec_json.member("threads", wal_threads);
  rec_json.member("wal_sync_every", wal_sync_every);
  rec_json.member("repetitions_best_of", static_cast<std::size_t>(kRepetitions));
  rec_json.key("wal_rows");
  rec_json.begin_array();
  for (const WalRow& row : wal_rows) {
    rec_json.begin_object();
    rec_json.member("path", std::string(row.path));
    rec_json.member("wal_off_seconds", row.off);
    rec_json.member("wal_on_seconds", row.on);
    rec_json.member("wal_overhead_frac", row.overhead());
    rec_json.end_object();
  }
  rec_json.end_array();
  rec_json.member("recovery_seconds", recovery.seconds);
  rec_json.member("recovered_events", recovery.replayed);
  rec_json.member("recovered_events_per_second",
                  recovery.seconds > 0.0 ? recovery.replayed / recovery.seconds : 0.0);
  rec_json.member("note",
                  "Crash-safety tax: identical steady-state replay with the per-shard WAL "
                  "enabled vs disabled (best-of wall clock; fresh log each repetition; 'sync' is "
                  "the single-producer submit_sync path), plus worst-case recover() time over "
                  "the WAL a crashed, never-checkpointed run left behind. Target: "
                  "wal_overhead_frac < 0.15 on every row.");
  rec_json.end_object();
  rec_out << "\n";
  std::cout << "wrote " << recovery_out << "\n";

  // -- Hot-swap latency: the pause the barrier holds traffic for ----------
  const std::string swap_out_path = args.str("swap-out", "BENCH_swap.json");
  core::DetectorConfig v2_config = detector_config;
  v2_config.lm.hidden = 10;  // retrained candidate: same vocab, new weights
  v2_config.lm.epochs = 1;
  set_global_threads(1);
  std::cout << "training swap candidate...\n";
  const core::MisuseDetector detector_v2 = core::MisuseDetector::train(store, v2_config);
  const std::size_t swap_shards = 4;
  const std::size_t swap_threads = 2;
  const std::size_t swap_interval =
      std::max<std::size_t>(64, workload.events.size() / (reduced ? 16 : 48));
  set_global_threads(swap_threads);
  SwapBench swap_bench;
  for (int r = 0; r < kRepetitions; ++r) {
    const SwapBench rep =
        run_swap_path(detector, detector_v2, workload, swap_shards, swap_interval);
    swap_bench.pauses.insert(swap_bench.pauses.end(), rep.pauses.begin(), rep.pauses.end());
    swap_bench.drains.insert(swap_bench.drains.end(), rep.drains.begin(), rep.drains.end());
    swap_bench.rolled += rep.rolled;
    swap_bench.swaps += rep.swaps;
  }
  set_global_threads(1);
  const double pause_p50 = percentile(swap_bench.pauses, 0.50);
  const double pause_p99 = percentile(swap_bench.pauses, 0.99);
  const double pause_max = swap_bench.pauses.empty()
                               ? 0.0
                               : *std::max_element(swap_bench.pauses.begin(),
                                                   swap_bench.pauses.end());
  std::cout << "swap pause over " << swap_bench.swaps << " swaps: p50 " << pause_p50 * 1e3
            << "ms, p99 " << pause_p99 * 1e3 << "ms, max " << pause_max * 1e3 << "ms, "
            << swap_bench.rolled << " sessions rolled\n";
  if (pause_p99 >= 0.25) {
    std::cout << "WARNING: swap pause p99 exceeds the 250ms zero-downtime budget\n";
  }

  std::ofstream swap_file(swap_out_path);
  JsonWriter swap_json(swap_file);
  swap_json.begin_object();
  write_host_info(swap_json);
  swap_json.member("events", workload.events.size());
  swap_json.member("sessions", workload.sessions);
  swap_json.member("reduced", reduced);
  swap_json.member("shards", swap_shards);
  swap_json.member("threads", swap_threads);
  swap_json.member("swap_interval_events", swap_interval);
  swap_json.member("swaps", swap_bench.swaps);
  swap_json.member("pause_p50_seconds", pause_p50);
  swap_json.member("pause_p99_seconds", pause_p99);
  swap_json.member("pause_max_seconds", pause_max);
  swap_json.member("pause_p99_target_seconds", 0.25);
  swap_json.member("drain_p50_seconds", percentile(swap_bench.drains, 0.50));
  swap_json.member("drain_max_seconds",
                   swap_bench.drains.empty()
                       ? 0.0
                       : *std::max_element(swap_bench.drains.begin(), swap_bench.drains.end()));
  swap_json.member("sessions_rolled", swap_bench.rolled);
  swap_json.member("note",
                   "Hot-swap latency: batch replay with a swap between two vocabulary-compatible "
                   "models every swap_interval_events. 'pause' is the all-shards-locked window "
                   "(traffic held), 'drain' the backlog pump before the barrier. Acceptance: "
                   "pause_p99_seconds < 0.25 and sessions_rolled == 0 (compatible swaps "
                   "pin-and-continue; no session is dropped).");
  swap_json.end_object();
  swap_file << "\n";
  std::cout << "wrote " << swap_out_path << "\n";

  // -- Operations-plane tax: scraping + sampled tracing under load --------
  const std::string observe_out_path = args.str("observe-out", "BENCH_observe.json");
  const std::size_t observe_shards = 4;
  const std::size_t observe_threads = 2;
  set_global_threads(observe_threads);
  // Calibrate the pass count so each timed window spans multiple scrape
  // ticks (reduced mode keeps one pass: CI checks the JSON, not the tax).
  std::size_t observe_passes = 1;
  if (!reduced) {
    const ObserveRun calibration =
        run_observed_path(detector, workload, observe_shards, 1, false, false);
    const double target_seconds = 3.0;
    if (calibration.seconds > 0.0 && calibration.seconds < target_seconds) {
      observe_passes = std::min<std::size_t>(
          200, static_cast<std::size_t>(target_seconds / calibration.seconds) + 1);
    }
  }
  // Three legs: bare data path, + admin listener with a ~1 Hz scraper
  // (the <2% budget), + head-sampled tracing on top (opt-in, priced
  // separately — its sampler probe sits on the per-event hot path).
  // Repetitions interleave round-robin across the legs (same rationale
  // as bench_inference's monitor variants): host clock-speed drift over
  // the run lands on every leg instead of biasing whichever ran first.
  // Overheads compare the min-of-reps wall clock per leg: scheduler and
  // steal-time noise only ever *add* time, so each leg's min converges
  // to its true cost from above and the ratio of mins is the honest
  // overhead estimate (a paired per-rep ratio would chase whichever
  // single window the noise flattered most).
  const int observe_reps = reduced ? kRepetitions : 7;
  ObserveRun baseline;
  ObserveRun scraped;
  ObserveRun traced;
  for (int r = 0; r < observe_reps; ++r) {
    ObserveRun base_run =
        run_observed_path(detector, workload, observe_shards, observe_passes, false, false);
    ObserveRun scrape_run =
        run_observed_path(detector, workload, observe_shards, observe_passes, true, false);
    ObserveRun trace_run =
        run_observed_path(detector, workload, observe_shards, observe_passes, true, true);
    if (r == 0 || base_run.seconds < baseline.seconds) baseline = std::move(base_run);
    if (r == 0 || scrape_run.seconds < scraped.seconds) scraped = std::move(scrape_run);
    if (r == 0 || trace_run.seconds < traced.seconds) traced = std::move(trace_run);
  }
  set_global_threads(1);
  const std::size_t observe_events = workload.events.size() * observe_passes;
  const bool output_identical =
      baseline.lines == scraped.lines && baseline.lines == traced.lines;
  const double scrape_overhead =
      baseline.seconds > 0.0 ? scraped.seconds / baseline.seconds - 1.0 : 0.0;
  const double trace_overhead =
      baseline.seconds > 0.0 ? traced.seconds / baseline.seconds - 1.0 : 0.0;
  std::cout << "observe: baseline "
            << static_cast<std::size_t>(observe_events / baseline.seconds)
            << " events/s; admin+scrapes " << scrape_overhead * 100.0 << "% overhead ("
            << scraped.scrapes << " scrapes); +tracing " << trace_overhead * 100.0
            << "%; output " << (output_identical ? "identical" : "DIVERGED") << "\n";
  if (!reduced && scrape_overhead >= 0.02) {
    std::cout << "WARNING: scrape overhead exceeds the 2% budget\n";
  }
  if (!output_identical) {
    std::cout << "WARNING: scored output diverged with the admin plane enabled\n";
  }

  std::ofstream observe_file(observe_out_path);
  JsonWriter observe_json(observe_file);
  observe_json.begin_object();
  write_host_info(observe_json);
  observe_json.member("events", observe_events);
  observe_json.member("passes", observe_passes);
  observe_json.member("sessions", workload.sessions);
  observe_json.member("reduced", reduced);
  observe_json.member("shards", observe_shards);
  observe_json.member("threads", observe_threads);
  observe_json.member("repetitions_best_of", static_cast<std::size_t>(observe_reps));
  observe_json.member("trace_sample_sessions", static_cast<std::size_t>(8));
  observe_json.member("scrapes", scraped.scrapes);
  observe_json.member("baseline_seconds", baseline.seconds);
  observe_json.member("scraped_seconds", scraped.seconds);
  observe_json.member("traced_seconds", traced.seconds);
  observe_json.member("baseline_events_per_second",
                      baseline.seconds > 0.0 ? observe_events / baseline.seconds : 0.0);
  observe_json.member("scraped_events_per_second",
                      scraped.seconds > 0.0 ? observe_events / scraped.seconds : 0.0);
  observe_json.member("traced_events_per_second",
                      traced.seconds > 0.0 ? observe_events / traced.seconds : 0.0);
  observe_json.member("scrape_overhead_frac", scrape_overhead);
  observe_json.member("scrape_overhead_target_frac", 0.02);
  observe_json.member("trace_overhead_frac", trace_overhead);
  observe_json.member("output_identical", output_identical);
  observe_json.member("note",
                      "Operations-plane tax: identical multi-pass batch replay (passes "
                      "calibrated so the window spans several scrape ticks; repetitions "
                      "interleave round-robin across the legs and overheads compare each "
                      "leg's min wall clock, since scheduler noise is strictly additive) in "
                      "three legs — bare data path, + admin endpoint with a ~1 Hz HTTP "
                      "scraper hitting /metrics + /statusz, + head-sampled tracing "
                      "(--trace-sample=8) on top. Acceptance (non-reduced runs): "
                      "scrape_overhead_frac < scrape_overhead_target_frac and "
                      "output_identical == true across all legs (the admin plane is "
                      "read-only by construction). trace_overhead_frac prices the opt-in "
                      "per-event sampler probe and ring writes; it carries no budget. "
                      "Negative overheads mean the tax sits below the host's scheduler-"
                      "noise floor (common on shared single-core runners) and count as "
                      "budget met. Reduced runs keep one pass, so their overheads charge a "
                      "whole scrape against milliseconds of scoring and are not meaningful.");
  observe_json.end_object();
  observe_file << "\n";
  std::cout << "wrote " << observe_out_path << "\n";
  return 0;
}

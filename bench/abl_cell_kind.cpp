// Ablation: LSTM vs GRU as the behavior-model cell. The paper follows the
// literature in using LSTMs (§II); the GRU is its main rival with 25%
// fewer parameters per unit. We train both cell types on the same cluster
// data with identical hyperparameters and report accuracy, loss, wall
// clock, and parameter counts.
#include <iostream>

#include "core/experiment.hpp"
#include "util/trace.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  const synth::Portal portal(config.portal);
  const SessionStore store = portal.generate();

  std::cout << "=== Ablation: recurrent cell (LSTM vs GRU) ===\n";
  Table table({"archetype", "cell", "params", "test_acc", "test_loss", "train_seconds"});

  // Three archetypes of different sizes for a rounded comparison.
  for (const int archetype : {9, 10, 12}) {
    std::vector<std::span<const int>> sessions;
    std::string name;
    for (const auto& s : store.all()) {
      if (s.archetype == archetype && s.length() >= 2) {
        sessions.push_back(s.view());
      }
    }
    name = portal.archetypes()[static_cast<std::size_t>(archetype)].name();
    const std::size_t n_train = sessions.size() * 7 / 10;
    const std::vector<std::span<const int>> train(
        sessions.begin(), sessions.begin() + static_cast<std::ptrdiff_t>(n_train));
    const std::vector<std::span<const int>> test(
        sessions.begin() + static_cast<std::ptrdiff_t>(n_train), sessions.end());

    for (const auto cell : {nn::CellKind::kLstm, nn::CellKind::kGru}) {
      lm::LmConfig lm_config = config.detector.lm;
      lm_config.vocab = store.vocab().size();
      lm_config.cell = cell;
      lm_config.epochs = static_cast<std::size_t>(args.integer("abl-epochs", 25));
      lm_config.patience = 0;
      lm_config.seed = 7;
      lm::ActionLanguageModel model(lm_config);
      Span fit_span("abl.fit");
      model.fit(train, {});
      const double seconds = fit_span.stop();
      const auto eval = model.evaluate(std::span<const std::span<const int>>(test));
      table.add_row({name, nn::cell_kind_name(cell),
                     std::to_string(model.parameter_count()), Table::num(eval.accuracy),
                     Table::num(eval.loss), Table::num(seconds, 2)});
    }
  }
  core::emit_table(table, config.results_dir, "abl_cell_kind");

  std::cout << "\n(same data, same hyperparameters; the GRU trades a quarter of the\n"
               " parameters for whatever accuracy difference the task exposes)\n";
  return 0;
}

// Fig. 10 (appendix) — the loss-valued companion of Fig. 5: per-cluster
// test cross-entropy of the cluster model vs the global model vs the
// size-matched global-subset baseline, clusters ascending by size.
#include <iostream>

#include "bench_common.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto rows = bench::compute_baseline_rows(experiment);

  std::cout << "=== Fig. 10: loss — cluster model vs global vs global-subset ===\n";
  Table table({"cluster", "label", "size", "loss_cluster", "loss_global", "loss_global_subset"});
  std::size_t beats_subset = 0;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.cluster), row.label, std::to_string(row.size),
                   Table::num(row.loss_cluster), Table::num(row.loss_global),
                   Table::num(row.loss_subset)});
    if (row.loss_cluster < row.loss_subset) ++beats_subset;
  }
  core::emit_table(table, config.results_dir, "fig10_loss_baselines");

  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  cluster model lower loss than size-matched subset baseline: " << beats_subset
            << "/" << rows.size() << " clusters\n";
  return 0;
}

// Figs. 8 & 9 — normality estimation of the real test set vs the
// artificial abnormal test set (§IV-D): "This test set contains the same
// amount of sessions as the main data test set, each session has a
// randomly chosen length in an interval [5, 25] and each action is
// randomly chosen from the set of actions A."
//
// Shapes to reproduce: the average likelihood on the random set is at the
// level of random prediction (~1/d) and dramatically below the real test
// set (Fig. 8); the average loss on the random set is roughly twice the
// loss on real data (Fig. 9).
#include <cmath>
#include <iostream>

#include "core/evaluation.hpp"
#include "core/experiment.hpp"

using namespace misuse;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto config = core::ExperimentConfig::from_cli(args);
  core::Experiment experiment = core::Experiment::prepare(config);
  const auto& detector = experiment.detector;

  // Real test set = united per-cluster test splits (paper: "same amount
  // of sessions as the main data test set").
  std::vector<std::size_t> real_indices;
  for (const auto& [i, c] : experiment.united_test_set()) {
    (void)c;
    real_indices.push_back(i);
  }
  const SessionStore random_store = experiment.portal.generate_random_sessions(
      real_indices.size(), config.portal.seed + 404);

  const auto predict = [&detector](std::span<const int> actions) {
    return detector.predict(actions).score;
  };
  const auto real = core::summarize_normality(experiment.store, real_indices, predict);
  const auto random = core::summarize_normality(
      random_store, core::all_indices(random_store.size()), predict);

  const double uniform = 1.0 / static_cast<double>(experiment.store.vocab().size());

  std::cout << "=== Figs. 8 & 9: normality of real vs random sessions ===\n";
  Table table({"test set", "sessions", "avg_likelihood", "lik_stddev", "avg_loss", "loss_stddev"});
  table.add_row({"real (united test)", std::to_string(real.sessions),
                 Table::num(real.avg_likelihood), Table::num(real.likelihood_stddev),
                 Table::num(real.avg_loss), Table::num(real.loss_stddev)});
  table.add_row({"random [5,25]", std::to_string(random.sessions),
                 Table::num(random.avg_likelihood), Table::num(random.likelihood_stddev),
                 Table::num(random.avg_loss), Table::num(random.loss_stddev)});
  table.add_row({"uniform-prediction reference", "-", Table::num(uniform), "-",
                 Table::num(std::log(1.0 / uniform)), "-"});
  core::emit_table(table, config.results_dir, "fig08_09_normality");

  std::cout << "\nshape checks vs paper:\n";
  std::cout << "  random-set likelihood at the level of random prediction: "
            << Table::num(random.avg_likelihood) << " vs 1/d = " << Table::num(uniform) << "\n";
  std::cout << "  likelihood gap (real / random): "
            << Table::num(real.avg_likelihood / std::max(random.avg_likelihood, 1e-9), 1)
            << "x (paper: drastic)\n";
  std::cout << "  loss ratio (random / real): "
            << Table::num(random.avg_loss / std::max(real.avg_loss, 1e-9), 2)
            << "x (paper: almost twice)\n";
  return 0;
}

#!/usr/bin/env bash
# Operations-plane smoke test: run misusedet_serve with the admin
# endpoint enabled, scrape /metrics, /healthz, /statusz, and /tracez
# while the node is scoring, lint the Prometheus exposition with
# scripts/promlint.sh, drive one misusedet_top dashboard refresh, and
# require the scored output to be byte-identical to a run without the
# admin plane (the read-only contract, DESIGN.md "Operations plane").
#
# On a -DMISUSEDET_FAILPOINTS=ON build the whole live leg runs with
# MISUSEDET_FAILPOINTS='admin.respond=every:2' so every second admin
# response is dropped mid-flight: the listener must survive the socket
# errors, misusedet_top's retries must still land every scrape, and the
# data path must not lose a byte. On a regular build the spec is ignored
# and the leg degenerates to the happy path.
#
# usage: scripts/observe_smoke.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build}
serve=$build_dir/src/serve/misusedet_serve
replay=$build_dir/examples/serve_replay
top=$build_dir/src/tools/misusedet_top
lint=$(dirname "$0")/promlint.sh
for bin in "$serve" "$replay" "$top"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the '$build_dir' tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=24 >"$work/trace.ndjson"
total=$(wc -l <"$work/trace.ndjson")
half=$((total / 2))
echo "== trace: $total events"

echo "== baseline (no admin plane)"
"$serve" --model="$work/detector.bin" --batch=4 \
  <"$work/trace.ndjson" >"$work/baseline.out"

echo "== live run (admin plane + trace sampling + response-drop failpoint)"
fifo=$work/in.fifo
mkfifo "$fifo"
MISUSEDET_FAILPOINTS='admin.respond=every:2' \
  "$serve" --model="$work/detector.bin" --batch=4 \
  --admin-port=0 --trace-sample=4 \
  <"$fifo" >"$work/live.out" 2>"$work/live.err" &
server_pid=$!
exec 3>"$fifo" # hold the write end open across the scrape window

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*admin endpoint on port \([0-9]*\).*/\1/p' "$work/live.err" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "server never logged its admin port" >&2
  cat "$work/live.err" >&2
  exit 1
fi
echo "== admin endpoint on port $port"

# First half of the stream in, then scrape a busy node.
head -n "$half" "$work/trace.ndjson" >&3

echo "== scraping /metrics (lint)"
"$top" --port="$port" --dump=metrics >"$work/metrics.txt"
"$lint" "$work/metrics.txt"
grep -q '^misusedet_serve_steps_total ' "$work/metrics.txt" ||
  { echo "steps counter missing from /metrics" >&2; exit 1; }

echo "== scraping /healthz"
"$top" --port="$port" --dump=healthz >"$work/healthz.json"
grep -q '"status":"ok"' "$work/healthz.json" ||
  { echo "unexpected health: $(cat "$work/healthz.json")" >&2; exit 1; }

echo "== scraping /statusz"
"$top" --port="$port" --dump=statusz >"$work/statusz.json"
for key in shards next_seq sessions_active shard.0.queue_depth infer_kernel; do
  grep -q "\"$key\":" "$work/statusz.json" ||
    { echo "/statusz missing key $key" >&2; exit 1; }
done

echo "== scraping /tracez"
"$top" --port="$port" --dump=tracez >"$work/tracez.json"
grep -q '"traceEvents":\[' "$work/tracez.json" ||
  { echo "/tracez is not a Chrome trace document" >&2; exit 1; }
"$top" --port="$port" --dump=tracez.ndjson >"$work/tracez.ndjson"

echo "== one misusedet_top dashboard refresh"
"$top" --port="$port" --iterations=2 --interval=0.3 --plain >"$work/top.txt"
grep -q 'shard' "$work/top.txt" ||
  { echo "dashboard rendered no shard table" >&2; cat "$work/top.txt" >&2; exit 1; }

# Rest of the stream, EOF, graceful drain.
tail -n +"$((half + 1))" "$work/trace.ndjson" >&3
exec 3>&-
wait "$server_pid"
server_pid=""

echo "== byte-identity vs the no-admin baseline"
if ! cmp -s "$work/baseline.out" "$work/live.out"; then
  echo "scored output diverged with the admin plane enabled:" >&2
  diff "$work/baseline.out" "$work/live.out" | head >&2
  exit 1
fi

echo "observe smoke: OK (output byte-identical, all endpoints healthy)"

#!/usr/bin/env bash
# Minimal Prometheus text-exposition (0.0.4) linter for the /metrics
# endpoint: every sample line must parse, every sample's family must be
# declared by a preceding `# TYPE` line, histogram bucket counts must be
# cumulative-monotone and end in a `+Inf` bucket equal to `_count`, and
# counter sample names must end in `_total`. Reads one exposition from
# stdin (or a file argument); exits nonzero with a diagnostic per
# violation.
#
# usage: scripts/promlint.sh [FILE]
set -euo pipefail

exec awk '
function fail(msg) { printf "promlint: line %d: %s\n", NR, msg > "/dev/stderr"; bad = 1 }
function base_of(name) {
  if (name ~ /_bucket$/) return substr(name, 1, length(name) - 7)
  if (name ~ /_sum$/)    return substr(name, 1, length(name) - 4)
  if (name ~ /_count$/)  return substr(name, 1, length(name) - 6)
  return name
}
BEGIN { samples = 0 }
/^$/ { next }
/^# TYPE / {
  if (split($0, t, " ") != 4) { fail("malformed TYPE line: " $0); next }
  if (t[4] !~ /^(counter|gauge|histogram|summary)$/) fail("unknown type " t[4])
  if (t[3] in type) fail("duplicate TYPE for " t[3])
  type[t[3]] = t[4]
  next
}
/^#/ { next }  # HELP and other comments
{
  # Sample: name[{labels}] value
  if (match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*/) == 0) { fail("bad metric name: " $0); next }
  name = substr($0, 1, RLENGTH)
  rest = substr($0, RLENGTH + 1)
  labels = ""
  if (rest ~ /^\{/) {
    close_idx = index(rest, "}")
    if (close_idx == 0) { fail("unterminated label set: " $0); next }
    labels = substr(rest, 2, close_idx - 2)
    rest = substr(rest, close_idx + 1)
  }
  if (rest !~ /^ (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$/) {
    fail("bad sample value: " $0); next
  }
  value = substr(rest, 2)
  ++samples

  # Family resolution: exact declaration, or a histogram/summary series.
  family = ""
  if (name in type) family = name
  else {
    b = base_of(name)
    if (b in type && (type[b] == "histogram" || type[b] == "summary")) family = b
  }
  if (family == "") { fail("sample without a # TYPE declaration: " name); next }
  seen[family] = 1

  if (type[family] == "counter" && name !~ /_total$/) {
    fail("counter sample not suffixed _total: " name)
  }
  if (type[family] == "histogram") {
    if (name ~ /_bucket$/) {
      if (labels !~ /(^|,)le="/) { fail("histogram bucket without le label: " $0); next }
      if (value + 0 < last_bucket[family] + 0) {
        fail("bucket counts not monotone for " family)
      }
      last_bucket[family] = value
      le = labels; sub(/.*le="/, "", le); sub(/".*/, "", le)
      last_le[family] = le
    }
    if (name ~ /_count$/) hist_count[family] = value
  }
}
END {
  for (f in type) {
    if (!(f in seen)) fail("TYPE declared but no samples: " f)
    if (type[f] == "histogram") {
      if (last_le[f] != "+Inf") fail("histogram " f " does not end in a +Inf bucket")
      if (!(f in hist_count)) fail("histogram " f " has no _count sample")
      else if (last_bucket[f] + 0 != hist_count[f] + 0) {
        fail("histogram " f ": +Inf bucket " last_bucket[f] " != _count " hist_count[f])
      }
    }
  }
  if (samples == 0) fail("no samples in exposition")
  if (bad) exit 1
  printf "promlint: ok (%d samples, %d families)\n", samples, length(type)
}
' "${1:-/dev/stdin}"

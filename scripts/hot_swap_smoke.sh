#!/usr/bin/env bash
# Zero-downtime hot-swap smoke test for the model registry + misusedet_serve:
# publish the same detector archive twice (v1, v2 — identical weights, so
# the swap is vocab-compatible), serve --registry with shadow scoring on
# the canary, flip CURRENT to v2 mid-stream (promote + SIGHUP), and require:
#   * no session is dropped or perturbed: sessions opened before the swap
#     report with "model_version":"v1", sessions opened after with "v2",
#     and with the stamps stripped both halves are byte-identical to a
#     plain --model run over the same trace;
#   * the swap and shadow surface in the --metrics-out snapshot
#     (serve.swaps, serve.model_version, serve.shadow.steps).
#
# usage: scripts/hot_swap_smoke.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build}
serve=$build_dir/src/serve/misusedet_serve
registry=$build_dir/src/registry/misusedet_registry
replay=$build_dir/examples/serve_replay
for bin in "$serve" "$registry" "$replay"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the '$build_dir' tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=16 >"$work/trace.ndjson"
total=$(wc -l <"$work/trace.ndjson")
echo "== trace: $total events"

echo "== baseline (plain --model run, no registry, no stamps)"
"$serve" --model="$work/detector.bin" <"$work/trace.ndjson" |
  grep '"type":"session_report"' | sort >"$work/baseline.txt"
reports=$(wc -l <"$work/baseline.txt")

echo "== registry: publish v1 + v2, activate v1, stage v2 as canary"
root=$work/registry
"$registry" publish --root="$root" "$work/detector.bin" --note="smoke v1" >/dev/null
"$registry" publish --root="$root" "$work/detector.bin" --note="smoke v2" >/dev/null
"$registry" promote --root="$root" v1 >/dev/null  # staging -> canary
"$registry" promote --root="$root" v1 >/dev/null  # canary  -> active
"$registry" promote --root="$root" v2 >/dev/null  # staging -> canary (shadow target)
"$registry" list --root="$root"

echo "== live run: serve --registry, swap to v2 mid-stream"
fifo=$work/in.fifo
mkfifo "$fifo"
"$serve" --registry="$root" --shadow --batch=1 --registry-poll=0.2 \
  --metrics-out="$work/metrics.json" <"$fifo" >"$work/live.out" 2>"$work/live.log" &
pid=$!
exec 3>"$fifo"

# Phase A: the full trace opens every session under v1.
cat "$work/trace.ndjson" >&3
for _ in $(seq 1 200); do
  scored=$(grep -c '"type":"step"' "$work/live.out" || true)
  [ "$scored" -ge "$total" ] && break
  sleep 0.05
done
scored=$(grep -c '"type":"step"' "$work/live.out" || true)
if [ "$scored" -lt "$total" ]; then
  echo "FAIL: only $scored of $total phase-A events scored before timeout" >&2
  kill -9 "$pid" 2>/dev/null || true
  exit 1
fi

# Flip CURRENT, then nudge: --batch=1 re-checks the registry after every
# event, so one throwaway event ("swapnudge") deterministically lands the
# swap before any phase-B session opens. SIGHUP + the elapsed poll
# interval both force the re-check.
"$registry" promote --root="$root" v2 >/dev/null  # canary -> active; CURRENT moves
kill -HUP "$pid"
sleep 0.3
head -n 1 "$work/trace.ndjson" |
  sed -e 's/"session_id":"[^"]*"/"session_id":"swapnudge"/' \
      -e 's/"user_id":"[^"]*"/"user_id":"swapnudge"/' >&3
for _ in $(seq 1 200); do
  grep -q 'model swapped to v2' "$work/live.log" && break
  sleep 0.05
done
if ! grep -q 'model swapped to v2' "$work/live.log"; then
  echo "FAIL: server never swapped to v2 (see live.log)" >&2
  cat "$work/live.log" >&2
  kill -9 "$pid" 2>/dev/null || true
  exit 1
fi

# Phase B: the same trace under fresh ids — every session opens under v2.
sed -e 's/"session_id":"/"session_id":"b/' -e 's/"user_id":"/"user_id":"b/' \
  <"$work/trace.ndjson" >&3
exec 3>&-
if ! wait "$pid"; then
  echo "FAIL: server exited non-zero" >&2
  cat "$work/live.log" >&2
  exit 1
fi

echo "== checking the zero-downtime invariants"
grep '"type":"session_report"' "$work/live.out" | grep -v swapnudge >"$work/live_reports.txt"
live_count=$(wc -l <"$work/live_reports.txt")
if [ "$live_count" -ne $((reports * 2)) ]; then
  echo "FAIL: expected $((reports * 2)) session reports, got $live_count (dropped sessions?)" >&2
  exit 1
fi

# Sessions open across the swap keep their pinned v1; post-swap sessions
# stamp v2. No report may be missing its stamp.
unstamped=$(grep -cv '"model_version":"v[0-9]*"' "$work/live_reports.txt" || true)
if [ "$unstamped" -ne 0 ]; then
  echo "FAIL: $unstamped registry-mode reports carry no model_version stamp" >&2
  exit 1
fi
grep '"session_id":"session' "$work/live_reports.txt" >"$work/phase_a.txt"
grep '"session_id":"bsession' "$work/live_reports.txt" >"$work/phase_b.txt"
for phase in phase_a phase_b; do
  count=$(wc -l <"$work/$phase.txt")
  if [ "$count" -ne "$reports" ]; then
    echo "FAIL: $phase has $count reports, expected $reports" >&2
    exit 1
  fi
done
if grep -qv '"model_version":"v1"' "$work/phase_a.txt"; then
  echo "FAIL: a pre-swap session was not stamped v1" >&2
  exit 1
fi
if grep -qv '"model_version":"v2"' "$work/phase_b.txt"; then
  echo "FAIL: a post-swap session was not stamped v2" >&2
  exit 1
fi

# Identical weights => stamp-stripped reports must match the --model
# baseline byte-for-byte, for both halves.
sed 's/,"model_version":"v[0-9]*"//' "$work/phase_a.txt" | sort >"$work/phase_a_clean.txt"
sed -e 's/,"model_version":"v[0-9]*"//' -e 's/"session_id":"b/"session_id":"/' \
    -e 's/"user_id":"b/"user_id":"/' "$work/phase_b.txt" | sort >"$work/phase_b_clean.txt"
if ! diff -u "$work/baseline.txt" "$work/phase_a_clean.txt" >&2; then
  echo "FAIL: pre-swap session reports diverged from the --model baseline" >&2
  exit 1
fi
if ! diff -u "$work/baseline.txt" "$work/phase_b_clean.txt" >&2; then
  echo "FAIL: post-swap session reports diverged from the --model baseline" >&2
  exit 1
fi

echo "== checking the metrics snapshot"
for needle in '"serve.swaps":1' '"serve.model_version":{"value":2'; do
  if ! grep -q "$needle" "$work/metrics.json"; then
    echo "FAIL: metrics snapshot missing $needle" >&2
    exit 1
  fi
done
shadow_steps=$(grep -o '"serve.shadow.steps":[0-9]*' "$work/metrics.json" | grep -o '[0-9]*$')
if [ -z "$shadow_steps" ] || [ "$shadow_steps" -eq 0 ]; then
  echo "FAIL: shadow scorer never ran (serve.shadow.steps=0)" >&2
  exit 1
fi
flips=$(grep -o '"serve.shadow.verdict_flips":[0-9]*' "$work/metrics.json" | grep -o '[0-9]*$')
if [ "${flips:-0}" -ne 0 ]; then
  echo "FAIL: identical shadow model flipped $flips verdicts" >&2
  exit 1
fi

echo "PASS: swap v1->v2 with zero dropped sessions, byte-identical reports,"
echo "      per-session version stamps, and shadow metrics ($shadow_steps steps, 0 flips)"

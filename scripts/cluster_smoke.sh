#!/usr/bin/env bash
# Cluster-serving smoke test: a 3-node misusedet_serve cluster behind
# misusedet_router, with a kill -9 of one node while the stream is in
# flight. The router must detect the death, hand the dead node's
# sessions off to the survivors (journal replay, DESIGN.md "Cluster
# serving"), and keep answering — and when the cluster drains, the union
# of the nodes' session reports must be byte-identical to a single-node
# run over the same trace. That is the cluster contract in one line:
# scoring is deterministic, so losing a node loses no state and changes
# no verdict.
#
# The client reads every reply, so the check also proves no verdict was
# lost or duplicated across the handoff (one step record per event).
#
# usage: scripts/cluster_smoke.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build}
serve=$build_dir/src/serve/misusedet_serve
router=$build_dir/src/router/misusedet_router
replay=$build_dir/examples/serve_replay
for bin in "$serve" "$router" "$replay"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the '$build_dir' tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

scrape_port() { # scrape_port STDERR_FILE
  local port=""
  for _ in $(seq 1 150); do
    port=$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$1" | head -1)
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "no 'listening on port' line in $1" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "$port"
}

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=24 >"$work/trace.ndjson"
total=$(wc -l <"$work/trace.ndjson")
half=$((total / 2))
echo "== trace: $total events, node kill after $half"

echo "== single-node reference run"
"$serve" --model="$work/detector.bin" <"$work/trace.ndjson" \
  >"$work/single.out" 2>"$work/single.err"
grep '"type":"session_report"' "$work/single.out" | sort >"$work/single.reports"

echo "== starting 3 nodes + router"
node_pids=()
node_specs=""
for i in 1 2 3; do
  "$serve" --model="$work/detector.bin" --listen=0 --io=epoll --idle-ttl=3600 \
    >"$work/node$i.out" 2>"$work/node$i.err" &
  node_pids+=($!)
  pids+=($!)
  port=$(scrape_port "$work/node$i.err")
  node_specs="$node_specs${node_specs:+,}127.0.0.1:$port"
  echo "   node$i pid=${node_pids[$((i - 1))]} port=$port"
done
"$router" --nodes="$node_specs" --listen=0 --host=127.0.0.1 \
  >"$work/router.out" 2>"$work/router.err" &
router_pid=$!
pids+=($router_pid)
router_port=$(scrape_port "$work/router.err")
echo "   router pid=$router_pid port=$router_port"

# One NDJSON client over bash's /dev/tcp; a background cat drains every
# verdict so the replay is flow-controlled end to end.
exec 3<>"/dev/tcp/127.0.0.1/$router_port"
cat <&3 >"$work/replies.out" &
cat_pid=$!
pids+=($cat_pid)

echo "== first half of the stream"
head -n "$half" "$work/trace.ndjson" >&3

echo "== kill -9 node2 mid-stream"
kill -9 "${node_pids[1]}"
wait "${node_pids[1]}" 2>/dev/null || true

echo "== rest of the stream through the degraded cluster"
tail -n +"$((half + 1))" "$work/trace.ndjson" >&3

echo "== waiting for every verdict ($total expected)"
for _ in $(seq 1 300); do
  got=$(wc -l <"$work/replies.out")
  [ "$got" -ge "$total" ] && break
  sleep 0.1
done
got=$(wc -l <"$work/replies.out")
if [ "$got" -ne "$total" ]; then
  echo "expected $total verdicts, got $got — lost or duplicated across handoff" >&2
  tail -5 "$work/router.err" >&2
  exit 1
fi
if grep -q '"type":"error"' "$work/replies.out"; then
  echo "router answered with error records:" >&2
  grep '"type":"error"' "$work/replies.out" | head -3 >&2
  exit 1
fi
grep -q 'router: node .* down' "$work/router.err" ||
  { echo "router never noticed the dead node" >&2; exit 1; }

# Stop the router FIRST so node shutdowns below do not trigger another
# handoff round (a drained node's sessions must not be re-reported by a
# survivor), then drain the surviving nodes.
echo "== graceful drain (router, then surviving nodes)"
exec 3>&- 3<&-
kill "$router_pid"
wait "$router_pid" 2>/dev/null || true
wait "$cat_pid" 2>/dev/null || true
for i in 1 3; do
  kill "${node_pids[$((i - 1))]}"
  wait "${node_pids[$((i - 1))]}" 2>/dev/null || true
done

echo "== byte-identity of the session reports vs single node"
cat "$work"/node*.out | grep '"type":"session_report"' | sort >"$work/cluster.reports"
if ! cmp -s "$work/single.reports" "$work/cluster.reports"; then
  echo "cluster reports diverged from the single-node run:" >&2
  diff "$work/single.reports" "$work/cluster.reports" | head >&2
  exit 1
fi
sessions=$(wc -l <"$work/cluster.reports")
echo "cluster smoke: OK ($sessions sessions byte-identical across a node kill)"

#!/usr/bin/env bash
# Continuous-learning loop smoke test: drive misusedet_learnd through a
# full collect -> fine-tune -> publish -> shadow-evaluate -> decide cycle
# and check every decision leaves a flat-JSON audit record and the
# registry in the advertised state.
#
#   leg A  replay mode: a recorded trace produces a promotion — the
#          candidate carries a parent lineage stamp (registry show / list
#          --json agree), the audit log records "promote", and a second
#          identical run reproduces the audit log and the candidate
#          archive byte-for-byte (determinism contract);
#   leg B  live tail: learnd tails a serving node's WAL, promotes
#          mid-stream, SIGHUPs the node (zero sessions rolled), and the
#          learn state surfaces in /statusz (learn_* fields) and the
#          misusedet_top dashboard;
#   leg C  failpoint learn.train.corrupt: the corrupted candidate is
#          rejected at publish with reason "candidate_invalid" and the
#          registry keeps serving v1;
#   leg D  failpoint detector.load.lstm: a degraded active model blocks
#          the cycle outright with reason "degraded_clusters" — nothing
#          is trained or published.
#
# Legs C and D require a build configured with -DMISUSEDET_FAILPOINTS=ON
# (the CI fault-injection tree); they fail loudly on a tree without it.
#
# usage: scripts/learn_loop_smoke.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build}
serve=$build_dir/src/serve/misusedet_serve
registry=$build_dir/src/registry/misusedet_registry
learnd=$build_dir/src/learn/misusedet_learnd
replay=$build_dir/examples/serve_replay
top=$build_dir/src/tools/misusedet_top
for bin in "$serve" "$registry" "$learnd" "$replay" "$top"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the '$build_dir' tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=48 >"$work/trace.ndjson"
echo "== trace: $(wc -l <"$work/trace.ndjson") events"

seed_registry() {
  rm -rf "$1"
  "$registry" publish --root="$1" "$work/detector.bin" --note="smoke seed" >/dev/null
  "$registry" promote --root="$1" v1 >/dev/null
  "$registry" promote --root="$1" v1 >/dev/null
}

# Lenient guardrails: legs A/B exercise the pipeline (legs C/D and the
# unit tests pin the guards); the trace includes two attacker sessions,
# which the alarm filter must keep out of the buffer regardless.
learnd_flags=(--min-train-windows=8 --max-alarm-steps=50 --eval-every=4
  --eval-budget=20 --max-flip-rate=0.9 --max-loss-delta=100 --drift-margin=100
  --epochs=1 --max-cycles=1)

echo
echo "== leg A: replay cycle promotes, with lineage and determinism"
rootA=$work/regA
seed_registry "$rootA"
"$learnd" --registry="$rootA" "${learnd_flags[@]}" "$work/trace.ndjson" \
  >"$work/legA.out" 2>"$work/legA.log"
grep -q '"decision":"promote"' "$work/legA.out" ||
  { echo "FAIL: leg A did not promote"; cat "$work/legA.out" "$work/legA.log" >&2; exit 1; }
grep -q '"decision":"promote"' "$rootA/learn_audit.ndjson" ||
  { echo "FAIL: audit log missing the promote record" >&2; exit 1; }
[ "$(wc -l <"$rootA/learn_audit.ndjson")" -eq 1 ] ||
  { echo "FAIL: expected exactly one audit record" >&2; exit 1; }
grep -q '"phase"' "$rootA/LEARN_STATUS" ||
  { echo "FAIL: LEARN_STATUS not published" >&2; exit 1; }

"$registry" show --root="$rootA" v2 >"$work/show.out"
grep -q 'lineage: v2 -> v1' "$work/show.out" ||
  { echo "FAIL: registry show v2 lost the lineage stamp"; cat "$work/show.out" >&2; exit 1; }
"$registry" list --root="$rootA" --json >"$work/list.json"
grep -q '"version":2' "$work/list.json" && grep -q '"parent":1' "$work/list.json" ||
  { echo "FAIL: list --json missing v2 or its parent"; cat "$work/list.json" >&2; exit 1; }
[ "$(cat "$rootA/CURRENT")" = "v2" ] ||
  { echo "FAIL: CURRENT did not move to the promoted candidate" >&2; exit 1; }

rootA2=$work/regA2
seed_registry "$rootA2"
"$learnd" --registry="$rootA2" "${learnd_flags[@]}" "$work/trace.ndjson" \
  >/dev/null 2>"$work/legA2.log"
cmp -s "$rootA/learn_audit.ndjson" "$rootA2/learn_audit.ndjson" ||
  { echo "FAIL: audit logs differ across identical runs" >&2
    diff "$rootA/learn_audit.ndjson" "$rootA2/learn_audit.ndjson" >&2 || true; exit 1; }
cmp -s "$rootA/v2/detector.bin" "$rootA2/v2/detector.bin" ||
  { echo "FAIL: candidate archives differ across identical runs" >&2; exit 1; }
echo "leg A OK: promoted v2 (parent v1), byte-identical across reruns"

echo
echo "== leg B: live tail — learnd promotes under a serving node"
rootB=$work/regB
seed_registry "$rootB"
fifo=$work/in.fifo
mkfifo "$fifo"
"$serve" --registry="$rootB" --admin-port=0 --batch=1 --registry-poll=0.2 \
  --wal-dir="$work/walB" --wal-sync=1 --idle-ttl=5 \
  --metrics-out="$work/serveB_metrics.json" \
  <"$fifo" >"$work/legB.out" 2>"$work/legB.log" &
serve_pid=$!
exec 3>"$fifo"
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*admin endpoint on port \([0-9]*\).*/\1/p' "$work/legB.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
done
[ -n "$port" ] || { echo "FAIL: server never logged its admin port" >&2
  cat "$work/legB.log" >&2; exit 1; }

cat "$work/trace.ndjson" >&3
# --idle-ttl=5 makes the server sweep finished sessions as event time
# advances, logging sweep records the tailer turns into closed windows.
"$learnd" --registry="$rootB" --wal-dir="$work/walB" --serve-pid="$serve_pid" \
  "${learnd_flags[@]}" --once --poll-ms=50 --idle-exit-ms=15000 \
  >"$work/legB_learnd.out" 2>"$work/legB_learnd.log"
grep -q '"decision":"promote"' "$work/legB_learnd.out" ||
  { echo "FAIL: leg B tail-mode cycle did not promote" >&2
    cat "$work/legB_learnd.out" "$work/legB_learnd.log" >&2; exit 1; }
# --batch=1 re-checks the registry after every event; one throwaway event
# (plus the SIGHUP learnd already sent) lands the swap deterministically.
head -n 1 "$work/trace.ndjson" |
  sed -e 's/"session_id":"[^"]*"/"session_id":"swapnudge"/' \
      -e 's/"user_id":"[^"]*"/"user_id":"swapnudge"/' >&3
for _ in $(seq 1 100); do
  grep -q 'model swapped to v2' "$work/legB.log" && break
  sleep 0.1
done
grep -q 'model swapped to v2' "$work/legB.log" ||
  { echo "FAIL: serve node never swapped to the promoted candidate" >&2
    cat "$work/legB.log" >&2; exit 1; }

"$top" --port="$port" --dump=statusz >"$work/statusz.json"
for key in learn_phase learn_decision learn_cycle; do
  grep -q "\"$key\":" "$work/statusz.json" ||
    { echo "FAIL: /statusz missing $key"; cat "$work/statusz.json" >&2; exit 1; }
done
"$top" --port="$port" --iterations=1 --plain >"$work/top.txt"
grep -q 'LEARN phase' "$work/top.txt" ||
  { echo "FAIL: misusedet_top shows no LEARN line"; cat "$work/top.txt" >&2; exit 1; }

exec 3>&-
wait "$serve_pid" || { echo "FAIL: serve exited non-zero" >&2; cat "$work/legB.log" >&2; exit 1; }
grep -q '"serve.swap_sessions_rolled":0' "$work/serveB_metrics.json" ||
  { echo "FAIL: the promotion rolled live sessions" >&2; exit 1; }
echo "leg B OK: live promotion, SIGHUP swap, learn state on /statusz and the dashboard"

echo
echo "== leg C: corrupted candidate is rejected at publish"
rootC=$work/regC
seed_registry "$rootC"
MISUSEDET_FAILPOINTS="learn.train.corrupt=always" \
  "$learnd" --registry="$rootC" "${learnd_flags[@]}" "$work/trace.ndjson" \
  >"$work/legC.out" 2>"$work/legC.log"
grep -q '"decision":"reject"' "$work/legC.out" &&
  grep -q '"reason":"candidate_invalid"' "$work/legC.out" ||
  { echo "FAIL: corrupt candidate was not rejected (failpoints compiled in?)" >&2
    cat "$work/legC.out" "$work/legC.log" >&2; exit 1; }
grep -q '"reason":"candidate_invalid"' "$rootC/learn_audit.ndjson" ||
  { echo "FAIL: rejection missing from the audit log" >&2; exit 1; }
[ "$(cat "$rootC/CURRENT")" = "v1" ] ||
  { echo "FAIL: registry moved off v1 after a rejected candidate" >&2; exit 1; }
[ ! -e "$rootC/v2" ] ||
  { echo "FAIL: corrupt candidate landed in the registry" >&2; exit 1; }
echo "leg C OK: candidate_invalid rejection, v1 still serving"

echo
echo "== leg D: degraded active model blocks the cycle"
rootD=$work/regD
seed_registry "$rootD"
MISUSEDET_FAILPOINTS="detector.load.lstm=always" \
  "$learnd" --registry="$rootD" "${learnd_flags[@]}" "$work/trace.ndjson" \
  >"$work/legD.out" 2>"$work/legD.log"
grep -q '"decision":"reject"' "$work/legD.out" &&
  grep -q '"reason":"degraded_clusters"' "$work/legD.out" ||
  { echo "FAIL: degraded active model did not block the cycle" >&2
    cat "$work/legD.out" "$work/legD.log" >&2; exit 1; }
[ ! -e "$rootD/v2" ] ||
  { echo "FAIL: a candidate was trained from a degraded model" >&2; exit 1; }
echo "leg D OK: degraded_clusters rejection, nothing published"

echo
echo "PASS: learn loop promoted (replay + live tail), rejected corruption and"
echo "      degraded models with audit records, and reruns were byte-identical"

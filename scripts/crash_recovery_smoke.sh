#!/usr/bin/env bash
# Crash-recovery smoke test for misusedet_serve: kill -9 a WAL-enabled
# server mid-replay, restart it on the same --wal-dir with
# --resume-replay, re-feed the trace from origin, and require the
# end-of-session reports to be byte-identical to an uninterrupted run
# (the recovery invariant, DESIGN.md "Fault tolerance").
#
# usage: scripts/crash_recovery_smoke.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build}
serve=$build_dir/src/serve/misusedet_serve
replay=$build_dir/examples/serve_replay
for bin in "$serve" "$replay"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build the '$build_dir' tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=16 >"$work/trace.ndjson"
total=$(wc -l <"$work/trace.ndjson")
half=$((total / 2))
echo "== trace: $total events, crashing after $half"

echo "== baseline (uninterrupted run)"
"$serve" --model="$work/detector.bin" <"$work/trace.ndjson" |
  grep '"type":"session_report"' | sort >"$work/baseline.txt"

echo "== crashed run (WAL on, kill -9 mid-replay)"
mkdir -p "$work/wal"
fifo=$work/in.fifo
mkfifo "$fifo"
"$serve" --model="$work/detector.bin" --wal-dir="$work/wal" \
  --batch=1 --wal-sync=1 <"$fifo" >"$work/crashed.out" &
pid=$!
exec 3>"$fifo"
head -n "$half" "$work/trace.ndjson" >&3
# --batch=1 flushes per event: wait until every fed event has a verdict,
# so the kill lands after the WAL covers all $half events.
for _ in $(seq 1 200); do
  scored=$(grep -c '"type":"step"' "$work/crashed.out" || true)
  [ "$scored" -ge "$half" ] && break
  sleep 0.05
done
scored=$(grep -c '"type":"step"' "$work/crashed.out" || true)
if [ "$scored" -lt "$half" ]; then
  echo "FAIL: only $scored of $half events scored before timeout" >&2
  kill -9 "$pid" 2>/dev/null || true
  exit 1
fi
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
exec 3>&-

echo "== restarted run (recover + resume-replay, re-feeding from origin)"
"$serve" --model="$work/detector.bin" --wal-dir="$work/wal" \
  --resume-replay <"$work/trace.ndjson" |
  grep '"type":"session_report"' | sort >"$work/recovered.txt"

if ! diff -u "$work/baseline.txt" "$work/recovered.txt"; then
  echo "FAIL: post-crash session reports diverge from the uninterrupted run" >&2
  exit 1
fi
reports=$(wc -l <"$work/baseline.txt")
echo "OK: $reports session reports byte-identical across kill -9 + recovery"

#!/usr/bin/env bash
# Fault-injection sweep: drives the end-to-end pipe server under a set of
# MISUSEDET_FAILPOINTS specs and asserts controlled degradation — the
# process must exit 0 and keep scoring under every injected fault, and a
# corrupt LSTM load must surface as flagged degraded verdicts, never a
# crash. Requires a build configured with -DMISUSEDET_FAILPOINTS=ON
# (default tree name: build-fp).
#
# usage: scripts/fault_injection_sweep.sh [BUILD_DIR]
set -euo pipefail

build_dir=${1:-build-fp}
serve=$build_dir/src/serve/misusedet_serve
replay=$build_dir/examples/serve_replay
for bin in "$serve" "$replay"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build a -DMISUSEDET_FAILPOINTS=ON tree first" >&2
    exit 1
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== training demo detector"
"$replay" --train-model="$work/detector.bin" >/dev/null
"$replay" --emit-trace --sessions=12 >"$work/trace.ndjson"

echo "== clean reference run"
"$serve" --model="$work/detector.bin" <"$work/trace.ndjson" >"$work/clean.out"
clean_reports=$(grep -c '"type":"session_report"' "$work/clean.out")
if [ "$clean_reports" -lt 1 ]; then
  echo "FAIL: clean run produced no session reports" >&2
  exit 1
fi
if grep -q '"degraded":true' "$work/clean.out"; then
  echo "FAIL: clean run emitted degraded verdicts" >&2
  exit 1
fi

# Each entry: "<failpoint spec>|<description>". Under every spec the
# server must exit 0 and emit the same number of session reports as the
# clean run (durability and I/O faults degrade durability, not scoring).
specs=(
  'wal.fsync=always|every WAL fsync fails'
  'wal.append=every:2|every 2nd WAL append fails'
  'wal.snapshot=always|every snapshot write fails'
  'serve.enqueue=every:50|injected backpressure every 50th enqueue'
)
for entry in "${specs[@]}"; do
  spec=${entry%%|*}
  desc=${entry#*|}
  echo "== sweep: $spec ($desc)"
  mkdir -p "$work/wal-sweep"
  rm -rf "$work/wal-sweep"/*
  if ! MISUSEDET_FAILPOINTS="$spec" "$serve" --model="$work/detector.bin" \
    --wal-dir="$work/wal-sweep" <"$work/trace.ndjson" >"$work/sweep.out"; then
    echo "FAIL: server crashed under $spec" >&2
    exit 1
  fi
  reports=$(grep -c '"type":"session_report"' "$work/sweep.out" || true)
  if [ "$reports" -ne "$clean_reports" ]; then
    echo "FAIL: $spec changed session report count ($reports != $clean_reports)" >&2
    exit 1
  fi
done

echo "== sweep: line_io.eof=nth:1 (producer vanishes before the first line)"
if ! MISUSEDET_FAILPOINTS='line_io.eof=nth:1' "$serve" \
  --model="$work/detector.bin" <"$work/trace.ndjson" >"$work/eof.out"; then
  echo "FAIL: server crashed on a vanishing producer" >&2
  exit 1
fi
if grep -q '"type":"session_report"' "$work/eof.out"; then
  echo "FAIL: a zero-event stream must drain with no session reports" >&2
  exit 1
fi

echo "== sweep: detector.load.lstm=always (all LSTM sections corrupt)"
if ! MISUSEDET_FAILPOINTS='detector.load.lstm=always' "$serve" \
  --model="$work/detector.bin" <"$work/trace.ndjson" >"$work/degraded.out"; then
  echo "FAIL: server crashed on degraded archive load" >&2
  exit 1
fi
if ! grep -q '"degraded":true' "$work/degraded.out"; then
  echo "FAIL: degraded detector served no flagged verdicts" >&2
  exit 1
fi
reports=$(grep -c '"type":"session_report"' "$work/degraded.out")
if [ "$reports" -ne "$clean_reports" ]; then
  echo "FAIL: degraded mode changed session report count ($reports != $clean_reports)" >&2
  exit 1
fi

echo "OK: server survived every injected fault with full scoring coverage"
